"""Tests for the packet-level traffic runner (repro.traffic.runner).

The headline property — the acceptance criterion of the traffic subsystem —
is that an identical ``(TrafficSpec, seed)`` pair replays a *byte-identical*
packet trace, which the hypothesis battery checks by serializing the
engine's trace records from two independent runs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.io.results import results_to_json
from repro.net.network import Network
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.traffic.forwarding import ACK, DATA
from repro.traffic.runner import build_routing_plan, run_traffic
from repro.traffic.spec import MIN_HOP, MIN_POWER, TrafficSpec

ALPHA = 5.0 * math.pi / 6.0

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def small_world(seed=1, node_count=30):
    network = random_uniform_placement(PlacementConfig(node_count=node_count), seed=seed)
    graph = build_topology(network, ALPHA, config=OptimizationConfig.all()).graph
    return network, graph


def chain_world(hops=3, spacing=100.0):
    positions = [(i * spacing, 0.0) for i in range(hops + 1)]
    network = Network.from_positions(positions)
    return network, network.max_power_graph()


class TestRoutingPlan:
    def test_min_hop_prefers_fewer_edges(self):
        # A triangle detour: 0-2 direct (long) vs 0-1-2 (two short hops).
        network = Network.from_positions([(0.0, 0.0), (200.0, 150.0), (400.0, 0.0)])
        graph = network.max_power_graph()
        flows = TrafficSpec(flow_count=1).build_flows(network, 0)
        spec_flow = flows[0]
        plan_hops = build_routing_plan(network, graph, flows, routing=MIN_HOP)
        plan_power = build_routing_plan(network, graph, flows, routing=MIN_POWER)
        # Min-hop never uses more hops than min-power on the same pair.
        assert plan_hops.path_hops[spec_flow.flow_id] <= plan_power.path_hops[spec_flow.flow_id]

    def test_disconnected_flow_is_unroutable(self):
        network = Network.from_positions([(0.0, 0.0), (100.0, 0.0), (5000.0, 0.0), (5100.0, 0.0)])
        graph = network.max_power_graph()
        flows = TrafficSpec(flow_count=6).build_flows(network, 3)
        plan = build_routing_plan(network, graph, flows, routing=MIN_POWER)
        for flow in flows:
            crosses = (flow.source < 2) != (flow.destination < 2)
            assert (flow.flow_id in plan.unroutable) == crosses

    def test_link_powers_are_clamped_to_max(self):
        network, graph = small_world()
        flows = TrafficSpec(flow_count=5).build_flows(network, 0)
        plan = build_routing_plan(network, graph, flows, routing=MIN_POWER)
        max_power = network.power_model.max_power
        assert plan.link_power
        assert all(0.0 < p <= max_power for p in plan.link_power.values())


class TestReliableDelivery:
    def test_everything_delivered_on_reliable_channel(self):
        network, graph = small_world()
        spec = TrafficSpec(kind="cbr", flow_count=6, packets_per_flow=4)
        run = run_traffic(network, graph, spec, seed=2)
        report = run.report
        assert report.offered_packets == 24
        assert report.delivered_packets == 24
        assert report.delivery_ratio == 1.0
        assert report.retransmit_drops == 0
        assert report.average_latency > 0
        assert report.average_hops >= 1.0
        assert report.total_energy > 0
        assert report.energy_per_delivered_bit > 0

    def test_accounting_is_exhaustive(self):
        network, graph = small_world()
        spec = TrafficSpec(kind="cbr", flow_count=8, packets_per_flow=5, interference=True)
        report = run_traffic(network, graph, spec, seed=3).report
        assert (
            report.delivered_packets
            + report.queue_drops
            + report.no_route_drops
            + report.retransmit_drops
            + report.stranded_packets
            == report.offered_packets
        )

    def test_single_hop_latency_is_link_delay(self):
        network, graph = chain_world(hops=1)
        spec = TrafficSpec(kind="cbr", flow_count=1, packets_per_flow=1, link_delay=1.0)
        run = run_traffic(network, graph, spec, seed=0)
        assert run.report.delivered_packets == 1
        assert run.report.average_hops == 1.0
        assert run.report.average_latency == pytest.approx(1.0)

    def test_multi_hop_chain_counts_hops(self):
        network, graph = chain_world(hops=4)
        # Force the single flow to cross the whole chain by picking a seed
        # whose sampled pair spans it; instead just run every seed until one
        # does -- deterministic because build_flows is.
        spec = TrafficSpec(kind="cbr", flow_count=1, packets_per_flow=2)
        for seed in range(20):
            flows = spec.build_flows(network, seed)
            if {flows[0].source, flows[0].destination} == {0, 4}:
                run = run_traffic(network, graph, spec, seed=seed)
                assert run.report.average_hops == 4.0
                return
        pytest.skip("no seed in range sampled the end-to-end pair")

    def test_acks_ride_alongside_data(self):
        network, graph = small_world()
        spec = TrafficSpec(kind="cbr", flow_count=4, packets_per_flow=3)
        run = run_traffic(network, graph, spec, seed=1)
        counts = run.engine.trace.count_by_kind()
        assert counts[DATA] >= run.report.delivered_packets
        assert counts[ACK] == counts[DATA]  # reliable channel: every data acked

    def test_no_route_flows_are_counted(self):
        network = Network.from_positions([(0.0, 0.0), (100.0, 0.0), (5000.0, 0.0), (5100.0, 0.0)])
        graph = network.max_power_graph()
        spec = TrafficSpec(kind="cbr", flow_count=6, packets_per_flow=2)
        report = run_traffic(network, graph, spec, seed=3).report
        assert report.no_route_drops > 0
        assert report.no_route_drops + report.delivered_packets == report.offered_packets


class TestQueueAndRetransmission:
    def test_tiny_queue_drops_burst_packets(self):
        network, graph = chain_world(hops=1)
        spec = TrafficSpec(
            kind="burst",
            flow_count=1,
            packets_per_flow=30,
            packet_interval=0.01,
            queue_capacity=2,
        )
        report = run_traffic(network, graph, spec, seed=0).report
        assert report.queue_drops > 0
        assert report.delivered_packets + report.queue_drops == report.offered_packets

    def test_retransmission_cap_abandons_jammed_link(self):
        # An SINR threshold no reception can meet jams every delivery, so
        # the sender must retry exactly `retransmit_limit` times then drop.
        network, graph = chain_world(hops=1)
        spec = TrafficSpec(
            kind="cbr",
            flow_count=1,
            packets_per_flow=1,
            retransmit_limit=2,
            interference=True,
            sinr_threshold=1e12,
        )
        run = run_traffic(network, graph, spec, seed=0)
        report = run.report
        assert report.offered_packets == 1
        assert report.delivered_packets == 0
        assert report.retransmit_drops == 1
        assert report.link_abandonments == 1
        assert run.engine.trace.count_by_kind().get(DATA, 0) == 3  # 1 original + 2 retries
        assert run.engine.trace.count_by_kind().get(ACK, 0) == 0


class TestBatteriesAndLifetime:
    def test_finite_batteries_crash_nodes_and_set_lifetime(self):
        network, graph = small_world()
        spec = TrafficSpec(
            kind="hotspot",
            flow_count=8,
            packets_per_flow=6,
            packet_interval=2.0,
            battery_capacity=3.0e5,
        )
        report = run_traffic(network, graph, spec, seed=1).report
        assert report.battery_deaths > 0
        assert report.lifetime is not None and report.lifetime > 0
        assert len(network.alive_nodes()) == len(network) - report.battery_deaths

    def test_infinite_batteries_never_die(self):
        network, graph = small_world()
        spec = TrafficSpec(kind="cbr", flow_count=5, packets_per_flow=3)
        report = run_traffic(network, graph, spec, seed=1).report
        assert report.battery_deaths == 0
        assert report.lifetime is None


class TestTraceDeterminism:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_identical_spec_and_seed_replay_byte_identical_trace(self, seed):
        spec = TrafficSpec(kind="cbr", flow_count=5, packets_per_flow=3, interference=True)
        traces = []
        for _ in range(2):
            network, graph = small_world(seed=7, node_count=25)
            run = run_traffic(network, graph, spec, seed=seed)
            traces.append(results_to_json(run.trace_records))
        assert traces[0] == traces[1]

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_reports_replay_identically(self, seed):
        spec = TrafficSpec(kind="uniform", flow_count=4, packets_per_flow=2, interference=True)
        payloads = []
        for _ in range(2):
            network, graph = small_world(seed=11, node_count=25)
            run = run_traffic(network, graph, spec, seed=seed)
            payloads.append(results_to_json(run.report))
        assert payloads[0] == payloads[1]

    def test_different_seeds_change_the_workload(self):
        spec = TrafficSpec(kind="cbr", flow_count=5, packets_per_flow=3)
        network, graph = small_world(seed=7, node_count=25)
        first = results_to_json(run_traffic(network, graph, spec, seed=0).trace_records)
        network, graph = small_world(seed=7, node_count=25)
        second = results_to_json(run_traffic(network, graph, spec, seed=1).trace_records)
        assert first != second
