"""Tests for the SINR interference layer (repro.radio.interference)."""

import math

import pytest

from repro.geometry import Point
from repro.net.network import Network
from repro.radio.interference import (
    GRID_QUERY_THRESHOLD,
    InterferenceField,
    InterferenceModel,
)
from repro.radio.propagation import PathLossModel
from repro.sim.channel import InterferenceChannel, ReliableChannel
from repro.sim.engine import SimulationEngine
from repro.sim.messages import Envelope, Message
from repro.sim.process import Process


def make_model(**overrides):
    defaults = dict(propagation=PathLossModel(), noise_floor=0.05, sinr_threshold=2.0, airtime=1.0)
    defaults.update(overrides)
    return InterferenceModel(**defaults)


class TestInterferenceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_model(noise_floor=0.0)
        with pytest.raises(ValueError):
            make_model(sinr_threshold=0.0)
        with pytest.raises(ValueError):
            make_model(airtime=-1.0)
        with pytest.raises(ValueError):
            make_model(negligible_fraction=0.0)

    def test_cutoff_grows_with_power(self):
        model = make_model()
        assert model.cutoff_distance(100.0) < model.cutoff_distance(10_000.0)
        assert model.cutoff_distance(0.0) == 0.0

    def test_decodable_threshold(self):
        model = make_model()
        assert model.decodable(1.0, 0.0)  # SNR = 20 >= 2
        assert not model.decodable(1.0, 1.0)  # SINR ~ 0.95 < 2


class TestInterferenceField:
    def test_empty_field_has_no_interference(self):
        field = InterferenceField(make_model())
        assert field.interference_at(Point(0, 0)) == 0.0

    def test_single_transmission_contributes_path_loss_power(self):
        model = make_model()
        field = InterferenceField(model)
        field.register(0, Point(0, 0), 10_000.0, now=0.0)
        expected = model.propagation.reception_power(10_000.0, 50.0)
        assert field.interference_at(Point(50.0, 0.0)) == pytest.approx(expected)

    def test_interference_is_additive(self):
        model = make_model()
        field = InterferenceField(model)
        field.register(0, Point(0, 0), 10_000.0, now=0.0)
        solo = field.interference_at(Point(50.0, 0.0))
        field.register(1, Point(100.0, 0.0), 10_000.0, now=0.0)
        assert field.interference_at(Point(50.0, 0.0)) == pytest.approx(
            solo + model.propagation.reception_power(10_000.0, 50.0)
        )

    def test_exclude_drops_own_transmission(self):
        field = InterferenceField(make_model())
        tx = field.register(0, Point(0, 0), 10_000.0, now=0.0)
        assert field.interference_at(Point(10.0, 0.0), exclude_tx=tx) == 0.0

    def test_prune_removes_expired_transmissions(self):
        field = InterferenceField(make_model(airtime=2.0))
        field.register(0, Point(0, 0), 10_000.0, now=0.0)
        field.prune(1.0)
        assert len(field) == 1
        field.prune(2.0)  # end == now counts as expired
        assert len(field) == 0
        assert field.interference_at(Point(10.0, 0.0)) == 0.0

    def test_grid_and_scan_paths_agree(self):
        # Same geometry queried below and above the grid threshold must give
        # bit-identical sums (the cutoff filter applies to both paths).
        model = make_model()
        positions = [(37.0 * i % 400.0, 61.0 * i % 400.0) for i in range(GRID_QUERY_THRESHOLD + 8)]
        small = InterferenceField(model)
        big = InterferenceField(model)
        for i, (x, y) in enumerate(positions):
            big.register(i, Point(x, y), 5_000.0 + i, now=0.0)
        for i, (x, y) in enumerate(positions[: GRID_QUERY_THRESHOLD - 2]):
            small.register(i, Point(x, y), 5_000.0 + i, now=0.0)
        # Rebuild the scan-mode sum manually over the big field's actives.
        query = Point(123.0, 321.0)
        cutoff = model.cutoff_distance(max(5_000.0 + i for i in range(len(positions))))
        expected = 0.0
        for i, (x, y) in enumerate(positions):
            d = math.hypot(x - query.x, y - query.y)
            if d <= cutoff:
                expected += model.propagation.reception_power(5_000.0 + i, d)
        assert len(big) > GRID_QUERY_THRESHOLD
        assert big.interference_at(query) == pytest.approx(expected, rel=0, abs=0.0)

    def test_sinr_at(self):
        model = make_model()
        field = InterferenceField(model)
        assert field.sinr_at(Point(0, 0), 1.0) == pytest.approx(1.0 / model.noise_floor)


class _Recorder(Process):
    def __init__(self):
        self.received = []

    def on_message(self, ctx, message, info):
        self.received.append((ctx.node_id, message.kind, info.sender))


class TestInterferenceChannel:
    def _network(self):
        # A chain: 0 -- 1 -- 2, each hop 100 apart.
        return Network.from_positions([(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)])

    def test_isolated_transmission_delivered(self):
        network = self._network()
        channel = InterferenceChannel(network)
        engine = SimulationEngine(network, channel=channel)
        recorder = _Recorder()
        engine.register(1, recorder)
        engine.context_for(1)  # registered but silent
        engine.transmit(0, network.required_power(0, 1), Message("data"), 1)
        engine.run_to_completion()
        assert recorder.received == [(1, "data", 0)]
        assert channel.deliveries_lost == 0

    def test_concurrent_nearby_transmissions_collide(self):
        network = self._network()
        channel = InterferenceChannel(network)
        engine = SimulationEngine(network, channel=channel)
        recorder = _Recorder()
        engine.register(1, recorder)
        # Node 2 is already blasting when node 0 talks to 1: node 2's signal
        # at node 1 equals node 0's (same distance), so SINR ~ 1 < 2.  The
        # SINR test runs at transmit time, so only the later send suffers.
        engine.transmit(2, network.required_power(2, 1), Message("noise"), 1)
        engine.transmit(0, network.required_power(0, 1), Message("data"), 1)
        engine.run_to_completion()
        kinds = [kind for _, kind, _ in recorder.received]
        assert "noise" in kinds
        assert "data" not in kinds
        assert channel.deliveries_lost == 1

    def test_half_duplex_emerges(self):
        network = self._network()
        channel = InterferenceChannel(network)
        engine = SimulationEngine(network, channel=channel)
        recorder = _Recorder()
        engine.register(1, recorder)
        # Node 1 is itself transmitting when node 0's message is planned:
        # its own signal at distance zero crushes the SINR.
        engine.transmit(1, network.required_power(1, 2), Message("out"), 2)
        engine.transmit(0, network.required_power(0, 1), Message("in"), 1)
        engine.run_to_completion()
        assert recorder.received == []

    def test_sequential_transmissions_do_not_interfere(self):
        network = self._network()
        channel = InterferenceChannel(network)
        engine = SimulationEngine(network, channel=channel)
        recorder = _Recorder()
        engine.register(1, recorder)

        power = network.required_power(0, 1)
        engine.transmit(0, power, Message("first"), 1)
        engine.run_to_completion()
        engine.now = 5.0  # well past the airtime
        engine.transmit(0, power, Message("second"), 1)
        engine.run_to_completion()
        kinds = [kind for _, kind, _ in recorder.received]
        assert kinds == ["first", "second"]

    def test_reliable_channel_has_noop_hook(self):
        # The base-class hook must be callable on channels that ignore it.
        channel = ReliableChannel()
        channel.begin_transmission(
            Envelope(message=Message("x"), sender=0, transmit_power=1.0), Point(0, 0), 0.0
        )
        assert channel.plan_delivery(
            Envelope(message=Message("x"), sender=0, transmit_power=1.0), 1, 10.0
        ) == [1.0]
