"""Tests for traffic workload specifications (repro.traffic.spec)."""

import pickle

import pytest

from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.traffic.spec import BURST, CBR, HOTSPOT, UNIFORM, Flow, TrafficSpec


@pytest.fixture
def network():
    return random_uniform_placement(PlacementConfig(node_count=30), seed=7)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TrafficSpec(kind="torrent")

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            TrafficSpec(routing="shortest-widest")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"packets_per_flow": 0},
            {"packet_interval": 0.0},
            {"queue_capacity": 0},
            {"retransmit_limit": -1},
            {"ack_timeout": 0.0},
            {"battery_capacity": 0.0},
            {"noise_floor": 0.0},
            {"sinr_threshold": -1.0},
            {"horizon": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs)

    def test_spec_is_picklable_and_hashable(self):
        spec = TrafficSpec(kind=HOTSPOT, flow_count=3, interference=True)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(TrafficSpec(kind=HOTSPOT, flow_count=3, interference=True))


class TestFlowGeneration:
    def test_flows_replay_identically(self, network):
        spec = TrafficSpec(kind=CBR, flow_count=8)
        assert spec.build_flows(network, 5) == spec.build_flows(network, 5)
        assert spec.build_flows(network, 5) != spec.build_flows(network, 6)

    def test_component_seed_is_kind_dependent(self):
        cbr = TrafficSpec(kind=CBR)
        burst = TrafficSpec(kind=BURST)
        assert cbr.component_seed(3, "workload") != burst.component_seed(3, "workload")
        assert cbr.component_seed(3, "workload") == TrafficSpec(kind=CBR).component_seed(3, "workload")

    def test_cbr_flow_shape(self, network):
        spec = TrafficSpec(kind=CBR, flow_count=5, packets_per_flow=7, packet_interval=3.0)
        flows = spec.build_flows(network, 0)
        assert len(flows) == 5
        for flow in flows:
            assert flow.source != flow.destination
            assert flow.packets == 7
            assert flow.interval == 3.0
            assert 0.0 <= flow.start <= 3.0

    def test_hotspot_sinks_at_one_node(self, network):
        spec = TrafficSpec(kind=HOTSPOT, flow_count=6)
        flows = spec.build_flows(network, 0)
        sinks = {flow.destination for flow in flows}
        assert len(sinks) == 1
        assert all(flow.source != flow.destination for flow in flows)

    def test_uniform_generates_single_packet_flows(self, network):
        spec = TrafficSpec(kind=UNIFORM, flow_count=4, packets_per_flow=3)
        flows = spec.build_flows(network, 0)
        assert len(flows) == 12
        assert all(flow.packets == 1 for flow in flows)

    def test_burst_starts_inside_window(self, network):
        spec = TrafficSpec(kind=BURST, flow_count=10, burst_window=1.5, start_time=4.0)
        flows = spec.build_flows(network, 0)
        assert all(4.0 <= flow.start <= 5.5 for flow in flows)

    def test_tiny_population_yields_no_flows(self):
        lonely = random_uniform_placement(PlacementConfig(node_count=1), seed=0)
        assert TrafficSpec().build_flows(lonely, 0) == ()

    def test_flow_ids_are_unique(self, network):
        flows = TrafficSpec(kind=UNIFORM, flow_count=3, packets_per_flow=4).build_flows(network, 1)
        ids = [flow.flow_id for flow in flows]
        assert len(ids) == len(set(ids))
