"""Tests for the traffic experiment harness and its scenario/grid wiring."""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import format_report, run_grid, summarize_grid
from repro.io.results import results_to_json
from repro.scenarios.spec import MobilitySpec, PlacementSpec, ScenarioSpec
from repro.traffic.experiment import (
    aggregate_results,
    compare_topologies,
    format_traffic_report,
    load_traffic_results,
    run_traffic_experiment,
    summarize_traffic,
)
from repro.traffic.spec import TrafficSpec


@pytest.fixture
def tiny_spec():
    return TrafficSpec(kind="cbr", flow_count=3, packets_per_flow=2)


class TestExperiment:
    def test_unknown_topology_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            run_traffic_experiment(tiny_spec, topology="steiner-tree", node_count=15)

    def test_experiment_cell_is_deterministic(self, tiny_spec):
        first = run_traffic_experiment(tiny_spec, topology="mst", node_count=20, seed_index=1)
        second = run_traffic_experiment(tiny_spec, topology="mst", node_count=20, seed_index=1)
        assert results_to_json(first) == results_to_json(second)

    def test_compare_topologies_persists_cells(self, tiny_spec, tmp_path):
        results = compare_topologies(
            tiny_spec,
            topologies=("cbtc-opt", "max-power"),
            node_count=20,
            seeds=2,
            results_dir=tmp_path,
        )
        assert len(results) == 4
        assert (tmp_path / "cbr-cbtc-opt" / "seed-0000.json").is_file()
        assert (tmp_path / "cbr-max-power" / "seed-0001.json").is_file()
        loaded = load_traffic_results(tmp_path)
        assert set(loaded) == {"cbr-cbtc-opt", "cbr-max-power"}
        aggregates = summarize_traffic(tmp_path)
        assert {agg.label for agg in aggregates} == set(loaded)
        table = format_traffic_report(aggregates)
        assert "cbr-cbtc-opt" in table and "ratio" in table

    def test_topologies_share_placement_and_workload(self, tiny_spec):
        # The comparison must measure the topology, not sampling noise: for
        # one seed index every topology crosses the same placement with the
        # same flows (same derived cell seed, same offered packets).
        mst = run_traffic_experiment(tiny_spec, topology="mst", node_count=20, seed_index=0)
        dense = run_traffic_experiment(tiny_spec, topology="max-power", node_count=20, seed_index=0)
        assert mst.seed == dense.seed
        assert mst.report.offered_packets == dense.report.offered_packets

    def test_cbtc_is_sparser_than_max_power(self, tiny_spec):
        cbtc = run_traffic_experiment(tiny_spec, topology="cbtc-opt", node_count=40)
        dense = run_traffic_experiment(tiny_spec, topology="max-power", node_count=40)
        assert cbtc.edge_count < dense.edge_count
        assert cbtc.average_degree < dense.average_degree

    def test_empty_results_dir_summarizes_empty(self, tmp_path):
        assert summarize_traffic(tmp_path) == []
        assert format_traffic_report([]) == "(no traffic results found)"

    def test_aggregate_results_covers_only_given_cells(self, tiny_spec, tmp_path):
        # Stale files from an earlier differently-parameterized run share the
        # directory, but the in-memory aggregation only sees this run.
        compare_topologies(tiny_spec, topologies=("mst",), node_count=20, seeds=2, results_dir=tmp_path)
        fresh = compare_topologies(
            tiny_spec, topologies=("mst",), node_count=15, seeds=1, results_dir=tmp_path
        )
        aggregates = aggregate_results(fresh)
        assert len(aggregates) == 1
        assert aggregates[0].runs == 1
        assert aggregates[0].offered == fresh[0].report.offered_packets
        # ...while the directory view still blends both (2 files remain).
        assert summarize_traffic(tmp_path)[0].runs == 2


class TestTrafficCli:
    def test_traffic_run_and_report(self, capsys, tmp_path):
        argv = [
            "traffic",
            "run",
            "--workload",
            "cbr",
            "--topology",
            "mst",
            "--nodes",
            "20",
            "--flows",
            "3",
            "--packets",
            "2",
            "--results-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cbr-mst" in out
        assert main(["traffic", "report", "--results-dir", str(tmp_path)]) == 0
        assert "cbr-mst" in capsys.readouterr().out

    def test_traffic_report_empty_dir_is_friendly(self, capsys, tmp_path):
        assert main(["traffic", "report", "--results-dir", str(tmp_path / "nope")]) == 1
        err = capsys.readouterr().err
        assert "no traffic results" in err

    def test_scenarios_report_empty_dir_is_friendly(self, capsys, tmp_path):
        assert main(["scenarios", "report", "--results-dir", str(tmp_path / "nope")]) == 1
        err = capsys.readouterr().err
        assert "no scenario results" in err
        assert "Traceback" not in err


def traffic_scenario(name="traffic-grid-test"):
    return ScenarioSpec(
        name=name,
        placement=PlacementSpec(kind="uniform", node_count=25),
        mobility=MobilitySpec(kind="stationary"),
        traffic=TrafficSpec(kind="hotspot", flow_count=3, packets_per_flow=2),
        epochs=2,
        steps_per_epoch=1,
    )


class TestScenarioTrafficWiring:
    def test_grid_persists_traffic_and_serial_parallel_match(self, tmp_path):
        spec = traffic_scenario()
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_grid([spec], seeds=2, workers=1, results_dir=serial_dir)
        run_grid([spec], seeds=2, workers=2, results_dir=parallel_dir)
        for index in range(2):
            name = f"seed-{index:04d}.json"
            serial_bytes = (serial_dir / spec.name / name).read_bytes()
            parallel_bytes = (parallel_dir / spec.name / name).read_bytes()
            assert serial_bytes == parallel_bytes
            payload = json.loads(serial_bytes)
            assert payload["epochs"][0]["traffic"]["offered_packets"] > 0
            assert payload["summary"]["mean_delivery_ratio"] is not None

    def test_report_table_grows_delivery_column(self, tmp_path):
        run_grid([traffic_scenario()], seeds=1, workers=1, results_dir=tmp_path)
        aggregates = summarize_grid(tmp_path)
        assert aggregates[0].mean_delivery_ratio is not None
        table = format_report(aggregates)
        assert "delivery" in table

    def test_traffic_free_report_table_unchanged(self, tmp_path):
        plain = ScenarioSpec(
            name="no-traffic-test",
            placement=PlacementSpec(kind="uniform", node_count=15),
            epochs=1,
        )
        run_grid([plain], seeds=1, workers=1, results_dir=tmp_path)
        table = format_report(summarize_grid(tmp_path))
        assert "delivery" not in table
