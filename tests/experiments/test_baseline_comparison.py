"""Tests for the baseline comparison experiment."""

import math

import pytest

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.net.placement import PlacementConfig


@pytest.fixture(scope="module")
def comparison():
    return run_baseline_comparison(
        network_count=2,
        config=PlacementConfig(node_count=30),
        base_seed=0,
        compute_stretch=False,
    )


class TestBaselineComparison:
    def test_all_families_present(self, comparison):
        names = {entry.name for entry in comparison}
        assert "max-power" in names
        assert "rng" in names
        assert "gabriel" in names
        assert "mst" in names
        assert any(name.startswith("cbtc-all") for name in names)
        assert any(name.startswith("cbtc-basic") for name in names)

    def test_max_power_is_densest(self, comparison):
        by_name = {entry.name: entry for entry in comparison}
        densest = max(comparison, key=lambda entry: entry.average_degree)
        assert densest.name == "max-power"
        assert by_name["max-power"].average_radius == pytest.approx(
            max(entry.average_radius for entry in comparison)
        )

    def test_mst_is_sparsest(self, comparison):
        by_name = {entry.name: entry for entry in comparison}
        assert by_name["mst"].average_degree == pytest.approx(
            min(entry.average_degree for entry in comparison), rel=1e-6
        )

    def test_cbtc_all_is_rng_like_in_degree(self, comparison):
        # The qualitative claim: fully-optimized CBTC lands in the same sparse
        # regime as the position-based proximity graphs (RNG/Gabriel), far
        # below the uncontrolled max-power degree.
        by_name = {entry.name: entry for entry in comparison}
        cbtc = next(entry for entry in comparison if entry.name.startswith("cbtc-all"))
        assert cbtc.average_degree < by_name["max-power"].average_degree / 2
        assert cbtc.average_degree < 6.0
        assert by_name["rng"].average_degree < 6.0

    def test_connectivity_preserving_families(self, comparison):
        by_name = {entry.name: entry for entry in comparison}
        for name in ("max-power", "rng", "gabriel"):
            assert by_name[name].connectivity_preserved_fraction == 1.0
        for entry in comparison:
            if entry.name.startswith("cbtc"):
                assert entry.connectivity_preserved_fraction == 1.0

    def test_power_stretch_computed_when_requested(self):
        result = run_baseline_comparison(
            network_count=1,
            config=PlacementConfig(node_count=20),
            base_seed=1,
            compute_stretch=True,
        )
        cbtc = next(entry for entry in result if entry.name.startswith("cbtc-all"))
        assert math.isnan(cbtc.average_power_stretch) or cbtc.average_power_stretch >= 1.0
