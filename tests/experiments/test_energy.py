"""Tests for the energy / lifetime experiment."""

import math

import pytest

from repro.experiments.energy import estimate_lifetime, run_energy_experiment
from repro.net.placement import PlacementConfig


class TestEstimateLifetime:
    def test_lifetime_is_battery_over_hottest_node(self):
        assert estimate_lifetime({0: 10.0, 1: 2.0}, battery_capacity=100.0) == 10

    def test_zero_power_network_lives_forever(self):
        assert estimate_lifetime({0: 0.0}, battery_capacity=100.0, max_rounds=500) == 500

    def test_lifetime_capped(self):
        assert estimate_lifetime({0: 1e-12}, battery_capacity=1.0, max_rounds=1000) == 1000


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def profiles(self):
        return run_energy_experiment(config=PlacementConfig(node_count=40), seed=1)

    def test_all_three_profiles_present(self, profiles):
        assert [p.name for p in profiles] == ["max power", "cbtc basic", "cbtc all optimizations"]

    def test_topology_control_reduces_total_power(self, profiles):
        by_name = {p.name: p for p in profiles}
        assert (
            by_name["cbtc all optimizations"].total_transmit_power
            < by_name["cbtc basic"].total_transmit_power
            < by_name["max power"].total_transmit_power
        )

    def test_topology_control_extends_lifetime(self, profiles):
        by_name = {p.name: p for p in profiles}
        assert by_name["cbtc all optimizations"].lifetime_rounds >= by_name["max power"].lifetime_rounds

    def test_topology_control_reduces_interference(self, profiles):
        by_name = {p.name: p for p in profiles}
        assert by_name["cbtc all optimizations"].interference < by_name["max power"].interference

    def test_power_stretch_is_the_price_paid(self, profiles):
        by_name = {p.name: p for p in profiles}
        assert by_name["max power"].power_stretch == pytest.approx(1.0)
        assert by_name["cbtc all optimizations"].power_stretch >= 1.0
        assert math.isfinite(by_name["cbtc all optimizations"].power_stretch)
