"""Tests for the Figure 6 harness."""

import math

import pytest

from repro.core.analysis import preserves_connectivity
from repro.experiments.figure6 import run_figure6
from repro.net.placement import PlacementConfig


@pytest.fixture(scope="module")
def figure6():
    # A smaller network keeps the test fast while preserving every qualitative
    # relationship between the eight panels.
    return run_figure6(seed=5, config=PlacementConfig(node_count=40))


class TestPanels:
    def test_all_eight_panels_present(self, figure6):
        assert sorted(figure6.panels) == list("abcdefgh")

    def test_panel_a_is_max_power(self, figure6):
        panel = figure6.panel("a")
        assert panel.alpha is None
        assert panel.metrics.average_radius == pytest.approx(500.0)
        assert set(panel.graph.edges) == set(figure6.network.max_power_graph().edges)

    def test_every_controlled_panel_is_subgraph_of_panel_a(self, figure6):
        reference_edges = set(map(frozenset, figure6.panel("a").graph.edges))
        for name in "bcdefgh":
            edges = set(map(frozenset, figure6.panel(name).graph.edges))
            assert edges <= reference_edges, name

    def test_every_panel_preserves_connectivity(self, figure6):
        reference = figure6.network.max_power_graph()
        for name, panel in figure6.panels.items():
            assert preserves_connectivity(reference, panel.graph), name

    def test_optimizations_strictly_thin_the_graph(self, figure6):
        # basic -> shrink-back -> (asym) -> all optimizations, per alpha.
        assert figure6.panel("b").metrics.edge_count >= figure6.panel("d").metrics.edge_count
        assert figure6.panel("d").metrics.edge_count >= figure6.panel("f").metrics.edge_count
        assert figure6.panel("f").metrics.edge_count >= figure6.panel("h").metrics.edge_count
        assert figure6.panel("c").metrics.edge_count >= figure6.panel("e").metrics.edge_count
        assert figure6.panel("e").metrics.edge_count >= figure6.panel("g").metrics.edge_count
        assert figure6.panel("a").metrics.edge_count > figure6.panel("b").metrics.edge_count

    def test_alpha_assignments_match_the_paper(self, figure6):
        assert figure6.panel("b").alpha == pytest.approx(2 * math.pi / 3)
        assert figure6.panel("c").alpha == pytest.approx(5 * math.pi / 6)
        assert figure6.panel("g").alpha == pytest.approx(5 * math.pi / 6)
        assert figure6.panel("h").alpha == pytest.approx(2 * math.pi / 3)

    def test_edges_property_sorted_and_normalized(self, figure6):
        edges = figure6.panel("g").edges
        assert edges == sorted(edges)
        assert all(u < v for u, v in edges)

    def test_summary_table_lists_all_panels(self, figure6):
        text = figure6.summary_table()
        for name in "abcdefgh":
            assert f"({name})" in text


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = PlacementConfig(node_count=25)
        first = run_figure6(seed=9, config=config)
        second = run_figure6(seed=9, config=config)
        for name in first.panels:
            assert first.panel(name).edges == second.panel(name).edges

    def test_custom_network_is_used(self, small_random_network):
        result = run_figure6(network=small_random_network)
        assert result.network is small_random_network
        assert result.panel("a").graph.number_of_nodes() == len(small_random_network)
