"""Tests for the Table 1 harness.

These tests reproduce the *shape* of the paper's Table 1 with a reduced
number of random networks (the full 100-network run lives in the benchmark
suite): the ordering between configurations must match the paper, and the
values must land within a loose tolerance of the published numbers.
"""

import math

import pytest

from repro.experiments.table1 import (
    ALPHA_FIVE_SIXTHS,
    ALPHA_TWO_THIRDS,
    TABLE1_PAPER_VALUES,
    run_table1,
)
from repro.net.placement import PlacementConfig


@pytest.fixture(scope="module")
def table1():
    return run_table1(network_count=5, base_seed=0)


class TestStructure:
    def test_all_expected_rows_present(self, table1):
        keys = {row.key for row in table1.rows}
        assert keys == {
            "basic/5pi6",
            "basic/2pi3",
            "op1/5pi6",
            "op1/2pi3",
            "op1+op2/2pi3",
            "all/5pi6",
            "all/2pi3",
            "maxpower",
        }

    def test_paper_values_attached(self, table1):
        row = table1.row("basic/5pi6")
        assert row.paper_degree == TABLE1_PAPER_VALUES["degree"]["basic/5pi6"]
        assert row.paper_radius == TABLE1_PAPER_VALUES["radius"]["basic/5pi6"]

    def test_missing_row_lookup_raises(self, table1):
        with pytest.raises(KeyError):
            table1.row("nonexistent")

    def test_as_table_renders_every_row(self, table1):
        text = table1.as_table()
        assert "Basic, alpha=5pi6" in text
        assert "Max Power" in text
        assert len(text.splitlines()) == 2 + len(table1.rows)


class TestShape:
    def test_max_power_row(self, table1):
        row = table1.row("maxpower")
        assert row.average_radius == pytest.approx(500.0)
        # Average degree of the paper's workload is around 25.
        assert 20.0 <= row.average_degree <= 32.0

    def test_optimizations_monotonically_reduce_degree_and_radius(self, table1):
        for alpha_label in ("5pi6", "2pi3"):
            basic = table1.row(f"basic/{alpha_label}")
            op1 = table1.row(f"op1/{alpha_label}")
            all_ops = table1.row(f"all/{alpha_label}")
            assert basic.average_degree > op1.average_degree > all_ops.average_degree
            assert basic.average_radius > op1.average_radius > all_ops.average_radius

    def test_two_thirds_basic_denser_than_five_sixths(self, table1):
        # Smaller alpha forces more neighbours and a larger radius (Table 1).
        assert table1.row("basic/2pi3").average_degree > table1.row("basic/5pi6").average_degree
        assert table1.row("basic/2pi3").average_radius > table1.row("basic/5pi6").average_radius

    def test_asymmetric_removal_gives_big_radius_win_at_two_thirds(self, table1):
        # The Section 3.2 trade-off: op2 at 2*pi/3 beats shrink-back alone.
        assert table1.row("op1+op2/2pi3").average_radius < table1.row("op1/2pi3").average_radius
        assert table1.row("op1+op2/2pi3").average_degree < table1.row("op1/2pi3").average_degree

    def test_all_optimizations_nearly_equal_across_alpha(self, table1):
        # The paper's headline: after all optimizations both alpha values end
        # up with essentially the same degree and radius.
        degree_gap = abs(table1.row("all/5pi6").average_degree - table1.row("all/2pi3").average_degree)
        radius_gap = abs(table1.row("all/5pi6").average_radius - table1.row("all/2pi3").average_radius)
        assert degree_gap < 0.5
        assert radius_gap < 25.0

    def test_values_land_near_paper_numbers(self, table1):
        # Loose envelope: within 25% of the published averages for every cell
        # the paper reports (the workload is fully specified, so even 5
        # networks land close).
        for row in table1.rows:
            if row.paper_degree:
                assert row.average_degree == pytest.approx(row.paper_degree, rel=0.30), row.key
            if row.paper_radius:
                assert row.average_radius == pytest.approx(row.paper_radius, rel=0.25), row.key

    def test_topology_control_wins_by_large_factors(self, table1):
        max_power = table1.row("maxpower")
        best = table1.row("all/5pi6")
        assert max_power.average_degree / best.average_degree > 4.0
        assert max_power.average_radius / best.average_radius > 2.0


class TestCustomParameters:
    def test_custom_alpha_list_and_small_workload(self):
        config = PlacementConfig(node_count=25)
        result = run_table1(network_count=2, config=config, alphas=(ALPHA_FIVE_SIXTHS,), base_seed=3)
        keys = {row.key for row in result.rows}
        assert "basic/5pi6" in keys
        assert "basic/2pi3" not in keys
        assert result.node_count == 25

    def test_alpha_constants(self):
        assert ALPHA_FIVE_SIXTHS == pytest.approx(5 * math.pi / 6)
        assert ALPHA_TWO_THIRDS == pytest.approx(2 * math.pi / 3)
