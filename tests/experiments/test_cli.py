"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--networks", "2"])
        assert args.command == "table1"
        assert args.networks == 2
        for command in ("figure6", "alpha-sweep", "counterexample", "reconfig"):
            assert parser.parse_args([command]).command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1_command(self, capsys):
        assert main(["table1", "--networks", "1"]) == 0
        output = capsys.readouterr().out
        assert "Basic, alpha=5pi6" in output
        assert "Max Power" in output

    def test_figure6_command_with_ascii(self, capsys):
        assert main(["figure6", "--seed", "1", "--ascii", "--width", "40", "--height", "12"]) == 0
        output = capsys.readouterr().out
        assert "panel (a)" in output
        assert "*" in output

    def test_alpha_sweep_command(self, capsys):
        assert main(["alpha-sweep", "--networks", "1"]) == 0
        output = capsys.readouterr().out
        assert "alpha/pi" in output

    def test_counterexample_command(self, capsys):
        assert main(["counterexample"]) == 0
        output = capsys.readouterr().out
        assert "N_alpha asymmetric = True" in output
        assert "G_alpha preserves connectivity = False" in output

    def test_reconfig_command(self, capsys):
        assert main(["reconfig", "--epochs", "1", "--nodes", "25"]) == 0
        output = capsys.readouterr().out
        assert "Reconfiguration experiment" in output
