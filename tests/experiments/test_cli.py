"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--networks", "2"])
        assert args.command == "table1"
        assert args.networks == 2
        for command in ("figure6", "alpha-sweep", "counterexample", "reconfig", "serve", "load"):
            assert parser.parse_args([command]).command == command
        for scenario_command in ("list", "run", "report"):
            parsed = parser.parse_args(["scenarios", scenario_command])
            assert parsed.command == "scenarios"
            assert parsed.scenario_command == scenario_command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1_command(self, capsys):
        assert main(["table1", "--networks", "1"]) == 0
        output = capsys.readouterr().out
        assert "Basic, alpha=5pi6" in output
        assert "Max Power" in output

    def test_figure6_command_with_ascii(self, capsys):
        assert main(["figure6", "--seed", "1", "--ascii", "--width", "40", "--height", "12"]) == 0
        output = capsys.readouterr().out
        assert "panel (a)" in output
        assert "*" in output

    def test_alpha_sweep_command(self, capsys):
        assert main(["alpha-sweep", "--networks", "1"]) == 0
        output = capsys.readouterr().out
        assert "alpha/pi" in output

    def test_counterexample_command(self, capsys):
        assert main(["counterexample"]) == 0
        output = capsys.readouterr().out
        assert "N_alpha asymmetric = True" in output
        assert "G_alpha preserves connectivity = False" in output

    def test_reconfig_command(self, capsys):
        assert main(["reconfig", "--epochs", "1", "--nodes", "25"]) == 0
        output = capsys.readouterr().out
        assert "Reconfiguration experiment" in output


class TestScenarioCommands:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        assert "partition-and-heal" in output
        assert "lossy-channel-chaos" in output

    def test_scenarios_run_persists_and_caches(self, capsys, tmp_path):
        argv = [
            "scenarios",
            "run",
            "--scenario",
            "flash-crowd-join",
            "--seeds",
            "2",
            "--workers",
            "1",
            "--nodes",
            "15",
            "--epochs",
            "2",
            "--results-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "2 computed, 0 cached" in output
        assert (tmp_path / "flash-crowd-join" / "seed-0000.json").is_file()
        # A second invocation finds every cell cached.
        assert main(argv) == 0
        assert "0 computed, 2 cached" in capsys.readouterr().out

    def test_scenarios_run_without_selection_errors(self, capsys):
        assert main(["scenarios", "run", "--seeds", "1"]) == 2
        assert "no scenario selected" in capsys.readouterr().err

    def test_scenarios_run_unknown_name_errors_politely(self, capsys):
        assert main(["scenarios", "run", "--scenario", "partition-heal"]) == 1
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "partition-and-heal" in err  # the suggestions list the catalogue

    def test_serve_zero_shards_errors_politely(self, capsys):
        assert main(["serve", "--shards", "0"]) == 1
        assert "--shards must be at least 1" in capsys.readouterr().err

    def test_load_invalid_config_errors_politely(self, capsys):
        assert main(["load", "--worlds", "0"]) == 1
        assert "at least one world" in capsys.readouterr().err
        assert main(["load", "--nodes", "1"]) == 1
        assert "at least 2 nodes" in capsys.readouterr().err

    def test_serve_occupied_port_errors_politely(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port), "--inline"]) == 1
            assert "cannot listen" in capsys.readouterr().err
        finally:
            blocker.close()

    def test_load_without_server_errors_politely(self, capsys):
        # Nothing listens on this port; the CLI must fail with advice, not
        # a traceback.
        assert main(["load", "--port", "1", "--worlds", "1", "--requests", "1"]) == 1
        assert "is 'cbtc serve' running?" in capsys.readouterr().err

    def test_scenarios_run_zero_workers_errors_politely(self, capsys):
        argv = ["scenarios", "run", "--scenario", "battery-death", "--workers", "0"]
        assert main(argv) == 1
        assert "--workers must be at least 1" in capsys.readouterr().err

    def test_scenarios_run_negative_workers_errors_politely(self, capsys):
        argv = ["scenarios", "run", "--all", "--workers", "-2"]
        assert main(argv) == 1
        assert "--workers must be at least 1" in capsys.readouterr().err

    def test_scenarios_run_zero_seeds_errors_politely(self, capsys):
        argv = ["scenarios", "run", "--scenario", "battery-death", "--seeds", "0"]
        assert main(argv) == 2
        assert "at least one seed" in capsys.readouterr().err

    def test_scenarios_run_spec_conflict_errors_politely(self, capsys, tmp_path):
        base = ["scenarios", "run", "--scenario", "flash-crowd-join", "--seeds", "1",
                "--epochs", "2", "--results-dir", str(tmp_path)]
        assert main(base + ["--nodes", "10"]) == 0
        capsys.readouterr()
        assert main(base + ["--nodes", "12"]) == 2
        assert "different scenario spec" in capsys.readouterr().err

    def test_scenarios_report(self, capsys, tmp_path):
        main(
            [
                "scenarios",
                "run",
                "--scenario",
                "flash-crowd-join",
                "--seeds",
                "1",
                "--nodes",
                "12",
                "--epochs",
                "2",
                "--results-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert main(["scenarios", "report", "--results-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "flash-crowd-join" in output
        assert "preserved" in output
