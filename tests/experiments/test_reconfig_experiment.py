"""Tests for the Section 4 reconfiguration experiment harness."""


from repro.experiments.reconfig import run_reconfiguration_experiment
from repro.net.failures import NoFailures
from repro.net.mobility import RandomWalkModel, StationaryModel
from repro.net.placement import PlacementConfig

SMALL = PlacementConfig(node_count=30)


class TestReconfigurationExperiment:
    def test_connectivity_preserved_across_epochs(self):
        result = run_reconfiguration_experiment(
            epochs=3,
            seed=1,
            config=SMALL,
            mobility=RandomWalkModel(max_step=60, seed=1),
        )
        assert len(result.epochs) == 3
        assert result.all_epochs_preserved_connectivity

    def test_static_failure_free_run_needs_no_reruns(self):
        result = run_reconfiguration_experiment(
            epochs=2,
            seed=2,
            config=SMALL,
            mobility=StationaryModel(),
            failures=NoFailures(),
        )
        assert result.all_epochs_preserved_connectivity
        assert result.total_reruns() == 0
        assert all(epoch.crashed_nodes == 0 for epoch in result.epochs)

    def test_mobility_generates_events_and_reruns(self):
        result = run_reconfiguration_experiment(
            epochs=2,
            seed=3,
            config=SMALL,
            mobility=RandomWalkModel(max_step=150, seed=3),
            failures=NoFailures(),
        )
        assert sum(epoch.events_applied for epoch in result.epochs) > 0

    def test_epoch_metadata(self):
        result = run_reconfiguration_experiment(epochs=2, seed=4, config=SMALL)
        assert [epoch.epoch for epoch in result.epochs] == [1, 2]
        for epoch in result.epochs:
            assert epoch.average_degree >= 0.0
