"""Tests for the parallel experiment runner (repro.experiments.runner).

The load-bearing property is serial/parallel equivalence: the same grid run
with ``workers=1`` and with a multiprocessing pool must persist
byte-identical result files, because per-task seeds are derived (never drawn
from shared RNG state) and serialization happens in exactly one code path.
"""

import json
import math

import pytest

from repro.experiments.runner import (
    build_grid,
    execute_task,
    format_report,
    load_grid_results,
    run_grid,
    summarize_grid,
    task_seed,
)
from repro.scenarios.spec import (
    ChannelSpec,
    ChurnEvent,
    FailureSpec,
    MobilitySpec,
    PlacementSpec,
    ScenarioSpec,
)

ALPHA = 5.0 * math.pi / 6.0

WALK = ScenarioSpec(
    name="grid-walk",
    placement=PlacementSpec(node_count=15),
    mobility=MobilitySpec(kind="random-walk", max_step=30.0),
    failures=FailureSpec(kind="crash", crash_probability=0.05),
    epochs=2,
    steps_per_epoch=2,
    alpha=ALPHA,
)
CROWD = ScenarioSpec(
    name="grid-crowd",
    placement=PlacementSpec(node_count=12),
    churn=(ChurnEvent(epoch=2, joins=6),),
    epochs=2,
    steps_per_epoch=1,
    alpha=ALPHA,
)
CHAOS = ScenarioSpec(
    name="grid-chaos",
    placement=PlacementSpec(node_count=10),
    channel=ChannelSpec(kind="lossy", loss_probability=0.15),
    protocol="distributed",
    epochs=1,
    steps_per_epoch=1,
    alpha=ALPHA,
)


def _file_bytes(root):
    return {
        str(path.relative_to(root)): path.read_bytes() for path in sorted(root.rglob("*.json"))
    }


class TestSeedDerivation:
    def test_task_seed_ignores_grid_composition(self):
        # The seed of a cell depends only on (base, scenario, index): a grid
        # with more scenarios or seeds assigns the same seeds to shared cells.
        small = build_grid([WALK], 2, base_seed=0)
        large = build_grid([CROWD, WALK, CHAOS], 5, base_seed=0)
        small_seeds = {(t.spec.name, t.seed_index): t.seed for t in small}
        large_seeds = {(t.spec.name, t.seed_index): t.seed for t in large}
        for key, seed in small_seeds.items():
            assert large_seeds[key] == seed

    def test_task_seeds_are_distinct_across_cells(self):
        tasks = build_grid([WALK, CROWD, CHAOS], 8, base_seed=0)
        assert len({task.seed for task in tasks}) == len(tasks)

    def test_task_seed_is_a_pure_function(self):
        assert task_seed(3, "grid-walk", 5) == task_seed(3, "grid-walk", 5)
        assert task_seed(3, "grid-walk", 5) != task_seed(4, "grid-walk", 5)


class TestWorkerValidation:
    def test_zero_workers_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers must be at least 1"):
            run_grid([WALK], seeds=1, workers=0, results_dir=tmp_path)

    def test_negative_workers_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers must be at least 1"):
            run_grid([WALK], seeds=1, workers=-3, results_dir=tmp_path)
        assert not any(tmp_path.iterdir())  # nothing was computed or written


class TestSerialParallelEquivalence:
    def test_serial_and_parallel_results_are_byte_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        scenarios = [WALK, CROWD, CHAOS]
        serial = run_grid(scenarios, seeds=2, workers=1, results_dir=serial_dir)
        parallel = run_grid(scenarios, seeds=2, workers=3, results_dir=parallel_dir)
        assert serial.computed == parallel.computed == 6
        serial_files = _file_bytes(serial_dir)
        parallel_files = _file_bytes(parallel_dir)
        assert serial_files.keys() == parallel_files.keys()
        assert serial_files == parallel_files

    def test_partial_then_resumed_grid_matches_one_shot_run(self, tmp_path):
        # Computing a subset first and resuming must not perturb the rest:
        # seeds are order-independent, so the final bytes match a clean run.
        one_shot_dir = tmp_path / "one-shot"
        resumed_dir = tmp_path / "resumed"
        run_grid([WALK, CROWD], seeds=2, workers=1, results_dir=one_shot_dir)
        run_grid([CROWD], seeds=2, workers=1, results_dir=resumed_dir)
        run_grid([WALK, CROWD], seeds=2, workers=2, results_dir=resumed_dir)
        assert _file_bytes(one_shot_dir) == _file_bytes(resumed_dir)


class TestResumeFromCache:
    def test_rerun_hits_the_cache(self, tmp_path):
        first = run_grid([WALK], seeds=3, workers=1, results_dir=tmp_path)
        assert (first.computed, first.cached) == (3, 0)
        before = _file_bytes(tmp_path)
        second = run_grid([WALK], seeds=3, workers=1, results_dir=tmp_path)
        assert (second.computed, second.cached) == (0, 3)
        assert _file_bytes(tmp_path) == before

    def test_corrupt_result_is_recomputed(self, tmp_path):
        run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        victim = tmp_path / "grid-walk" / "seed-0000.json"
        intact = (tmp_path / "grid-walk" / "seed-0001.json").read_bytes()
        victim.write_text("{not json", encoding="utf-8")
        summary = run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        assert (summary.computed, summary.cached) == (1, 1)
        assert json.loads(victim.read_text(encoding="utf-8"))["scenario"] == "grid-walk"
        assert (tmp_path / "grid-walk" / "seed-0001.json").read_bytes() == intact

    def test_no_resume_recomputes_everything(self, tmp_path):
        run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        summary = run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path, resume=False)
        assert (summary.computed, summary.cached) == (2, 0)

    def test_mismatched_spec_conflicts_instead_of_silently_overwriting(self, tmp_path):
        # A scaled-down smoke run must neither satisfy the cache for the
        # full scenario nor be silently destroyed by it: resuming over
        # results computed under a different spec is an error.
        scaled = WALK.scaled(node_count=8, epochs=1)
        run_grid([scaled], seeds=2, workers=1, results_dir=tmp_path)
        smoke_bytes = _file_bytes(tmp_path)
        with pytest.raises(ValueError, match="different scenario spec"):
            run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        # The conflicting run wrote nothing.
        assert _file_bytes(tmp_path) == smoke_bytes
        # resume=False is the explicit opt-in to overwrite.
        summary = run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path, resume=False)
        assert (summary.computed, summary.cached) == (2, 0)
        again = run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        assert (again.computed, again.cached) == (0, 2)

    def test_changed_base_seed_conflicts_instead_of_reusing_stale_results(self, tmp_path):
        # Results are a pure function of (spec, seed); a re-run with a new
        # --base-seed derives different seeds and must not report the old
        # derivation's files as cached (nor silently overwrite them).
        run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path, base_seed=0)
        with pytest.raises(ValueError, match="base seed"):
            run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path, base_seed=99)
        summary = run_grid(
            [WALK], seeds=2, workers=1, results_dir=tmp_path, base_seed=99, resume=False
        )
        assert (summary.computed, summary.cached) == (2, 0)
        payload = json.loads(
            (tmp_path / "grid-walk" / "seed-0000.json").read_text(encoding="utf-8")
        )
        assert payload["seed"] == task_seed(99, "grid-walk", 0)

    def test_interrupted_grid_keeps_completed_cells(self, tmp_path, monkeypatch):
        # Results are written as each task finishes, so a crash mid-grid
        # leaves the finished cells on disk for the next resume.
        import repro.experiments.runner as runner_module

        real_execute = runner_module.execute_task
        calls = {"count": 0}

        def flaky_execute(task):
            if calls["count"] == 1:
                raise RuntimeError("simulated crash after the first task")
            calls["count"] += 1
            return real_execute(task)

        monkeypatch.setattr(runner_module, "execute_task", flaky_execute)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        monkeypatch.setattr(runner_module, "execute_task", real_execute)
        summary = run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        assert (summary.computed, summary.cached) == (1, 1)

    def test_persisted_results_embed_their_spec(self, tmp_path):
        run_grid([WALK], seeds=1, workers=1, results_dir=tmp_path)
        payload = json.loads(
            (tmp_path / "grid-walk" / "seed-0000.json").read_text(encoding="utf-8")
        )
        assert payload["spec"]["name"] == "grid-walk"
        assert payload["spec"]["placement"]["node_count"] == 15
        assert payload["spec"]["epochs"] == WALK.epochs


class TestLoadingAndReporting:
    def test_results_round_trip_through_the_directory(self, tmp_path):
        run_grid([WALK, CROWD], seeds=2, workers=1, results_dir=tmp_path)
        loaded = load_grid_results(tmp_path)
        assert sorted(loaded) == ["grid-crowd", "grid-walk"]
        assert len(loaded["grid-walk"]) == 2
        run = loaded["grid-walk"][0]
        assert run["scenario"] == "grid-walk"
        assert len(run["epochs"]) == WALK.epochs
        assert run["summary"]["epochs"] == WALK.epochs

    def test_summarize_and_format(self, tmp_path):
        run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        aggregates = summarize_grid(tmp_path)
        assert len(aggregates) == 1
        assert aggregates[0].scenario == "grid-walk"
        assert aggregates[0].runs == 2
        report = format_report(aggregates)
        assert "grid-walk" in report
        assert "preserved" in report

    def test_empty_directory_reports_nothing(self, tmp_path):
        assert load_grid_results(tmp_path / "missing") == {}
        assert format_report(summarize_grid(tmp_path / "missing")) == "(no results found)"

    def test_corrupt_file_does_not_take_down_the_report(self, tmp_path):
        run_grid([WALK], seeds=2, workers=1, results_dir=tmp_path)
        (tmp_path / "grid-walk" / "seed-0000.json").write_text("{not json", encoding="utf-8")
        loaded = load_grid_results(tmp_path)
        assert len(loaded["grid-walk"]) == 1
        aggregates = summarize_grid(tmp_path)
        assert aggregates[0].runs == 1

    def test_execute_task_payload_matches_persisted_file(self, tmp_path):
        task = build_grid([WALK], 1)[0]
        _, payload = execute_task(task)
        run_grid([WALK], seeds=1, workers=1, results_dir=tmp_path)
        persisted = (tmp_path / task.relative_path).read_text(encoding="utf-8")
        assert payload == persisted


class TestValidation:
    def test_grid_requires_at_least_one_seed(self):
        with pytest.raises(ValueError):
            build_grid([WALK], 0)

    def test_names_resolve_through_the_catalogue(self):
        tasks = build_grid(["battery-death"], 1)
        assert tasks[0].spec.name == "battery-death"


class TestProfiledArchiveHygiene:
    def test_normal_resume_recomputes_profiled_cells(self, tmp_path):
        from repro.experiments.runner import run_grid
        from repro.scenarios.spec import PlacementSpec, ScenarioSpec

        spec = ScenarioSpec(
            name="profiled-cells",
            placement=PlacementSpec(node_count=12),
            epochs=2,
            steps_per_epoch=1,
        )
        profiled = run_grid([spec], seeds=2, results_dir=tmp_path, profile=True)
        assert profiled.computed == 2
        # A normal resume must not treat timing-polluted files as cache hits
        # (they carry wall-clock phase_seconds); it recomputes and cleans them.
        cleaned = run_grid([spec], seeds=2, results_dir=tmp_path)
        assert cleaned.computed == 2 and cleaned.cached == 0
        # Once cleaned, the archive is deterministic again and caches fully.
        resumed = run_grid([spec], seeds=2, results_dir=tmp_path)
        assert resumed.computed == 0 and resumed.cached == 2
