"""Tests for the extended sweeps (alpha, density, power schedule)."""

import math

import pytest

from repro.experiments.sweeps import (
    run_alpha_sweep,
    run_density_sweep,
    run_schedule_ablation,
)
from repro.net.placement import PlacementConfig

SMALL = PlacementConfig(node_count=25)


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        alphas = [math.pi / 2, 2 * math.pi / 3, 5 * math.pi / 6, math.pi]
        return run_alpha_sweep(alphas, network_count=3, config=SMALL, base_seed=1)

    def test_one_point_per_alpha(self, sweep):
        assert [point.alpha for point in sweep] == pytest.approx(
            [math.pi / 2, 2 * math.pi / 3, 5 * math.pi / 6, math.pi]
        )

    def test_degree_decreases_with_alpha(self, sweep):
        degrees = [point.average_degree for point in sweep]
        assert degrees == sorted(degrees, reverse=True)

    def test_connectivity_always_preserved_at_or_below_threshold(self, sweep):
        for point in sweep:
            if point.alpha <= 5 * math.pi / 6 + 1e-9:
                assert point.connectivity_preserved_fraction == 1.0

    def test_boundary_fraction_between_zero_and_one(self, sweep):
        for point in sweep:
            assert 0.0 <= point.boundary_node_fraction <= 1.0

    def test_default_alpha_grid(self):
        points = run_alpha_sweep(network_count=1, config=PlacementConfig(node_count=15), base_seed=0)
        assert len(points) >= 5


class TestDensitySweep:
    def test_degree_grows_with_density_under_max_power_but_not_under_cbtc(self):
        points = run_density_sweep(node_counts=(20, 60), networks_per_point=2, base_seed=2)
        assert points[1].max_power_degree > points[0].max_power_degree
        # CBTC keeps the controlled degree roughly flat: the increase must be
        # far smaller than the max-power increase.
        cbtc_growth = points[1].average_degree - points[0].average_degree
        max_power_growth = points[1].max_power_degree - points[0].max_power_degree
        assert cbtc_growth < max_power_growth / 2

    def test_radius_reduction_improves_with_density(self):
        points = run_density_sweep(node_counts=(20, 80), networks_per_point=2, base_seed=3)
        assert points[1].radius_reduction > points[0].radius_reduction
        assert points[1].average_radius < points[0].average_radius


class TestScheduleAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_schedule_ablation(network_count=2, config=SMALL, base_seed=4)

    def test_all_schedules_reported(self, ablation):
        names = [point.schedule_name for point in ablation]
        assert "exhaustive (idealized)" in names
        assert "doubling" in names

    def test_idealized_schedule_uses_least_power(self, ablation):
        by_name = {point.schedule_name: point for point in ablation}
        idealized = by_name["exhaustive (idealized)"]
        for name, point in by_name.items():
            if name != "exhaustive (idealized)":
                assert point.average_final_power >= idealized.average_final_power - 1e-6

    def test_doubling_uses_fewer_rounds_than_fine_linear(self, ablation):
        by_name = {point.schedule_name: point for point in ablation}
        assert by_name["doubling"].average_rounds < by_name["linear-64"].average_rounds
