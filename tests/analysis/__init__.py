"""Test package (explicit, so clashing basenames collect cleanly)."""
