"""Regression tests for the order-dependence bugs detlint surfaced.

Each test pins a fix from the determinism sweep by exercising the code
path under two different construction histories (insertion order, spatial
index on/off) and requiring *bitwise* equal results.  The first test
documents why this is not paranoia: float addition is not associative, so
an aggregate summed in container order is a different number depending on
how the container happened to be filled.
"""

import json

from repro.baselines import theta_graph, yao_graph
from repro.geometry import Point
from repro.graphs.metrics import average_radius, graph_metrics
from repro.io.graphs import graph_to_dict
from repro.net.energy import EnergyLedger
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel

import networkx as nx


def _network(points, max_range=10.0, use_spatial_index=True):
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points(
        points, power_model=power_model, use_spatial_index=use_spatial_index
    )


def test_float_addition_is_not_associative():
    # The premise behind every fix in this file: same values, different
    # order, different float.  If this ever starts passing as equal, the
    # sorted() guards are dead weight and can go.
    values = [0.1, 0.2, 0.3]
    assert sum(values) != sum(reversed(values))


class TestEnergyLedgerTotals:
    def test_total_consumed_independent_of_account_creation_order(self):
        charges = [(0, 0.1), (1, 0.2), (2, 0.3)]
        forward = EnergyLedger([], capacity=10.0)
        for node_id, power in charges:
            forward.charge_transmission(node_id, power)
        backward = EnergyLedger([], capacity=10.0)
        for node_id, power in reversed(charges):
            backward.charge_transmission(node_id, power)
        # Accounts were created in opposite orders, so the dict insertion
        # orders differ; the totals must still match bit for bit.
        assert forward.total_consumed() == backward.total_consumed()
        assert forward.total_transmissions() == backward.total_transmissions()


class TestMetricsOrderIndependence:
    # A star whose leaf distances are exactly 0.1, 0.2 and 0.3 — the
    # canonical non-associative triple — so any container-order float sum
    # inside the metrics shows up as a bitwise difference.
    POINTS = [Point(0.0, 0.0), Point(0.1, 0.0), Point(0.2, 0.0), Point(0.3, 0.0)]
    EDGES = [(0, 1), (0, 2), (0, 3)]

    def _graph(self, node_order, edge_order):
        graph = nx.Graph()
        for node_id in node_order:
            graph.add_node(node_id)
        for u, v in edge_order:
            graph.add_edge(u, v)
        return graph

    def test_metrics_equal_under_any_insertion_order(self):
        network = _network(self.POINTS, max_range=1.0)
        forward = self._graph([0, 1, 2, 3], self.EDGES)
        backward = self._graph([3, 2, 1, 0], list(reversed(self.EDGES)))
        assert average_radius(forward, network) == average_radius(backward, network)
        first = graph_metrics(forward, network)
        second = graph_metrics(backward, network)
        assert first.total_power == second.total_power
        assert first.average_radius == second.average_radius
        assert first.as_dict() == second.as_dict()


class TestConeBaselineTiebreaks:
    def test_yao_tie_goes_to_smaller_node_id(self):
        # Nodes 1 and 2 are both at distance exactly 5 from node 0 and,
        # with k=1, compete in the same cone.  The winner must be node 1
        # (the id tie-break), never "whichever candidate was enumerated
        # first" — which is what made spatial-index on/off diverge.
        points = [Point(0.0, 0.0), Point(3.0, 4.0), Point(4.0, 3.0)]
        graphs = [
            yao_graph(_network(points, use_spatial_index=flag), k=1)
            for flag in (True, False)
        ]
        for graph in graphs:
            assert graph.has_edge(0, 1)
            assert not graph.has_edge(0, 2)
        first, second = (
            json.dumps(graph_to_dict(graph), sort_keys=True) for graph in graphs
        )
        assert first == second

    def test_theta_tie_goes_to_smaller_node_id(self):
        # Nodes 1 and 2 sit symmetrically about the single cone's bisector
        # at equal distance, so their bisector projections tie exactly.
        points = [Point(0.0, 0.0), Point(-3.0, 4.0), Point(-3.0, -4.0)]
        graphs = [
            theta_graph(_network(points, use_spatial_index=flag), k=1)
            for flag in (True, False)
        ]
        for graph in graphs:
            assert graph.has_edge(0, 1)
        first, second = (
            json.dumps(graph_to_dict(graph), sort_keys=True) for graph in graphs
        )
        assert first == second
