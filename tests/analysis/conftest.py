"""Shared fixtures for the detlint tests.

``lint`` writes a snippet into a synthetic project tree under ``tmp_path``
(so path-scoped rules see realistic display paths like
``src/repro/sim/example.py``) and runs the engine over it.
"""

import textwrap

import pytest

from repro.analysis import LintConfig, run_lint


@pytest.fixture
def lint(tmp_path):
    def run(source, rel="src/repro/sim/example.py", config=None):
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint([file], config if config is not None else LintConfig(), root=tmp_path)

    return run


@pytest.fixture
def lint_rules(lint):
    def run(source, rel="src/repro/sim/example.py", config=None):
        return [finding.rule_id for finding in lint(source, rel=rel, config=config).findings]

    return run
