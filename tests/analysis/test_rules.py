"""One positive and one negative fixture per detlint rule.

Each positive snippet is the smallest code shape the rule exists to catch;
each negative snippet is the idiomatic fix (or an out-of-scope variant) and
must lint clean — the pair pins both the detection and the false-positive
boundary.
"""


class TestUnseededRandom:
    def test_positive_random_module_draw(self, lint_rules):
        assert lint_rules(
            """
            import random

            def jitter():
                return random.random()
            """
        ) == ["det-unseeded-random"]

    def test_positive_numpy_global_stream(self, lint_rules):
        assert lint_rules(
            """
            import numpy as np

            def scramble(xs):
                np.random.shuffle(xs)
            """
        ) == ["det-unseeded-random"]

    def test_negative_seeded_stream(self, lint_rules):
        assert lint_rules(
            """
            import random

            from repro.sim.randomness import derive_seed

            def jitter(seed):
                rng = random.Random(derive_seed(seed, "jitter"))
                return rng.random()
            """
        ) == []

    def test_negative_numpy_explicit_generator(self, lint_rules):
        assert lint_rules(
            """
            import numpy as np

            def draws(seed):
                return np.random.default_rng(seed)
            """
        ) == []

    def test_negative_local_variable_named_random(self, lint_rules):
        assert lint_rules(
            """
            def confusing(random):
                return random.random()
            """
        ) == []


class TestSetIteration:
    def test_positive_set_loop_into_edges(self, lint_rules):
        assert lint_rules(
            """
            def splice(graph, pairs):
                pending = set(pairs)
                for u, v in pending:
                    graph.add_edge(u, v)
            """
        ) == ["det-set-iteration"]

    def test_positive_list_of_set(self, lint_rules):
        assert lint_rules(
            """
            def order(pending):
                if isinstance(pending, set):
                    return list(pending)
                return pending
            """
        ) == ["det-set-iteration"]

    def test_negative_sorted_guard(self, lint_rules):
        assert lint_rules(
            """
            def splice(graph, pairs):
                pending = set(pairs)
                for u, v in sorted(pending):
                    graph.add_edge(u, v)
            """
        ) == []

    def test_negative_order_insensitive_sink(self, lint_rules):
        # Membership counting does not depend on iteration order.
        assert lint_rules(
            """
            def count(pending, needle):
                pending = set(pending)
                hits = 0
                for item in pending:
                    if item == needle:
                        hits = hits + 1
                return hits
            """
        ) == []


class TestFloatSumOrder:
    def test_positive_sum_over_dict_values(self, lint_rules):
        assert lint_rules(
            """
            def total(powers):
                return sum(powers.values())
            """
        ) == ["det-float-sum-order"]

    def test_positive_loop_accumulator(self, lint_rules):
        assert lint_rules(
            """
            def total(powers):
                acc = 0.0
                for value in powers.values():
                    acc += value
                return acc
            """
        ) == ["det-float-sum-order"]

    def test_negative_sum_over_sorted_items(self, lint_rules):
        assert lint_rules(
            """
            def total(powers):
                return sum(p for _, p in sorted(powers.items()))
            """
        ) == []

    def test_negative_loop_local_assignment(self, lint_rules):
        # ``share`` is rebound every iteration — per-item state, not an
        # accumulator carrying float error across iterations.
        assert lint_rules(
            """
            def shares(powers, total, out):
                for key, value in powers.items():
                    share = 0.0
                    share += value / total
                    out[key] = share
            """
        ) == []


class TestOrderTiebreak:
    def test_positive_id_ordering(self, lint_rules):
        assert lint_rules(
            """
            def key(obj):
                return id(obj)
            """
        ) == ["det-order-tiebreak"]

    def test_positive_first_seen_best_so_far(self, lint_rules):
        assert lint_rules(
            """
            def nearest(candidates):
                best = {}
                for cone, d, node in candidates:
                    if cone not in best or d < best[cone][0]:
                        best[cone] = (d, node)
                return best
            """
        ) == ["det-order-tiebreak"]

    def test_positive_min_with_key_over_set(self, lint_rules):
        assert lint_rules(
            """
            def pick(names):
                pool = set(names)
                return min(pool, key=len)
            """
        ) == ["det-order-tiebreak"]

    def test_negative_full_tuple_comparison(self, lint_rules):
        assert lint_rules(
            """
            def nearest(candidates):
                best = {}
                for cone, d, node in candidates:
                    if cone not in best or (d, node) < best[cone]:
                        best[cone] = (d, node)
                return best
            """
        ) == []


class TestWallClock:
    SOURCE = """
        import time

        def stamp():
            return time.time()
        """

    def test_positive_inside_sim_scope(self, lint_rules):
        # The stricter observability rule covers the whole tree, so a raw
        # clock read in a determinism scope is flagged by both packs.
        assert sorted(lint_rules(self.SOURCE, rel="src/repro/sim/example.py")) == [
            "det-wall-clock",
            "obs-raw-clock",
        ]

    def test_positive_from_import(self, lint_rules):
        assert sorted(
            lint_rules(
                """
                from time import perf_counter

                def stamp():
                    return perf_counter()
                """,
                rel="src/repro/scenarios/example.py",
            )
        ) == ["det-wall-clock", "obs-raw-clock"]

    def test_negative_outside_scope(self, lint_rules):
        # Outside the determinism scopes only the obs-layer rule fires.
        assert lint_rules(self.SOURCE, rel="src/repro/io/example.py") == ["obs-raw-clock"]
        assert lint_rules(self.SOURCE, rel="tools/example.py") == []

    def test_negative_simulated_clock(self, lint_rules):
        assert lint_rules(
            """
            def stamp(engine):
                return engine.now()
            """,
            rel="src/repro/sim/example.py",
        ) == []


class TestBlockingInAsync:
    def test_positive_sleep_in_async(self, lint_rules):
        assert lint_rules(
            """
            import time

            async def handler():
                time.sleep(1)
            """
        ) == ["con-blocking-async"]

    def test_positive_open_in_async(self, lint_rules):
        assert lint_rules(
            """
            async def handler(path):
                with open(path) as fh:
                    return fh.name
            """
        ) == ["con-blocking-async"]

    def test_negative_asyncio_sleep(self, lint_rules):
        assert lint_rules(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """
        ) == []

    def test_negative_sync_helper_is_fine(self, lint_rules):
        assert lint_rules(
            """
            import time

            def helper():
                time.sleep(1)
            """,
            rel="src/repro/io/example.py",
        ) == []


class TestModuleMutableState:
    def test_positive_module_level_dict_in_service(self, lint_rules):
        assert lint_rules(
            """
            cache = {}
            """,
            rel="src/repro/service/example.py",
        ) == ["con-module-mutable-state"]

    def test_negative_constant_and_function_local(self, lint_rules):
        assert lint_rules(
            """
            LIMITS = {"max": 10}

            def make_cache():
                cache = {}
                return cache
            """,
            rel="src/repro/service/example.py",
        ) == []

    def test_negative_outside_service_scope(self, lint_rules):
        assert lint_rules(
            """
            cache = {}
            """,
            rel="src/repro/io/example.py",
        ) == []


class TestNodeAttrWrite:
    def test_positive_direct_position_write(self, lint_rules):
        assert lint_rules(
            """
            def teleport(node, point):
                node.position = point
            """
        ) == ["con-node-attr-write"]

    def test_positive_direct_alive_write(self, lint_rules):
        assert lint_rules(
            """
            def kill(node):
                node.alive = False
            """
        ) == ["con-node-attr-write"]

    def test_negative_watcher_protocol(self, lint_rules):
        assert lint_rules(
            """
            def teleport(node, point):
                node.move_to(point)

            def kill(node):
                node.crash()
            """
        ) == []

    def test_negative_exempt_owner_module(self, lint_rules):
        assert lint_rules(
            """
            def assign(node, point):
                node.position = point
            """,
            rel="src/repro/net/node.py",
        ) == []


class TestRawClock:
    def test_positive_raw_clock_outside_determinism_scopes(self, lint_rules):
        # repro/experiments is outside det-wall-clock's scopes, so only the
        # observability rule fires: all timing must route through repro.obs.
        assert lint_rules(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            rel="src/repro/experiments/example.py",
        ) == ["obs-raw-clock"]

    def test_positive_doubles_with_det_rule_in_sim_scope(self, lint_rules):
        assert sorted(
            lint_rules(
                """
                import time

                def stamp():
                    return time.time()
                """,
                rel="src/repro/sim/example.py",
            )
        ) == ["det-wall-clock", "obs-raw-clock"]

    def test_negative_clock_module_is_exempt(self, lint_rules):
        assert lint_rules(
            """
            import time

            def wall():
                return time.perf_counter()
            """,
            rel="src/repro/obs/clock.py",
        ) == []

    def test_negative_obs_clock_wrapper_usage(self, lint_rules):
        assert lint_rules(
            """
            from repro.obs import clock

            def stamp():
                return clock.wall()
            """,
            rel="src/repro/experiments/example.py",
        ) == []
