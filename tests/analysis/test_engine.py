"""Engine-level tests: suppressions, config, baselines, error handling."""

import json

import pytest

from repro.analysis import Baseline, LintConfig, LintError, rule_ids, run_lint
from repro.analysis.baseline import fingerprint
from repro.analysis.config import ConfigError, _minimal_toml_loads
from repro.analysis.engine import Finding

SET_LOOP = """
def splice(graph, pairs):
    pending = set(pairs)
    for u, v in pending:{comment}
        graph.add_edge(u, v)
"""


class TestSuppressions:
    def test_inline_suppression_moves_finding_to_suppressed(self, lint):
        report = lint(
            SET_LOOP.format(comment="  # detlint: ignore[det-set-iteration] -- fixture")
        )
        assert [f.rule_id for f in report.findings] == []
        assert [f.rule_id for f in report.suppressed] == ["det-set-iteration"]

    def test_standalone_comment_covers_next_code_line(self, lint):
        report = lint(
            """
            def splice(graph, pairs):
                pending = set(pairs)
                # detlint: ignore[det-set-iteration] -- fixture
                for u, v in pending:
                    graph.add_edge(u, v)
            """
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["det-set-iteration"]

    def test_suppression_is_rule_specific(self, lint):
        report = lint(SET_LOOP.format(comment="  # detlint: ignore[det-wall-clock]"))
        assert [f.rule_id for f in report.findings] == ["det-set-iteration"]

    def test_malformed_suppression_fails_loudly(self, lint):
        with pytest.raises(LintError, match="malformed detlint suppression"):
            lint(SET_LOOP.format(comment="  # detlint: ignore(det-set-iteration)"))

    def test_unknown_rule_id_fails_loudly(self, lint):
        with pytest.raises(LintError, match="unknown rule id"):
            lint(SET_LOOP.format(comment="  # detlint: ignore[no-such-rule]"))


class TestEngineErrors:
    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(LintError, match="path does not exist"):
            run_lint([tmp_path / "missing.py"], LintConfig(), root=tmp_path)

    def test_syntax_error_is_a_lint_error(self, lint):
        with pytest.raises(LintError, match="cannot parse"):
            lint("def broken(:\n    pass\n")

    def test_findings_sorted_canonically(self, lint):
        report = lint(
            """
            import time

            def stamp():
                return time.time()

            def total(powers):
                return sum(powers.values())
            """
        )
        assert {f.rule_id for f in report.findings} == {
            "det-wall-clock",
            "det-float-sum-order",
            "obs-raw-clock",
        }
        assert report.findings == sorted(report.findings)


class TestConfig:
    def test_select_and_ignore(self, lint):
        config = LintConfig(select=("det-set-iteration", "det-wall-clock"), ignore=("det-wall-clock",))
        report = lint(
            """
            import time

            def splice(graph, pairs):
                pending = set(pairs)
                for u, v in pending:
                    graph.add_edge(u, v)
                return time.time()
            """,
            config=config,
        )
        assert [f.rule_id for f in report.findings] == ["det-set-iteration"]

    def test_scope_override_disables_rule_elsewhere(self, lint):
        config = LintConfig(scopes={"det-set-iteration": ["src/elsewhere"]})
        report = lint(SET_LOOP.format(comment=""), config=config)
        assert report.findings == []

    def test_validate_rejects_unknown_rule(self):
        with pytest.raises(LintError, match="unknown rule id"):
            LintConfig(select=("not-a-rule",)).validate(rule_ids())

    def test_load_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "\n".join(
                [
                    "[tool.detlint]",
                    'ignore = ["det-wall-clock"]',
                    'baseline = "custom-baseline.json"',
                    "",
                    "[tool.detlint.scopes]",
                    'det-set-iteration = ["src/repro"]',
                ]
            ),
            encoding="utf-8",
        )
        config = LintConfig.load(tmp_path)
        assert config.ignore == ("det-wall-clock",)
        assert config.baseline == "custom-baseline.json"
        assert config.scopes == {"det-set-iteration": ["src/repro"]}

    def test_minimal_toml_parser_matches_expectations(self):
        data = _minimal_toml_loads(
            "\n".join(
                [
                    "[tool.detlint]",
                    "select = [",
                    '    "det-set-iteration",',
                    '    "det-wall-clock",',
                    "]  # trailing comment",
                    "strict = true",
                    "limit = 3",
                ]
            )
        )
        assert data == {
            "tool": {
                "detlint": {
                    "select": ["det-set-iteration", "det-wall-clock"],
                    "strict": True,
                    "limit": 3,
                }
            }
        }

    def test_minimal_toml_parser_rejects_garbage(self):
        with pytest.raises(ConfigError):
            _minimal_toml_loads("just some words\n")


def _finding(rule="det-wall-clock", path="src/repro/sim/a.py", line=3, snippet="time.time()"):
    return Finding(path=path, line=line, col=0, rule_id=rule, message="m", snippet=snippet)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(), _finding(line=9)])
        target = tmp_path / "baseline.json"
        baseline.dump(target)
        reloaded = Baseline.load(target)
        assert reloaded.counts == baseline.counts
        assert reloaded.counts[fingerprint(_finding())] == 3

    def test_dump_is_canonical_json(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).dump(target)
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["findings"] == [
            {
                "count": 1,
                "path": "src/repro/sim/a.py",
                "rule": "det-wall-clock",
                "snippet": "time.time()",
            }
        ]

    def test_diff_partitions_new_baselined_stale(self):
        baseline = Baseline.from_findings([_finding(), _finding(snippet="other")])
        diff = baseline.diff([_finding(), _finding(line=9), _finding(line=12)])
        # Two of the three current findings share the baselined fingerprint
        # (count 1), so one is absorbed and two are new; the "other" entry
        # no longer occurs and is reported stale.
        assert len(diff.baselined) == 1
        assert len(diff.new) == 2
        assert diff.stale == {fingerprint(_finding(snippet="other")): 1}

    def test_load_missing_and_invalid(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            Baseline.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError, match="not valid JSON"):
            Baseline.load(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(LintError, match="unsupported baseline format"):
            Baseline.load(wrong)
