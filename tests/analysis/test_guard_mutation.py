"""The acceptance demonstration: delete a guarding ``sorted()`` and both
detlint *and* a byte-identity test must fail.

The guarded path under mutation is ``repro/io/results.py``'s set
serialization (``items = sorted(value)``).  The test textually mutates it
to ``items = list(value)``, then shows (a) detlint flags the mutated line,
and (b) two *equal* sets with different insertion histories now serialize
to different bytes, while the pristine module keeps them byte-identical.
"""

import itertools
import types
from pathlib import Path

from repro.analysis import LintConfig, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS_PATH = REPO_ROOT / "src" / "repro" / "io" / "results.py"
GUARD = "items = sorted(value)"
MUTATED = "items = list(value)"


def _equal_sets_with_different_iteration_orders():
    """Two equal int sets whose CPython iteration order differs.

    Small ints hash to themselves, so values congruent modulo the hash
    table size collide and their probe placement depends on insertion
    order.  The search over permutations keeps the test robust to hash
    table implementation details.
    """
    values = [8, 16, 24, 32]
    reference = set(values)
    for permutation in itertools.permutations(values):
        candidate = set()
        for value in permutation:
            candidate.add(value)
        if candidate == reference and list(candidate) != list(reference):
            return reference, candidate
    raise AssertionError("could not construct divergent set iteration orders")


def _load_module(source, name):
    module = types.ModuleType(name)
    exec(compile(source, f"<{name}>", "exec"), module.__dict__)
    return module


def _mutated_source():
    source = RESULTS_PATH.read_text(encoding="utf-8")
    assert GUARD in source, "the guarded serialization path moved; update this test"
    return source.replace(GUARD, MUTATED)


class TestGuardMutation:
    def test_detlint_flags_the_mutation(self, tmp_path):
        target = tmp_path / "src" / "repro" / "io" / "results.py"
        target.parent.mkdir(parents=True)
        target.write_text(_mutated_source(), encoding="utf-8")
        report = run_lint([target], LintConfig(), root=tmp_path)
        flagged = [f for f in report.findings if f.rule_id == "det-set-iteration"]
        assert any(MUTATED in f.snippet for f in flagged), [
            f.location() for f in report.findings
        ]

    def test_pristine_module_lints_clean(self, tmp_path):
        target = tmp_path / "src" / "repro" / "io" / "results.py"
        target.parent.mkdir(parents=True)
        target.write_text(RESULTS_PATH.read_text(encoding="utf-8"), encoding="utf-8")
        report = run_lint([target], LintConfig(), root=tmp_path)
        assert report.findings == []

    def test_mutation_breaks_byte_identity(self):
        first, second = _equal_sets_with_different_iteration_orders()
        assert first == second

        import repro.io.results as pristine

        assert pristine.results_to_json({"xs": first}) == pristine.results_to_json(
            {"xs": second}
        )

        mutated = _load_module(_mutated_source(), "results_mutated")
        assert mutated.results_to_json({"xs": first}) != mutated.results_to_json(
            {"xs": second}
        )
