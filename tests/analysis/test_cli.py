"""``cbtc lint`` CLI semantics: exit codes, JSON output, friendly errors.

Also the repository's own contract: linting ``src/repro`` must match the
committed ``detlint-baseline.json`` exactly — zero new findings *and* zero
stale entries, so the baseline can never silently rot.
"""

import io
import json
import textwrap
from pathlib import Path

from repro.analysis import Baseline, LintConfig, run_lint
from repro.analysis.cli import lint_command
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = """
def total(powers):
    return sum(p for _, p in sorted(powers.items()))
"""

DIRTY = """
def total(powers):
    return sum(powers.values())
"""


def _write(tmp_path, source, name="example.py"):
    # An (empty) pyproject.toml anchors find_project_root, so display paths
    # and rule scopes behave as they do in a real checkout.
    (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
    file = tmp_path / "src" / "repro" / "sim" / name
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source), encoding="utf-8")
    return file


def _run(*argv):
    paths = [arg for arg in argv if not arg.startswith("--")]
    flags = {arg for arg in argv if arg.startswith("--")}
    stdout, stderr = io.StringIO(), io.StringIO()
    code = lint_command(
        paths,
        json_output="--json" in flags,
        no_baseline="--no-baseline" in flags,
        stdout=stdout,
        stderr=stderr,
    )
    return code, stdout.getvalue(), stderr.getvalue()


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        file = _write(tmp_path, CLEAN)
        assert main(["lint", str(file), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        file = _write(tmp_path, DIRTY)
        assert main(["lint", str(file), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "det-float-sum-order" in out

    def test_nonexistent_path_is_friendly(self, capsys):
        assert main(["lint", "does/not/exist"]) == 1
        captured = capsys.readouterr()
        assert captured.err.strip() == "cbtc lint: path does not exist: does/not/exist"
        assert "Traceback" not in captured.err

    def test_malformed_suppression_is_friendly(self, tmp_path, capsys):
        file = _write(
            tmp_path,
            """
            def total(powers):
                return sum(powers.values())  # detlint: ignore(det-float-sum-order)
            """,
        )
        assert main(["lint", str(file)]) == 1
        captured = capsys.readouterr()
        assert "malformed detlint suppression" in captured.err
        assert "Traceback" not in captured.err

    def test_rules_filter(self, tmp_path, capsys):
        file = _write(
            tmp_path,
            """
            import time

            def stamp(powers):
                sum(powers.values())
                return time.time()
            """,
        )
        assert main(["lint", str(file), "--no-baseline", "--rules", "det-wall-clock"]) == 1
        out = capsys.readouterr().out
        assert "det-wall-clock" in out
        assert "det-float-sum-order" not in out


class TestJsonOutput:
    def test_json_is_parseable_and_canonical(self, tmp_path):
        file = _write(tmp_path, DIRTY)
        code, out, _ = _run(str(file), "--no-baseline", "--json")
        assert code == 1
        payload = json.loads(out)
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert finding["rule_id"] == "det-float-sum-order"
        assert finding["path"].endswith("src/repro/sim/example.py")
        # Canonical: a second run emits byte-identical JSON.
        _, again, _ = _run(str(file), "--no-baseline", "--json")
        assert again == out


def _run_kw(paths, **kwargs):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = lint_command(paths, stdout=stdout, stderr=stderr, **kwargs)
    return code, stdout.getvalue(), stderr.getvalue()


class TestBaselineWorkflow:
    def test_update_then_clean_then_regression(self, tmp_path):
        file = _write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"

        code, out, _ = _run_kw([str(file)], update_baseline=True, baseline_path=str(baseline))
        assert code == 0
        assert "1 finding(s) recorded" in out

        # Baselined finding: exit 0, reported as baselined.
        code, out, _ = _run_kw([str(file)], baseline_path=str(baseline))
        assert code == 0
        assert "0 new finding(s)" in out and "1 baselined" in out

        # A second violation is new: exit 1.
        file.write_text(
            textwrap.dedent(DIRTY)
            + textwrap.dedent(
                """
                def also(powers):
                    return sum(powers.values()) / 2
                """
            ),
            encoding="utf-8",
        )
        code, out, _ = _run_kw([str(file)], baseline_path=str(baseline))
        assert code == 1
        assert "1 new finding(s)" in out

    def test_missing_baseline_file_is_friendly(self, tmp_path):
        file = _write(tmp_path, CLEAN)
        code, _, err = _run_kw([str(file)], baseline_path=str(tmp_path / "nope.json"))
        assert code == 1
        assert "baseline file does not exist" in err


class TestRepositoryContract:
    def test_src_repro_matches_committed_baseline_exactly(self):
        report = run_lint(
            [REPO_ROOT / "src" / "repro"], LintConfig.load(REPO_ROOT), root=REPO_ROOT
        )
        baseline = Baseline.load(REPO_ROOT / "detlint-baseline.json")
        diff = baseline.diff(report.findings)
        assert diff.new == [], [f.location() for f in diff.new]
        assert diff.stale == {}, diff.stale

    def test_cli_on_src_repro_exits_zero(self):
        code, out, err = _run_kw([str(REPO_ROOT / "src" / "repro")])
        assert code == 0, err or out
