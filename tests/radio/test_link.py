"""Tests for repro.radio.link (receiver-side link estimation)."""

import pytest

from repro.radio.link import LinkEstimator
from repro.radio.propagation import PathLossModel, ReceptionReport


@pytest.fixture
def estimator() -> LinkEstimator:
    return LinkEstimator(propagation=PathLossModel(exponent=2.0))


def _report(model: PathLossModel, tx_power: float, distance: float) -> ReceptionReport:
    return ReceptionReport(
        transmit_power=tx_power,
        reception_power=model.reception_power(tx_power, distance),
    )


class TestLinkEstimator:
    def test_required_power_matches_model(self, estimator):
        model = estimator.propagation
        report = _report(model, tx_power=1000.0, distance=17.0)
        assert estimator.required_power(report) == pytest.approx(model.required_power(17.0))

    def test_distance_estimate(self, estimator):
        report = _report(estimator.propagation, tx_power=500.0, distance=9.0)
        assert estimator.distance(report) == pytest.approx(9.0)

    def test_closer_of_orders_by_distance(self, estimator):
        # The pairwise edge removal optimization needs relative distance
        # comparisons from power measurements only.
        model = estimator.propagation
        near = _report(model, tx_power=300.0, distance=5.0)
        far = _report(model, tx_power=900.0, distance=6.0)
        assert estimator.closer_of(near, far) == 0
        assert estimator.closer_of(far, near) == 1

    def test_closer_of_tie_prefers_first(self, estimator):
        model = estimator.propagation
        a = _report(model, tx_power=100.0, distance=4.0)
        b = _report(model, tx_power=700.0, distance=4.0)
        assert estimator.closer_of(a, b) == 0
