"""Tests for repro.radio.propagation."""

import pytest

from repro.radio.propagation import FreeSpaceModel, PathLossModel, ReceptionReport


class TestPathLossModel:
    def test_required_power_grows_with_distance(self):
        model = PathLossModel(exponent=2.0)
        assert model.required_power(1.0) == pytest.approx(1.0)
        assert model.required_power(2.0) == pytest.approx(4.0)
        assert model.required_power(3.0) == pytest.approx(9.0)

    def test_required_power_zero_distance(self):
        assert PathLossModel().required_power(0.0) == 0.0

    def test_required_power_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel().required_power(-1.0)

    def test_range_inverts_required_power(self):
        model = PathLossModel(exponent=4.0, reference_power=2.5)
        for distance in (0.1, 1.0, 7.3, 250.0):
            assert model.range_for_power(model.required_power(distance)) == pytest.approx(distance)

    def test_exponent_below_one_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(exponent=0.5)

    def test_invalid_reference_power_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(reference_power=0.0)

    def test_reaches_at_exact_power(self):
        model = PathLossModel(exponent=2.0)
        assert model.reaches(model.required_power(10.0), 10.0)
        assert not model.reaches(model.required_power(10.0) * 0.99, 10.0)

    def test_reception_power_decreases_with_distance(self):
        model = PathLossModel(exponent=2.0)
        tx = 100.0
        assert model.reception_power(tx, 1.0) > model.reception_power(tx, 2.0) > model.reception_power(tx, 5.0)

    def test_reception_power_at_required_power_equals_sensitivity(self):
        model = PathLossModel(exponent=3.0, receiver_sensitivity=0.25)
        distance = 12.0
        assert model.reception_power(model.required_power(distance), distance) == pytest.approx(0.25)


class TestReceptionEstimates:
    def test_estimate_required_power_roundtrip(self):
        # A receiver that knows the transmit power and measures the reception
        # power recovers exactly the power needed to reach the sender.
        model = PathLossModel(exponent=2.0)
        distance = 37.0
        tx_power = 4.0 * model.required_power(distance)
        report = ReceptionReport(
            transmit_power=tx_power,
            reception_power=model.reception_power(tx_power, distance),
        )
        assert model.estimate_required_power(report) == pytest.approx(model.required_power(distance))

    def test_estimate_distance_roundtrip(self):
        model = PathLossModel(exponent=2.5)
        distance = 81.0
        tx_power = model.required_power(200.0)
        report = ReceptionReport(
            transmit_power=tx_power,
            reception_power=model.reception_power(tx_power, distance),
        )
        assert model.estimate_distance(report) == pytest.approx(distance)

    def test_attenuation_requires_positive_reception(self):
        with pytest.raises(ValueError):
            ReceptionReport(transmit_power=1.0, reception_power=0.0).attenuation


class TestFreeSpaceModel:
    def test_exponent_is_two(self):
        assert FreeSpaceModel().exponent == 2.0

    def test_custom_reference_power(self):
        model = FreeSpaceModel(reference_power=3.0)
        assert model.required_power(2.0) == pytest.approx(12.0)
