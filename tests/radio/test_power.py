"""Tests for repro.radio.power (power model and Increase schedules)."""

import pytest

from repro.radio.power import (
    ExhaustiveSchedule,
    GeometricSchedule,
    LinearSchedule,
    PowerModel,
    default_power_model,
    power_levels_for_distances,
)
from repro.radio.propagation import PathLossModel


class TestPowerModel:
    def test_max_power_matches_max_range(self):
        model = PowerModel(propagation=PathLossModel(exponent=2.0), max_range=500.0)
        assert model.max_power == pytest.approx(500.0**2)

    def test_can_reach(self):
        model = default_power_model(max_range=500.0)
        assert model.can_reach(499.9)
        assert model.can_reach(500.0)
        assert not model.can_reach(500.1)

    def test_reaches_with(self):
        model = default_power_model(max_range=10.0)
        assert model.reaches_with(model.required_power(5.0), 5.0)
        assert not model.reaches_with(model.required_power(5.0), 6.0)
        assert not model.reaches_with(model.max_power, 11.0)

    def test_range_for_power_clamped(self):
        model = default_power_model(max_range=10.0)
        assert model.range_for_power(model.max_power * 4) == pytest.approx(10.0)

    def test_clamp(self):
        model = default_power_model(max_range=10.0)
        assert model.clamp(-5.0) == 0.0
        assert model.clamp(model.max_power * 2) == pytest.approx(model.max_power)
        assert model.clamp(3.0) == 3.0

    def test_invalid_max_range_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(propagation=PathLossModel(), max_range=0.0)


class TestSchedules:
    def test_geometric_schedule_ends_at_max_power(self):
        model = default_power_model(max_range=500.0)
        levels = GeometricSchedule()(model)
        assert levels[-1] == pytest.approx(model.max_power)
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_geometric_schedule_doubles(self):
        model = default_power_model(max_range=16.0)
        levels = GeometricSchedule(initial_fraction=1 / 8, factor=2.0)(model)
        assert levels[0] == pytest.approx(model.max_power / 8)
        assert levels[1] == pytest.approx(model.max_power / 4)

    def test_geometric_schedule_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeometricSchedule(initial_fraction=0.0)
        with pytest.raises(ValueError):
            GeometricSchedule(factor=1.0)

    def test_linear_schedule_even_spacing(self):
        model = default_power_model(max_range=10.0)
        levels = LinearSchedule(steps=4)(model)
        assert len(levels) == 4
        assert levels[-1] == pytest.approx(model.max_power)
        assert levels[0] == pytest.approx(model.max_power / 4)

    def test_linear_schedule_needs_at_least_one_step(self):
        with pytest.raises(ValueError):
            LinearSchedule(steps=0)

    def test_exhaustive_schedule_filters_and_sorts(self):
        model = default_power_model(max_range=10.0)
        schedule = ExhaustiveSchedule(raw_levels=(50.0, 5.0, 5.0, 1e9, -3.0))
        levels = schedule(model)
        assert levels[-1] == pytest.approx(model.max_power)
        assert levels[:-1] == [5.0, 50.0]

    def test_exhaustive_schedule_from_distances(self):
        model = default_power_model(max_range=10.0)
        schedule = power_levels_for_distances(model, [2.0, 4.0, 25.0])
        levels = schedule(model)
        # The 25.0-distance candidate is unreachable and must be dropped.
        assert levels == pytest.approx([4.0, 16.0, model.max_power])

    def test_schedule_validation_rejects_non_monotone(self):
        model = default_power_model(max_range=10.0)

        class BrokenSchedule(GeometricSchedule):
            def levels(self, power_model):
                return [5.0, 4.0, power_model.max_power]

        with pytest.raises(ValueError):
            BrokenSchedule()(model)

    def test_schedule_validation_rejects_wrong_endpoint(self):
        model = default_power_model(max_range=10.0)

        class TruncatedSchedule(GeometricSchedule):
            def levels(self, power_model):
                return [1.0, 2.0]

        with pytest.raises(ValueError):
            TruncatedSchedule()(model)
