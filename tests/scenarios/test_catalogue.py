"""Tests for the named scenario catalogue."""

import dataclasses

import pytest

from repro.scenarios import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)

REQUIRED_SCENARIOS = {
    "random-waypoint-drift",
    "partition-and-heal",
    "flash-crowd-join",
    "battery-death",
    "convoy-corridor",
    "lossy-channel-chaos",
}


class TestCatalogueContents:
    def test_catalogue_covers_the_required_workloads(self):
        assert REQUIRED_SCENARIOS <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_every_scenario_is_described_and_named_consistently(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.description

    def test_unknown_scenario_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("no-such-scenario")

    def test_register_rejects_duplicates(self):
        spec = get_scenario("battery-death")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_register_and_replace(self):
        spec = dataclasses.replace(get_scenario("battery-death"), name="catalogue-test-entry")
        try:
            register_scenario(spec)
            assert get_scenario("catalogue-test-entry") is spec
            register_scenario(spec, replace=True)
        finally:
            SCENARIOS.pop("catalogue-test-entry", None)


class TestCatalogueRuns:
    @pytest.mark.parametrize("name", sorted(REQUIRED_SCENARIOS))
    def test_every_scenario_runs_scaled_down(self, name):
        spec = get_scenario(name)
        spec = spec.scaled(node_count=min(spec.placement.node_count, 25), epochs=2)
        result = run_scenario(spec, seed=0)
        assert len(result.epochs) == 2
        assert result.summary is not None

    def test_flash_crowd_join_actually_joins(self):
        result = run_scenario(get_scenario("flash-crowd-join"), seed=0)
        assert sum(epoch.joined_nodes for epoch in result.epochs) == 60
        assert result.epochs[-1].alive_nodes > result.initial_nodes

    def test_battery_death_thins_the_field(self):
        result = run_scenario(get_scenario("battery-death"), seed=0)
        assert sum(epoch.battery_deaths for epoch in result.epochs) > 0
        assert result.epochs[-1].alive_nodes < result.initial_nodes

    def test_lossy_chaos_uses_the_distributed_protocol(self):
        spec = get_scenario("lossy-channel-chaos").scaled(node_count=20, epochs=2)
        result = run_scenario(spec, seed=0)
        assert result.protocol == "distributed"
        assert result.summary.total_messages > 0
