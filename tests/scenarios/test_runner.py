"""Tests for the scenario runner's mechanics and determinism."""

import math

import networkx as nx

from repro.io.results import results_to_json
from repro.scenarios.runner import ScenarioRunner, run_scenario
from repro.scenarios.spec import (
    ChannelSpec,
    ChurnEvent,
    EnergySpec,
    FailureSpec,
    MobilitySpec,
    PlacementSpec,
    ScenarioSpec,
)

ALPHA = 5.0 * math.pi / 6.0


def small(name: str, **overrides) -> ScenarioSpec:
    defaults = dict(
        name=name,
        placement=PlacementSpec(node_count=20),
        epochs=3,
        steps_per_epoch=2,
        alpha=ALPHA,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestRunnerBasics:
    def test_records_one_metrics_row_per_epoch(self):
        result = run_scenario(small("rows", epochs=4), seed=0)
        assert [epoch.epoch for epoch in result.epochs] == [1, 2, 3, 4]
        assert result.scenario == "rows"
        assert result.initial_nodes == 20
        assert result.summary is not None
        assert result.summary.epochs == 4

    def test_reconfiguration_preserves_connectivity_every_epoch(self):
        spec = small(
            "preserve",
            mobility=MobilitySpec(kind="random-waypoint"),
            epochs=4,
        )
        result = run_scenario(spec, seed=2)
        assert all(epoch.connectivity_preserved for epoch in result.epochs)

    def test_identical_seed_replays_identically(self):
        spec = small(
            "replay",
            mobility=MobilitySpec(kind="random-walk", max_step=30.0),
            failures=FailureSpec(kind="crash", crash_probability=0.05),
        )
        first = results_to_json(run_scenario(spec, seed=5))
        second = results_to_json(run_scenario(spec, seed=5))
        assert first == second

    def test_different_seeds_diverge(self):
        spec = small("diverge", mobility=MobilitySpec(kind="random-walk", max_step=30.0))
        a = results_to_json(run_scenario(spec, seed=1))
        b = results_to_json(run_scenario(spec, seed=2))
        assert a != b


class TestChurn:
    def test_flash_crowd_grows_the_network(self):
        spec = small(
            "crowd",
            churn=(ChurnEvent(epoch=2, joins=15, spread=100.0),),
            epochs=3,
        )
        result = run_scenario(spec, seed=0)
        assert result.epochs[0].alive_nodes == 20
        assert result.epochs[1].joined_nodes == 15
        assert result.epochs[1].alive_nodes == 35
        # Newcomers are integrated, not just counted: connectivity still holds.
        assert result.epochs[1].connectivity_preserved

    def test_scripted_crashes_shrink_the_network(self):
        spec = small("cull", churn=(ChurnEvent(epoch=2, crashes=5),))
        result = run_scenario(spec, seed=0)
        assert result.epochs[1].alive_nodes == 15
        assert result.epochs[1].crashed_nodes == 5

    def test_recoveries_are_not_counted_as_crashes(self):
        # Churn kills 5 nodes in epoch 1; with crash_probability 0 and
        # recovery_probability 1 they all come back in epoch 2.  The failure
        # model reports them as liveness changes, but they are rejoins.
        spec = small(
            "lazarus",
            churn=(ChurnEvent(epoch=1, crashes=5),),
            failures=FailureSpec(
                kind="crash", crash_probability=0.0, recovery_probability=1.0
            ),
        )
        result = run_scenario(spec, seed=0)
        assert result.epochs[0].crashed_nodes == 5
        assert result.epochs[1].crashed_nodes == 0
        assert result.epochs[1].alive_nodes == 20


class TestBatteryDrain:
    def test_finite_batteries_kill_nodes(self):
        spec = small(
            "drain",
            placement=PlacementSpec(kind="grid", node_count=16),
            energy=EnergySpec(capacity=2.0e5),
            epochs=5,
            steps_per_epoch=5,
        )
        result = run_scenario(spec, seed=0)
        assert sum(epoch.battery_deaths for epoch in result.epochs) > 0
        assert result.epochs[-1].alive_nodes < 16
        # Energy is monotone non-decreasing across epochs.
        consumed = [epoch.energy_consumed for epoch in result.epochs]
        assert consumed == sorted(consumed)

    def test_infinite_batteries_never_kill(self):
        result = run_scenario(small("immortal", epochs=3), seed=0)
        assert all(epoch.battery_deaths == 0 for epoch in result.epochs)
        assert result.epochs[-1].alive_nodes == 20

    def test_joined_nodes_inherit_finite_batteries(self):
        spec = small(
            "mortal-joiners",
            placement=PlacementSpec(kind="grid", node_count=16),
            churn=(ChurnEvent(epoch=1, joins=4),),
            energy=EnergySpec(capacity=2.0e5),
            epochs=2,
        )
        runner = ScenarioRunner(spec, seed=0)
        runner.run()
        joined_ids = [node_id for node_id in runner.network.node_ids if node_id >= 16]
        assert joined_ids
        # Newcomers' on-demand accounts carry the scenario's capacity, not
        # the infinite default — they are as mortal as the founders.
        assert all(
            runner.ledger.account(node_id).capacity == 2.0e5 for node_id in joined_ids
        )


class TestPartitionDynamics:
    def test_partition_severs_and_heals_gr(self):
        spec = ScenarioSpec(
            name="split",
            placement=PlacementSpec(node_count=40),
            mobility=MobilitySpec(kind="partition", speed=80.0, period=20),
            epochs=4,
            steps_per_epoch=5,
            alpha=ALPHA,
        )
        runner = ScenarioRunner(spec, seed=1)
        initial_components = nx.number_connected_components(runner.network.max_power_graph())
        result = runner.run()
        # Mid-run the deployment splits into more components than it started
        # with; by the final epoch the halves have walked home and healed.
        peak = max(epoch.components for epoch in result.epochs)
        assert peak > initial_components
        assert result.epochs[-1].components == initial_components
        # The controlled topology tracks G_R's connectivity throughout.
        assert all(epoch.connectivity_preserved for epoch in result.epochs)


class TestDistributedProtocol:
    def test_distributed_mode_records_messages(self):
        spec = ScenarioSpec(
            name="dist",
            placement=PlacementSpec(node_count=12),
            channel=ChannelSpec(kind="lossy", loss_probability=0.1),
            protocol="distributed",
            epochs=2,
            steps_per_epoch=1,
            alpha=ALPHA,
        )
        result = run_scenario(spec, seed=3)
        assert result.protocol == "distributed"
        assert all(epoch.messages_sent > 0 for epoch in result.epochs)
        assert all(epoch.events_applied == 0 for epoch in result.epochs)
        # The engine's transmission energy lands in the scenario ledger.
        assert result.epochs[-1].energy_consumed > 0.0

    def test_distributed_mode_is_deterministic(self):
        spec = ScenarioSpec(
            name="dist-replay",
            placement=PlacementSpec(node_count=10),
            channel=ChannelSpec(kind="duplicating", duplicate_probability=0.3),
            protocol="distributed",
            epochs=2,
            steps_per_epoch=1,
            alpha=ALPHA,
        )
        assert results_to_json(run_scenario(spec, seed=4)) == results_to_json(
            run_scenario(spec, seed=4)
        )
