"""Incremental-vs-full-rebuild equivalence at the scenario level.

The acceptance contract of the incremental pipeline: for every scenario, the
incremental epoch loop (shared-geometry synchronization, dirty-set topology
splicing, route caching) produces results **byte-identical** — through
``repro.io.results`` serialization, traffic reports included — to the
historic full-rebuild loop.  Enforced here over the entire scenario
catalogue and over hypothesis-generated random churn/mobility schedules.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.results import results_to_json
from repro.scenarios.catalogue import SCENARIOS
from repro.scenarios.runner import ScenarioRunner, run_scenario
from repro.scenarios.spec import (
    ChurnEvent,
    FailureSpec,
    MobilitySpec,
    PlacementSpec,
    ScenarioSpec,
)
from repro.traffic.spec import TrafficSpec

ALPHA = 5 * math.pi / 6


def _serialized_runs(spec, seed):
    incremental = results_to_json(run_scenario(spec, seed, incremental=True))
    full = results_to_json(run_scenario(spec, seed, incremental=False))
    return incremental, full


class TestCatalogueEquivalence:
    """Every catalogue scenario: incremental == full rebuild, per epoch."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_incremental_matches_full_rebuild(self, name):
        spec = SCENARIOS[name].scaled(epochs=min(SCENARIOS[name].epochs, 3))
        incremental, full = _serialized_runs(spec, seed=1)
        assert incremental == full

    def test_traffic_reports_identical_per_epoch(self):
        spec = SCENARIOS["hotspot-traffic"].scaled(epochs=3)
        a = run_scenario(spec, 2, incremental=True)
        b = run_scenario(spec, 2, incremental=False)
        for epoch_a, epoch_b in zip(a.epochs, b.epochs):
            assert results_to_json(epoch_a.traffic) == results_to_json(epoch_b.traffic)


class TestVerifyMode:
    def test_verify_incremental_checks_each_epoch(self):
        spec = SCENARIOS["random-waypoint-drift"].scaled(node_count=40, epochs=3)
        result = ScenarioRunner(spec, 0, verify_incremental=True).run()
        assert len(result.epochs) == 3


churn_events = st.lists(
    st.builds(
        ChurnEvent,
        epoch=st.integers(min_value=1, max_value=3),
        joins=st.integers(min_value=0, max_value=4),
        crashes=st.integers(min_value=0, max_value=2),
        spread=st.floats(min_value=50.0, max_value=300.0),
    ),
    max_size=3,
)

mobility_specs = st.one_of(
    st.builds(
        MobilitySpec,
        kind=st.just("random-waypoint"),
        min_speed=st.floats(min_value=0.0, max_value=10.0),
        max_speed=st.floats(min_value=10.0, max_value=60.0),
        mover_fraction=st.sampled_from([0.1, 0.5, 1.0]),
    ),
    st.builds(
        MobilitySpec,
        kind=st.just("random-walk"),
        max_step=st.floats(min_value=0.0, max_value=60.0),
    ),
    st.builds(MobilitySpec, kind=st.just("stationary")),
)


class TestRandomScheduleEquivalence:
    """Hypothesis battery: random join/leave/move/angle-change schedules.

    Joins come from churn events, leaves from churn crashes and the random
    failure model, moves and angle changes from the mobility models.  Every
    generated schedule must replay byte-identically through both pipeline
    paths — serialized ``ScenarioResult`` (epoch metrics, ``TrafficReport``
    JSON included) compared as strings.
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        mobility=mobility_specs,
        churn=churn_events,
        crash_probability=st.sampled_from([0.0, 0.05]),
        with_traffic=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_schedules_replay_identically(
        self, mobility, churn, crash_probability, with_traffic, seed
    ):
        spec = ScenarioSpec(
            name="hypothesis-incremental",
            placement=PlacementSpec(node_count=24, width=900.0, height=900.0),
            mobility=mobility,
            churn=tuple(churn),
            failures=FailureSpec(kind="crash", crash_probability=crash_probability)
            if crash_probability
            else FailureSpec(),
            traffic=TrafficSpec(kind="cbr", flow_count=3, packets_per_flow=2)
            if with_traffic
            else None,
            epochs=3,
            steps_per_epoch=2,
            alpha=ALPHA,
        )
        incremental, full = _serialized_runs(spec, seed)
        assert incremental == full


class TestProfiling:
    def test_phase_timings_recorded_only_when_profiling(self):
        spec = SCENARIOS["random-waypoint-drift"].scaled(node_count=30, epochs=2)
        plain = run_scenario(spec, 0)
        assert all(epoch.phase_seconds is None for epoch in plain.epochs)
        profiled = run_scenario(spec, 0, profile=True)
        for epoch in profiled.epochs:
            assert epoch.phase_seconds is not None
            assert set(epoch.phase_seconds) == {
                "churn",
                "mobility",
                "failures",
                "battery",
                "rebuild",
                "measure",
                "traffic",
                "total",
            }
            assert epoch.phase_seconds["total"] >= 0.0

    def test_profiling_never_perturbs_the_measured_run(self):
        spec = SCENARIOS["random-waypoint-drift"].scaled(node_count=30, epochs=2)
        plain = run_scenario(spec, 0)
        profiled = run_scenario(spec, 0, profile=True)
        for a, b in zip(plain.epochs, profiled.epochs):
            assert a.edge_count == b.edge_count
            assert a.average_degree == b.average_degree
            assert a.connectivity_preserved == b.connectivity_preserved
