"""Tests for the declarative scenario specification layer."""

import math
import pickle

import pytest

from repro.net.failures import CrashFailureModel, NoFailures
from repro.net.mobility import (
    ConvoyModel,
    PartitionModel,
    RandomWalkModel,
    RandomWaypointModel,
    StationaryModel,
)
from repro.scenarios.spec import (
    ChannelSpec,
    ChurnEvent,
    EnergySpec,
    FailureSpec,
    MobilitySpec,
    PlacementSpec,
    ScenarioSpec,
)
from repro.sim.channel import DuplicatingChannel, LossyChannel, ReliableChannel


class TestPlacementSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown placement kind"):
            PlacementSpec(kind="ring")

    @pytest.mark.parametrize("kind", ["uniform", "grid", "clustered"])
    def test_build_produces_requested_population(self, kind):
        network = PlacementSpec(kind=kind, node_count=25).build(seed=3)
        assert len(network) == 25
        assert network.power_model.max_range == 500.0

    def test_build_is_seed_deterministic(self):
        spec = PlacementSpec(kind="uniform", node_count=10)
        assert spec.build(5).positions() == spec.build(5).positions()
        assert spec.build(5).positions() != spec.build(6).positions()


class TestMobilitySpec:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("stationary", StationaryModel),
            ("random-walk", RandomWalkModel),
            ("random-waypoint", RandomWaypointModel),
            ("partition", PartitionModel),
            ("convoy", ConvoyModel),
        ],
    )
    def test_build_dispatches_on_kind(self, kind, expected):
        model = MobilitySpec(kind=kind).build(PlacementSpec(), seed=1)
        assert isinstance(model, expected)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility kind"):
            MobilitySpec(kind="teleport")

    def test_region_dimensions_flow_from_placement(self):
        placement = PlacementSpec(width=3000.0, height=400.0)
        model = MobilitySpec(kind="convoy").build(placement, seed=0)
        assert model.width == 3000.0
        assert model.height == 400.0


class TestFailureAndChannelSpecs:
    def test_failure_kinds(self):
        assert isinstance(FailureSpec(kind="none").build(1), NoFailures)
        model = FailureSpec(kind="crash", crash_probability=0.5).build(1)
        assert isinstance(model, CrashFailureModel)
        assert model.crash_probability == 0.5

    def test_channel_kinds(self):
        assert isinstance(ChannelSpec(kind="reliable").build(1), ReliableChannel)
        assert isinstance(ChannelSpec(kind="lossy").build(1), LossyChannel)
        assert isinstance(ChannelSpec(kind="duplicating").build(1), DuplicatingChannel)

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError):
            FailureSpec(kind="byzantine")
        with pytest.raises(ValueError):
            ChannelSpec(kind="wormhole")


class TestChurnAndEnergy:
    def test_churn_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(epoch=0)
        with pytest.raises(ValueError):
            ChurnEvent(epoch=1, joins=-1)

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            EnergySpec(capacity=0.0)
        assert not EnergySpec().finite
        assert EnergySpec(capacity=10.0).finite


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="named"):
            ScenarioSpec(name="")
        with pytest.raises(ValueError, match="epoch"):
            ScenarioSpec(name="x", epochs=0)
        with pytest.raises(ValueError, match="protocol"):
            ScenarioSpec(name="x", protocol="simulated-annealing")
        with pytest.raises(ValueError, match="beyond"):
            ScenarioSpec(name="x", epochs=2, churn=(ChurnEvent(epoch=5, joins=1),))

    def test_component_seeds_are_stable_and_distinct(self):
        spec = ScenarioSpec(name="seed-test")
        assert spec.component_seed(7, "mobility") == spec.component_seed(7, "mobility")
        assert spec.component_seed(7, "mobility") != spec.component_seed(7, "failures")
        assert spec.component_seed(7, "mobility") != spec.component_seed(8, "mobility")
        # Different scenario names get different streams for the same seed.
        other = ScenarioSpec(name="other-seed-test")
        assert spec.component_seed(7, "mobility") != other.component_seed(7, "mobility")

    def test_scaled_overrides_population_and_duration(self):
        spec = ScenarioSpec(
            name="scaling",
            placement=PlacementSpec(node_count=100),
            epochs=8,
            churn=(ChurnEvent(epoch=2, joins=5), ChurnEvent(epoch=7, joins=5)),
        )
        scaled = spec.scaled(node_count=20, epochs=4)
        assert scaled.placement.node_count == 20
        assert scaled.epochs == 4
        # Churn events beyond the shortened run are dropped; earlier ones kept.
        assert tuple(event.epoch for event in scaled.churn) == (2,)
        # The original is untouched (specs are immutable values).
        assert spec.placement.node_count == 100
        assert len(spec.churn) == 2

    def test_spec_is_picklable(self):
        spec = ScenarioSpec(
            name="pickling",
            churn=(ChurnEvent(epoch=1, joins=3),),
            energy=EnergySpec(capacity=100.0),
            alpha=2.0 * math.pi / 3.0,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
