"""Tests for repro.graphs.metrics."""

import math

import networkx as nx
import pytest

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.graphs.metrics import (
    average_degree,
    average_radius,
    degree_histogram,
    graph_metrics,
    interference_proxy,
    per_node_radius_of_graph,
)


class TestBasicMetrics:
    def test_average_degree(self, square_network):
        graph = square_network.max_power_graph()
        assert average_degree(graph) == pytest.approx(2.0)

    def test_average_degree_empty_graph(self):
        assert average_degree(nx.Graph()) == 0.0

    def test_degree_histogram(self, line_network):
        graph = line_network.max_power_graph()
        assert degree_histogram(graph) == {1: 2, 2: 3}

    def test_per_node_radius(self, line_network):
        graph = line_network.max_power_graph()
        radii = per_node_radius_of_graph(graph, line_network)
        assert radii[0] == pytest.approx(0.8)
        assert radii[2] == pytest.approx(0.8)

    def test_per_node_radius_isolated_node(self, square_network):
        graph = nx.Graph()
        graph.add_nodes_from(square_network.node_ids)
        radii = per_node_radius_of_graph(graph, square_network)
        assert all(radius == 0.0 for radius in radii.values())

    def test_average_radius_with_fixed_override(self, square_network):
        graph = square_network.max_power_graph()
        assert average_radius(graph, square_network) == pytest.approx(1.0)
        assert average_radius(graph, square_network, fixed_radius=7.0) == 7.0


class TestGraphMetricsBundle:
    def test_fields_consistent(self, small_random_network):
        graph = small_random_network.max_power_graph()
        metrics = graph_metrics(graph, small_random_network)
        assert metrics.node_count == len(small_random_network)
        assert metrics.edge_count == graph.number_of_edges()
        assert metrics.average_degree == pytest.approx(2 * metrics.edge_count / metrics.node_count)
        assert metrics.max_radius >= metrics.average_radius
        assert metrics.total_power > 0
        assert metrics.connected_components >= 1

    def test_fixed_radius_affects_radius_and_power_only(self, small_random_network):
        graph = small_random_network.max_power_graph()
        free = graph_metrics(graph, small_random_network)
        fixed = graph_metrics(graph, small_random_network, fixed_radius=500.0)
        assert fixed.average_radius == 500.0
        assert fixed.average_degree == free.average_degree
        assert fixed.total_power == pytest.approx(len(small_random_network) * 500.0**2)

    def test_as_dict_roundtrip(self, small_random_network):
        metrics = graph_metrics(small_random_network.max_power_graph(), small_random_network)
        payload = metrics.as_dict()
        assert payload["edge_count"] == metrics.edge_count
        assert set(payload) >= {"average_degree", "average_radius", "connected_components"}

    def test_empty_graph(self, square_network):
        metrics = graph_metrics(nx.Graph(), square_network)
        assert metrics.node_count == 0
        assert metrics.average_degree == 0.0
        assert metrics.connected_components == 0


class TestInterferenceProxy:
    def test_topology_control_reduces_interference(self, small_random_network):
        reference = small_random_network.max_power_graph()
        controlled = build_topology(
            small_random_network, 5 * math.pi / 6, config=OptimizationConfig.all()
        ).graph
        assert interference_proxy(controlled, small_random_network) < interference_proxy(
            reference, small_random_network
        )

    def test_graph_without_edges_has_zero_interference(self, square_network):
        graph = nx.Graph()
        graph.add_nodes_from(square_network.node_ids)
        assert interference_proxy(graph, square_network) == 0.0
