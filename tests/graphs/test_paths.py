"""Tests for repro.graphs.paths."""

import math

import pytest

from repro.geometry import Point
from repro.graphs.paths import (
    all_pairs_power_costs,
    minimum_power_path_cost,
    power_spanner_bound,
)
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel


@pytest.fixture
def relay_network():
    """Three collinear nodes where relaying is cheaper than a direct hop."""
    power_model = PowerModel(propagation=PathLossModel(exponent=2.0), max_range=3.0)
    return Network.from_points([Point(0, 0), Point(1, 0), Point(2, 0)], power_model=power_model)


class TestMinimumPowerPath:
    def test_relaying_beats_direct_transmission(self, relay_network):
        graph = relay_network.max_power_graph()
        cost = minimum_power_path_cost(graph, relay_network, 0, 2)
        # Two hops of length 1 cost 1 + 1 = 2 < 4 = one hop of length 2; this
        # is the "power grows super-linearly with distance" motivation of the
        # paper's introduction.
        assert cost == pytest.approx(2.0)

    def test_per_hop_overhead_can_flip_the_tradeoff(self, relay_network):
        graph = relay_network.max_power_graph()
        cost = minimum_power_path_cost(graph, relay_network, 0, 2, per_hop_overhead=5.0)
        # With a large per-hop receiver overhead the direct hop (4 + 5 = 9) is
        # cheaper than the two-hop relay (2 + 10 = 12).
        assert cost == pytest.approx(9.0)

    def test_disconnected_pair_returns_none(self, relay_network):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(relay_network.node_ids)
        assert minimum_power_path_cost(graph, relay_network, 0, 2) is None

    def test_custom_exponent(self, relay_network):
        graph = relay_network.max_power_graph()
        cost = minimum_power_path_cost(graph, relay_network, 0, 2, exponent=4.0)
        assert cost == pytest.approx(2.0)

    def test_all_pairs_costs_symmetric(self, relay_network):
        graph = relay_network.max_power_graph()
        costs = all_pairs_power_costs(graph, relay_network)
        assert costs[0][2] == pytest.approx(costs[2][0])
        assert costs[0][0] == 0.0


class TestSpannerBound:
    def test_monotone_decreasing_in_alpha(self):
        assert power_spanner_bound(math.pi / 3) > power_spanner_bound(math.pi / 2)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            power_spanner_bound(-1.0)
