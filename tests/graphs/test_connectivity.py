"""Tests for repro.graphs.connectivity."""

import networkx as nx

from repro.graphs.connectivity import (
    component_count,
    connected_pairs,
    is_connected,
    largest_component_fraction,
)


class TestConnectivityHelpers:
    def test_is_connected_trivial_cases(self):
        assert is_connected(nx.Graph())
        single = nx.Graph()
        single.add_node(0)
        assert is_connected(single)

    def test_is_connected_path_and_disjoint(self):
        assert is_connected(nx.path_graph(5))
        disjoint = nx.Graph()
        disjoint.add_edges_from([(0, 1), (2, 3)])
        assert not is_connected(disjoint)

    def test_component_count(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        graph.add_node(4)
        assert component_count(graph) == 3
        assert component_count(nx.Graph()) == 0

    def test_connected_pairs(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (3, 4)])
        pairs = connected_pairs(graph)
        assert pairs == {(0, 1), (0, 2), (1, 2), (3, 4)}

    def test_largest_component_fraction(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (3, 4)])
        assert largest_component_fraction(graph) == 0.6
        assert largest_component_fraction(nx.Graph()) == 0.0
