"""Tests for routing-load / congestion analysis (repro.graphs.routing)."""

import math

import networkx as nx
import pytest

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.geometry import Point
from repro.graphs import routing
from repro.graphs.routing import (
    congestion_report,
    edge_congestion,
    node_forwarding_load,
)
from repro.net.network import Network
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio import PathLossModel, PowerModel


@pytest.fixture
def path_network():
    """Four nodes on a line; every route between non-adjacent nodes uses the middle edges."""
    power_model = PowerModel(propagation=PathLossModel(), max_range=1.5)
    return Network.from_points([Point(float(i), 0.0) for i in range(4)], power_model=power_model)


class TestEdgeCongestion:
    def test_middle_edge_carries_the_most_routes(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        congestion = edge_congestion(graph, path_network)
        # 6 routed pairs; the middle edge (1,2) carries 0-2, 0-3, 1-2, 1-3 = 4 of them.
        assert congestion[(1, 2)] == pytest.approx(4 / 6)
        assert congestion[(0, 1)] == pytest.approx(3 / 6)

    def test_empty_graph(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        assert edge_congestion(graph, path_network) == {}


class TestForwardingLoad:
    def test_interior_nodes_forward(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        load = node_forwarding_load(graph, path_network)
        assert load[0] == 0.0 and load[3] == 0.0
        assert load[1] > 0.0 and load[2] > 0.0
        assert load[1] == pytest.approx(load[2])

    def test_star_center_forwards_everything(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=2.0)
        network = Network.from_points(
            [Point(0, 0), Point(1, 0), Point(0, 1), Point(-1, 0), Point(0, -1)], power_model=power_model
        )
        star = nx.star_graph(4)
        load = node_forwarding_load(star, network)
        # 6 of the 10 routed pairs are leaf-to-leaf and all go through the hub.
        assert load[0] == pytest.approx(6 / 10)


class TestCongestionReport:
    def test_report_fields_on_path(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 6
        assert report.average_hop_count == pytest.approx((1 + 2 + 3 + 1 + 2 + 1) / 6)
        assert report.max_edge_congestion == pytest.approx(4 / 6)
        assert report.max_forwarding_load > 0
        assert set(report.as_dict()) == {
            "routed_pairs",
            "average_hop_count",
            "max_edge_congestion",
            "average_edge_congestion",
            "max_forwarding_load",
        }

    def test_empty_graph_report(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 0
        assert report.max_edge_congestion == 0.0

    def test_single_node_graph(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=1.0)
        network = Network.from_points([Point(0.0, 0.0)], power_model=power_model)
        graph = nx.Graph()
        graph.add_node(0)
        report = congestion_report(graph, network)
        assert report.routed_pairs == 0
        assert report.average_hop_count == 0.0
        assert edge_congestion(graph, network) == {}
        assert node_forwarding_load(graph, network) == {0: 0.0}

    def test_disconnected_graph_routes_fewer_pairs(self, path_network):
        # Two components of two nodes each: only the 2 intra-component pairs
        # route (versus 6 for the connected path).
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (2, 3)])
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 2
        assert report.average_hop_count == 1.0
        assert report.max_edge_congestion == pytest.approx(1 / 2)

    def test_isolated_nodes_route_zero_pairs(self, path_network):
        # Nodes but no edges: zero routed pairs must not divide by zero.
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        assert congestion_report(graph, path_network).routed_pairs == 0
        assert all(value == 0.0 for value in node_forwarding_load(graph, path_network).values())

    def test_topology_control_increases_hops_and_congestion(self, small_random_network):
        # The Section 6 discussion: removing edges lengthens routes and
        # concentrates load.  Quantified: the fully optimized topology has
        # more hops per route and a higher worst-edge congestion than G_R.
        reference = small_random_network.max_power_graph()
        controlled = build_topology(
            small_random_network, 5 * math.pi / 6, config=OptimizationConfig.all()
        ).graph
        dense = congestion_report(reference, small_random_network)
        sparse = congestion_report(controlled, small_random_network)
        assert sparse.average_hop_count > dense.average_hop_count
        assert sparse.max_edge_congestion >= dense.max_edge_congestion
        assert sparse.routed_pairs == dense.routed_pairs


class TestSampledPairsMode:
    @pytest.fixture
    def bigger_world(self):
        network = random_uniform_placement(PlacementConfig(node_count=60), seed=4)
        graph = build_topology(network, 5 * math.pi / 6).graph
        return network, graph

    def test_exact_mode_is_pinned_byte_identical(self, bigger_world):
        # sample_pairs=0 must take exactly the historic all-pairs code path;
        # so must the small-graph default.
        network, graph = bigger_world
        default = congestion_report(graph, network)
        forced_exact = congestion_report(graph, network, sample_pairs=0)
        assert default == forced_exact
        n = graph.number_of_nodes()
        oversampled = congestion_report(graph, network, sample_pairs=n * (n - 1) // 2)
        assert oversampled == default

    def test_sampled_mode_routes_at_most_k_pairs(self, bigger_world):
        network, graph = bigger_world
        report = congestion_report(graph, network, sample_pairs=40)
        assert 0 < report.routed_pairs <= 40

    def test_sampled_mode_is_seeded(self, bigger_world):
        network, graph = bigger_world
        first = congestion_report(graph, network, sample_pairs=40, seed=1)
        again = congestion_report(graph, network, sample_pairs=40, seed=1)
        other = congestion_report(graph, network, sample_pairs=40, seed=2)
        assert first == again
        assert first != other

    def test_sampled_estimates_track_exact_values(self, bigger_world):
        network, graph = bigger_world
        exact = congestion_report(graph, network)
        sampled = congestion_report(graph, network, sample_pairs=600, seed=0)
        assert sampled.average_hop_count == pytest.approx(exact.average_hop_count, rel=0.35)
        assert sampled.max_forwarding_load == pytest.approx(exact.max_forwarding_load, rel=0.6)

    def test_large_graphs_sample_automatically(self, bigger_world, monkeypatch):
        network, graph = bigger_world
        monkeypatch.setattr(routing, "AUTO_SAMPLE_NODE_THRESHOLD", 10)
        monkeypatch.setattr(routing, "DEFAULT_SAMPLE_PAIRS", 50)
        report = congestion_report(graph, network)
        assert report.routed_pairs <= 50

    def test_negative_sample_pairs_rejected(self, bigger_world):
        network, graph = bigger_world
        with pytest.raises(ValueError):
            congestion_report(graph, network, sample_pairs=-1)

    def test_edge_and_node_functions_accept_sampling(self, bigger_world):
        network, graph = bigger_world
        congestion = edge_congestion(graph, network, sample_pairs=30, seed=3)
        load = node_forwarding_load(graph, network, sample_pairs=30, seed=3)
        assert set(congestion) == {tuple(sorted(edge)) for edge in graph.edges}
        assert set(load) == set(graph.nodes)
        assert any(value > 0 for value in congestion.values())

    def test_sample_spreads_across_many_sources(self, bigger_world):
        network, graph = bigger_world
        sources = {
            source
            for source, _, _ in routing._sampled_pairs_paths(graph, network, 2.0, 50, seed=0)
        }
        # 50 pairs with ~sqrt(50) targets per source must touch >= 5 trees,
        # not collapse onto the 1-2 that would suffice to contain them.
        assert len(sources) >= 5


class TestCanonicalDijkstra:
    """History-independent tie-breaking for per-source routes."""

    def _adjacency(self, edges):
        adjacency = {}
        for u, v, w in edges:
            adjacency.setdefault(u, {})[v] = w
            adjacency.setdefault(v, {})[u] = w
        return adjacency

    def test_result_is_independent_of_insertion_order(self):
        from repro.graphs.routing import canonical_single_source_paths

        edges = [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
        forward = self._adjacency(edges)
        backward = self._adjacency(list(reversed(edges)))
        assert canonical_single_source_paths(forward, 0) == canonical_single_source_paths(
            backward, 0
        )

    def test_equal_cost_ties_pick_smallest_predecessor(self):
        from repro.graphs.routing import canonical_single_source_paths

        # Both 1 and 2 reach 3 at cost 2; the canonical tree must route 0->1->3.
        adjacency = self._adjacency(
            [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]
        )
        assert canonical_single_source_paths(adjacency, 0)[3] == [0, 1, 3]

    def test_unreachable_targets_are_absent(self):
        from repro.graphs.routing import canonical_single_source_paths

        adjacency = self._adjacency([(0, 1, 1.0)])
        adjacency[5] = {}
        paths = canonical_single_source_paths(adjacency, 0)
        assert 5 not in paths
        assert paths[0] == [0]


class TestSourceRouteCache:
    def _adjacency(self, edges):
        adjacency = {}
        for u, v, w in edges:
            adjacency.setdefault(u, {})[v] = w
            adjacency.setdefault(v, {})[u] = w
        return adjacency

    def test_cached_paths_match_fresh_computation_under_evolution(self):
        import random as random_module

        from repro.graphs.routing import SourceRouteCache, canonical_single_source_paths

        rng = random_module.Random(3)
        nodes = list(range(16))
        edges = {}
        for u in nodes:
            for v in nodes:
                if u < v and rng.random() < 0.3:
                    edges[(u, v)] = rng.uniform(1.0, 5.0)
        cache = SourceRouteCache()
        for _ in range(25):
            action = rng.random()
            if action < 0.4 and edges:  # remove an edge
                del edges[rng.choice(sorted(edges))]
            elif action < 0.7:  # add an edge
                u, v = sorted(rng.sample(nodes, 2))
                edges[(u, v)] = rng.uniform(1.0, 5.0)
            elif edges:  # perturb a weight
                edge = rng.choice(sorted(edges))
                edges[edge] = rng.uniform(1.0, 5.0)
            adjacency = {node: {} for node in nodes}
            for (u, v), w in edges.items():
                adjacency[u][v] = w
                adjacency[v][u] = w
            cache.sync(adjacency)
            for source in rng.sample(nodes, 4):
                assert cache.paths(source) == canonical_single_source_paths(
                    adjacency, source
                )

    def test_unrelated_removal_keeps_cached_tree(self):
        from repro.graphs.routing import SourceRouteCache

        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]
        cache = SourceRouteCache()
        cache.sync(self._adjacency(edges))
        cache.paths(0)
        assert cache.misses == 1
        # Removing (3, 4) cannot touch 0's shortest-path tree (0-1, 1-2):
        # the tree survives the sync.
        adjacency = self._adjacency([(0, 1, 1.0), (1, 2, 1.0)])
        adjacency.setdefault(3, {})
        adjacency.setdefault(4, {})
        cache.sync(adjacency)
        cache.paths(0)
        assert cache.hits == 1

    def test_tree_edge_removal_invalidates_the_source(self):
        from repro.graphs.routing import SourceRouteCache

        cache = SourceRouteCache()
        cache.sync(self._adjacency([(0, 1, 1.0), (1, 2, 1.0)]))
        cache.paths(0)
        cache.sync(self._adjacency([(0, 1, 1.0)]))
        paths = cache.paths(0)
        assert cache.misses == 2
        assert 2 not in paths

    def test_added_edge_drops_everything(self):
        from repro.graphs.routing import SourceRouteCache

        cache = SourceRouteCache()
        cache.sync(self._adjacency([(0, 1, 1.0), (1, 2, 1.0)]))
        cache.paths(0)
        cache.sync(self._adjacency([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]))
        assert cache.paths(0)[2] == [0, 2]
        assert cache.misses == 2

    # ------------------------------------------------------------------ #
    # Whole-node removal (a node leaving the network entirely, not just an
    # edge worsening): the cases the scenario runner hits when a route
    # source or an interior relay crashes or is removed.
    # ------------------------------------------------------------------ #
    def test_removed_source_is_evicted_not_served_stale(self):
        from repro.graphs.routing import SourceRouteCache

        cache = SourceRouteCache()
        cache.sync(self._adjacency([(0, 1, 1.0), (1, 2, 1.0)]))
        assert cache.paths(0)[2] == [0, 1, 2]
        # Node 0 disappears from the network: it is absent from the new
        # adjacency, not merely disconnected.
        cache.sync(self._adjacency([(1, 2, 1.0)]))
        paths = cache.paths(0)
        assert paths == {}
        assert cache.misses == 2  # the cached tree was evicted, not reused

    def test_removed_interior_tree_node_invalidates_dependent_sources(self):
        from repro.graphs.routing import SourceRouteCache, canonical_single_source_paths

        # 0-1-2-3 path plus a detour 0-4-3 that is initially more expensive.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 2.0), (4, 3, 2.0)]
        cache = SourceRouteCache()
        cache.sync(self._adjacency(edges))
        assert cache.paths(0)[3] == [0, 1, 2, 3]
        # Node 1 — an interior relay of 0's tree — is removed outright, so
        # both of its edges vanish in one sync.
        survivors = [(2, 3, 1.0), (0, 4, 2.0), (4, 3, 2.0)]
        adjacency = self._adjacency(survivors)
        cache.sync(adjacency)
        paths = cache.paths(0)
        assert paths == canonical_single_source_paths(adjacency, 0)
        assert paths[3] == [0, 4, 3]
        assert 1 not in paths
        assert cache.misses == 2

    def test_removed_leaf_outside_other_trees_keeps_them(self):
        from repro.graphs.routing import SourceRouteCache

        # 5 hangs off 4; 0's tree (0-1-2) never touches 4-5.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]
        cache = SourceRouteCache()
        cache.sync(self._adjacency(edges))
        cache.paths(0)
        cache.paths(3)
        cache.sync(self._adjacency([(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]))
        cache.paths(0)
        assert cache.hits == 1  # 0's tree survived node 5's removal...
        paths = cache.paths(3)
        assert 5 not in paths  # ...while 3's tree, which reached 5, was rebuilt
        assert cache.misses == 3

    def test_removed_then_readded_node_is_recomputed_fresh(self):
        from repro.graphs.routing import SourceRouteCache, canonical_single_source_paths

        before = self._adjacency([(0, 1, 1.0), (1, 2, 1.0)])
        cache = SourceRouteCache()
        cache.sync(before)
        assert cache.paths(2)[0] == [2, 1, 0]
        cache.sync(self._adjacency([(0, 1, 1.0)]))  # node 2 gone
        assert cache.paths(2) == {}
        # The node rejoins elsewhere: its edge set is different now, and the
        # re-added edge wipes the cache wholesale (adds may improve paths).
        after = self._adjacency([(0, 1, 1.0), (0, 2, 1.0)])
        cache.sync(after)
        paths = cache.paths(2)
        assert paths == canonical_single_source_paths(after, 2)
        assert paths[1] == [2, 0, 1]

    def test_network_backed_node_removal_matches_fresh_routes(self):
        """End to end over a real topology: drop a relay node from the
        network, rebuild the adjacency, and require cached routes to equal
        a from-scratch computation for every surviving source."""
        from repro.graphs.routing import SourceRouteCache, canonical_single_source_paths

        network = random_uniform_placement(PlacementConfig(node_count=40), seed=8)
        graph = build_topology(network, 5 * math.pi / 6).graph

        def power_adjacency(g):
            adjacency = {node: {} for node in g.nodes}
            for u, v in g.edges:
                weight = network.distance(u, v) ** 2
                adjacency[u][v] = weight
                adjacency[v][u] = weight
            return adjacency

        cache = SourceRouteCache()
        cache.sync(power_adjacency(graph))
        for source in sorted(graph.nodes):
            cache.paths(source)
        victim = sorted(graph.nodes)[len(graph.nodes) // 2]
        graph.remove_node(victim)
        adjacency = power_adjacency(graph)
        cache.sync(adjacency)
        for source in sorted(graph.nodes):
            assert cache.paths(source) == canonical_single_source_paths(adjacency, source)
        assert cache.paths(victim) == {}
