"""Tests for routing-load / congestion analysis (repro.graphs.routing)."""

import math

import networkx as nx
import pytest

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.geometry import Point
from repro.graphs.routing import (
    congestion_report,
    edge_congestion,
    node_forwarding_load,
)
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel


@pytest.fixture
def path_network():
    """Four nodes on a line; every route between non-adjacent nodes uses the middle edges."""
    power_model = PowerModel(propagation=PathLossModel(), max_range=1.5)
    return Network.from_points([Point(float(i), 0.0) for i in range(4)], power_model=power_model)


class TestEdgeCongestion:
    def test_middle_edge_carries_the_most_routes(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        congestion = edge_congestion(graph, path_network)
        # 6 routed pairs; the middle edge (1,2) carries 0-2, 0-3, 1-2, 1-3 = 4 of them.
        assert congestion[(1, 2)] == pytest.approx(4 / 6)
        assert congestion[(0, 1)] == pytest.approx(3 / 6)

    def test_empty_graph(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        assert edge_congestion(graph, path_network) == {}


class TestForwardingLoad:
    def test_interior_nodes_forward(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        load = node_forwarding_load(graph, path_network)
        assert load[0] == 0.0 and load[3] == 0.0
        assert load[1] > 0.0 and load[2] > 0.0
        assert load[1] == pytest.approx(load[2])

    def test_star_center_forwards_everything(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=2.0)
        network = Network.from_points(
            [Point(0, 0), Point(1, 0), Point(0, 1), Point(-1, 0), Point(0, -1)], power_model=power_model
        )
        star = nx.star_graph(4)
        load = node_forwarding_load(star, network)
        # 6 of the 10 routed pairs are leaf-to-leaf and all go through the hub.
        assert load[0] == pytest.approx(6 / 10)


class TestCongestionReport:
    def test_report_fields_on_path(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 6
        assert report.average_hop_count == pytest.approx((1 + 2 + 3 + 1 + 2 + 1) / 6)
        assert report.max_edge_congestion == pytest.approx(4 / 6)
        assert report.max_forwarding_load > 0
        assert set(report.as_dict()) == {
            "routed_pairs",
            "average_hop_count",
            "max_edge_congestion",
            "average_edge_congestion",
            "max_forwarding_load",
        }

    def test_empty_graph_report(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 0
        assert report.max_edge_congestion == 0.0

    def test_topology_control_increases_hops_and_congestion(self, small_random_network):
        # The Section 6 discussion: removing edges lengthens routes and
        # concentrates load.  Quantified: the fully optimized topology has
        # more hops per route and a higher worst-edge congestion than G_R.
        reference = small_random_network.max_power_graph()
        controlled = build_topology(
            small_random_network, 5 * math.pi / 6, config=OptimizationConfig.all()
        ).graph
        dense = congestion_report(reference, small_random_network)
        sparse = congestion_report(controlled, small_random_network)
        assert sparse.average_hop_count > dense.average_hop_count
        assert sparse.max_edge_congestion >= dense.max_edge_congestion
        assert sparse.routed_pairs == dense.routed_pairs
