"""Tests for routing-load / congestion analysis (repro.graphs.routing)."""

import math

import networkx as nx
import pytest

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.geometry import Point
from repro.graphs import routing
from repro.graphs.routing import (
    congestion_report,
    edge_congestion,
    node_forwarding_load,
)
from repro.net.network import Network
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio import PathLossModel, PowerModel


@pytest.fixture
def path_network():
    """Four nodes on a line; every route between non-adjacent nodes uses the middle edges."""
    power_model = PowerModel(propagation=PathLossModel(), max_range=1.5)
    return Network.from_points([Point(float(i), 0.0) for i in range(4)], power_model=power_model)


class TestEdgeCongestion:
    def test_middle_edge_carries_the_most_routes(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        congestion = edge_congestion(graph, path_network)
        # 6 routed pairs; the middle edge (1,2) carries 0-2, 0-3, 1-2, 1-3 = 4 of them.
        assert congestion[(1, 2)] == pytest.approx(4 / 6)
        assert congestion[(0, 1)] == pytest.approx(3 / 6)

    def test_empty_graph(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        assert edge_congestion(graph, path_network) == {}


class TestForwardingLoad:
    def test_interior_nodes_forward(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        load = node_forwarding_load(graph, path_network)
        assert load[0] == 0.0 and load[3] == 0.0
        assert load[1] > 0.0 and load[2] > 0.0
        assert load[1] == pytest.approx(load[2])

    def test_star_center_forwards_everything(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=2.0)
        network = Network.from_points(
            [Point(0, 0), Point(1, 0), Point(0, 1), Point(-1, 0), Point(0, -1)], power_model=power_model
        )
        star = nx.star_graph(4)
        load = node_forwarding_load(star, network)
        # 6 of the 10 routed pairs are leaf-to-leaf and all go through the hub.
        assert load[0] == pytest.approx(6 / 10)


class TestCongestionReport:
    def test_report_fields_on_path(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 6
        assert report.average_hop_count == pytest.approx((1 + 2 + 3 + 1 + 2 + 1) / 6)
        assert report.max_edge_congestion == pytest.approx(4 / 6)
        assert report.max_forwarding_load > 0
        assert set(report.as_dict()) == {
            "routed_pairs",
            "average_hop_count",
            "max_edge_congestion",
            "average_edge_congestion",
            "max_forwarding_load",
        }

    def test_empty_graph_report(self, path_network):
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 0
        assert report.max_edge_congestion == 0.0

    def test_single_node_graph(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=1.0)
        network = Network.from_points([Point(0.0, 0.0)], power_model=power_model)
        graph = nx.Graph()
        graph.add_node(0)
        report = congestion_report(graph, network)
        assert report.routed_pairs == 0
        assert report.average_hop_count == 0.0
        assert edge_congestion(graph, network) == {}
        assert node_forwarding_load(graph, network) == {0: 0.0}

    def test_disconnected_graph_routes_fewer_pairs(self, path_network):
        # Two components of two nodes each: only the 2 intra-component pairs
        # route (versus 6 for the connected path).
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        graph.add_edges_from([(0, 1), (2, 3)])
        report = congestion_report(graph, path_network)
        assert report.routed_pairs == 2
        assert report.average_hop_count == 1.0
        assert report.max_edge_congestion == pytest.approx(1 / 2)

    def test_isolated_nodes_route_zero_pairs(self, path_network):
        # Nodes but no edges: zero routed pairs must not divide by zero.
        graph = nx.Graph()
        graph.add_nodes_from(path_network.node_ids)
        assert congestion_report(graph, path_network).routed_pairs == 0
        assert all(value == 0.0 for value in node_forwarding_load(graph, path_network).values())

    def test_topology_control_increases_hops_and_congestion(self, small_random_network):
        # The Section 6 discussion: removing edges lengthens routes and
        # concentrates load.  Quantified: the fully optimized topology has
        # more hops per route and a higher worst-edge congestion than G_R.
        reference = small_random_network.max_power_graph()
        controlled = build_topology(
            small_random_network, 5 * math.pi / 6, config=OptimizationConfig.all()
        ).graph
        dense = congestion_report(reference, small_random_network)
        sparse = congestion_report(controlled, small_random_network)
        assert sparse.average_hop_count > dense.average_hop_count
        assert sparse.max_edge_congestion >= dense.max_edge_congestion
        assert sparse.routed_pairs == dense.routed_pairs


class TestSampledPairsMode:
    @pytest.fixture
    def bigger_world(self):
        network = random_uniform_placement(PlacementConfig(node_count=60), seed=4)
        graph = build_topology(network, 5 * math.pi / 6).graph
        return network, graph

    def test_exact_mode_is_pinned_byte_identical(self, bigger_world):
        # sample_pairs=0 must take exactly the historic all-pairs code path;
        # so must the small-graph default.
        network, graph = bigger_world
        default = congestion_report(graph, network)
        forced_exact = congestion_report(graph, network, sample_pairs=0)
        assert default == forced_exact
        n = graph.number_of_nodes()
        oversampled = congestion_report(graph, network, sample_pairs=n * (n - 1) // 2)
        assert oversampled == default

    def test_sampled_mode_routes_at_most_k_pairs(self, bigger_world):
        network, graph = bigger_world
        report = congestion_report(graph, network, sample_pairs=40)
        assert 0 < report.routed_pairs <= 40

    def test_sampled_mode_is_seeded(self, bigger_world):
        network, graph = bigger_world
        first = congestion_report(graph, network, sample_pairs=40, seed=1)
        again = congestion_report(graph, network, sample_pairs=40, seed=1)
        other = congestion_report(graph, network, sample_pairs=40, seed=2)
        assert first == again
        assert first != other

    def test_sampled_estimates_track_exact_values(self, bigger_world):
        network, graph = bigger_world
        exact = congestion_report(graph, network)
        sampled = congestion_report(graph, network, sample_pairs=600, seed=0)
        assert sampled.average_hop_count == pytest.approx(exact.average_hop_count, rel=0.35)
        assert sampled.max_forwarding_load == pytest.approx(exact.max_forwarding_load, rel=0.6)

    def test_large_graphs_sample_automatically(self, bigger_world, monkeypatch):
        network, graph = bigger_world
        monkeypatch.setattr(routing, "AUTO_SAMPLE_NODE_THRESHOLD", 10)
        monkeypatch.setattr(routing, "DEFAULT_SAMPLE_PAIRS", 50)
        report = congestion_report(graph, network)
        assert report.routed_pairs <= 50

    def test_negative_sample_pairs_rejected(self, bigger_world):
        network, graph = bigger_world
        with pytest.raises(ValueError):
            congestion_report(graph, network, sample_pairs=-1)

    def test_edge_and_node_functions_accept_sampling(self, bigger_world):
        network, graph = bigger_world
        congestion = edge_congestion(graph, network, sample_pairs=30, seed=3)
        load = node_forwarding_load(graph, network, sample_pairs=30, seed=3)
        assert set(congestion) == {tuple(sorted(edge)) for edge in graph.edges}
        assert set(load) == set(graph.nodes)
        assert any(value > 0 for value in congestion.values())

    def test_sample_spreads_across_many_sources(self, bigger_world):
        network, graph = bigger_world
        sources = {
            source
            for source, _, _ in routing._sampled_pairs_paths(graph, network, 2.0, 50, seed=0)
        }
        # 50 pairs with ~sqrt(50) targets per source must touch >= 5 trees,
        # not collapse onto the 1-2 that would suffice to contain them.
        assert len(sources) >= 5
