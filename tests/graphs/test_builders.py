"""Tests for repro.graphs.builders."""

import pytest

from repro.graphs.builders import graph_from_edges, unit_disk_graph


class TestUnitDiskGraph:
    def test_default_radius_equals_max_power_graph(self, small_random_network):
        assert set(unit_disk_graph(small_random_network).edges) == set(
            small_random_network.max_power_graph().edges
        )

    def test_smaller_radius_gives_subgraph(self, small_random_network):
        full = unit_disk_graph(small_random_network)
        half = unit_disk_graph(small_random_network, radius=250.0)
        assert set(half.edges) <= set(full.edges)
        assert half.number_of_edges() < full.number_of_edges()

    def test_edge_lengths_within_radius(self, small_random_network):
        graph = unit_disk_graph(small_random_network, radius=300.0)
        for u, v, data in graph.edges(data=True):
            assert data["length"] <= 300.0 + 1e-9

    def test_dead_nodes_excluded(self, small_random_network):
        small_random_network.node(0).crash()
        graph = unit_disk_graph(small_random_network, radius=400.0)
        assert 0 not in graph


class TestGraphFromEdges:
    def test_builds_over_all_alive_nodes(self, square_network):
        graph = graph_from_edges(square_network, [(0, 1)])
        assert set(graph.nodes) == {0, 1, 2, 3}
        assert graph.number_of_edges() == 1
        assert graph.edges[0, 1]["length"] == pytest.approx(1.0)

    def test_positions_attached(self, square_network):
        graph = graph_from_edges(square_network, [])
        assert graph.nodes[2]["pos"] == (1.0, 1.0)
