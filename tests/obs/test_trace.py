"""Span tracing: null default, recording semantics, the timed() bridge."""

from repro.obs.metrics import Histogram
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    get_tracer,
    timed,
    use_tracer,
)


class TestDefaults:
    def test_default_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_null_span_is_shared_and_inert(self):
        span_a = NULL_TRACER.span("a", detail=1)
        span_b = NULL_TRACER.span("b")
        assert span_a is span_b
        with span_a as inner:
            inner.set_attr("ignored", True)


class TestRecording:
    def test_nesting_and_parentage(self):
        tracer = RecordingTracer()
        with tracer.span("outer"):
            with tracer.span("inner", step=1):
                pass
            with tracer.span("inner", step=2):
                pass
        names = [(span.name, span.parent) for span in tracer.spans]
        # Children close before the parent; both point at the outer span.
        assert names == [("inner", 0), ("inner", 0), ("outer", None)]
        assert tracer.spans[0].attrs == {"step": 1}
        assert all(span.wall_seconds >= 0 for span in tracer.spans)
        assert all(span.cpu_seconds >= 0 for span in tracer.spans)

    def test_durations_aggregate_by_name(self):
        tracer = RecordingTracer()
        with tracer.span("work"):
            pass
        with tracer.span("work"):
            pass
        durations = tracer.durations()
        assert set(durations) == {"work"}
        assert durations["work"] >= 0
        assert set(tracer.cpu_durations()) == {"work"}

    def test_reset_clears_everything(self):
        tracer = RecordingTracer()
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("again"):
            pass
        assert tracer.spans[0].index == 0


class TestInstallation:
    def test_use_tracer_restores_previous(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with use_tracer(None):
                assert isinstance(get_tracer(), NullTracer)
            assert get_tracer() is tracer
        assert isinstance(get_tracer(), NullTracer)


class TestTimed:
    def test_histogram_observes_without_a_tracer(self):
        hist = Histogram()
        with timed(hist, "op"):
            pass
        assert hist.count == 1

    def test_span_materializes_only_under_recording_tracer(self):
        hist = Histogram()
        tracer = RecordingTracer()
        with use_tracer(tracer):
            with timed(hist, "op", detail="x"):
                pass
        assert hist.count == 1
        assert [span.name for span in tracer.spans] == ["op"]
        assert tracer.spans[0].attrs == {"detail": "x"}

    def test_histogram_observes_even_on_exception(self):
        hist = Histogram()
        try:
            with timed(hist, "op"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert hist.count == 1
