"""Instrumentation must be invisible: byte-identity with tracing enabled.

The whole observability layer rides on one promise — spans and metrics are
telemetry only, never inputs.  These batteries run the repo's canonical
determinism comparisons twice, with a recording tracer installed and
without, and require literally identical output bytes.
"""

from repro.io.results import results_to_json
from repro.obs.trace import RecordingTracer, use_tracer
from repro.scenarios import get_scenario
from repro.scenarios.runner import run_scenario
from repro.service.loadgen import LoadConfig, build_trace, flatten_trace
from repro.service.replay import replay_serial, replay_sharded


def _trace():
    config = LoadConfig(
        worlds=4, requests_per_world=6, nodes=30, mover_fraction=0.1, seed=3
    )
    return flatten_trace(build_trace(config))


class TestServiceByteIdentity:
    def test_serial_replay_identical_with_tracing(self):
        trace = _trace()
        baseline = replay_serial(trace)
        tracer = RecordingTracer()
        with use_tracer(tracer):
            traced = replay_serial(trace)
        assert traced == baseline
        # The comparison is only meaningful if spans actually recorded.
        assert tracer.spans

    def test_sharded_replay_identical_with_tracing(self):
        trace = _trace()
        baseline = replay_sharded(trace, shards=4)
        with use_tracer(RecordingTracer()):
            traced = replay_sharded(trace, shards=4)
        assert traced == baseline


class TestScenarioByteIdentity:
    def test_scenario_run_identical_with_tracing(self):
        spec = get_scenario("random-waypoint-drift").scaled(node_count=40, epochs=2)
        baseline = results_to_json(run_scenario(spec, 1))
        tracer = RecordingTracer()
        with use_tracer(tracer):
            traced = results_to_json(run_scenario(spec, 1))
        assert traced == baseline
        assert tracer.spans

    def test_profiled_run_matches_modulo_phase_seconds(self):
        spec = get_scenario("random-waypoint-drift").scaled(node_count=40, epochs=2)
        plain = run_scenario(spec, 1)
        profiled = run_scenario(spec, 1, profile=True)
        for bare, timed in zip(plain.epochs, profiled.epochs):
            assert timed.phase_seconds is not None
            # Everything except the timings is unaffected by profiling.
            import dataclasses

            assert dataclasses.replace(timed, phase_seconds=None) == bare
