"""The bench trajectory: diff semantics and one real (tiny) measurement."""

import pytest

from repro.obs import bench


def _report(cells, area="topology"):
    return {
        "version": bench.BENCH_VERSION,
        "area": area,
        "reference_cell": bench.REFERENCE_CELL,
        "reference_seconds_hint": 0.01,
        "repeats": 3,
        "cells": {
            name: {"ratio": ratio, "seconds_hint": ratio * 0.01}
            for name, ratio in cells.items()
        },
    }


class TestDiff:
    def test_identical_reports_have_no_regressions(self):
        report = _report({"a": 4.0, "b": 10.0})
        assert bench.diff_reports(report, report, tolerance=0.0) == []

    def test_within_tolerance_passes(self):
        baseline = _report({"a": 4.0})
        current = _report({"a": 5.9})
        assert bench.diff_reports(baseline, current, tolerance=0.5) == []

    def test_regression_beyond_tolerance_fails(self):
        baseline = _report({"a": 4.0})
        current = _report({"a": 6.1})
        regressions = bench.diff_reports(baseline, current, tolerance=0.5)
        assert [r["cell"] for r in regressions] == ["a"]
        assert regressions[0]["kind"] == "slower"
        assert regressions[0]["limit"] == 6.0

    def test_missing_cell_is_a_regression(self):
        baseline = _report({"a": 4.0, "b": 10.0})
        current = _report({"a": 4.0})
        regressions = bench.diff_reports(baseline, current, tolerance=1.0)
        assert [(r["cell"], r["kind"]) for r in regressions] == [("b", "missing")]

    def test_new_cell_is_not_a_regression(self):
        baseline = _report({"a": 4.0})
        current = _report({"a": 4.0, "new": 99.0})
        assert bench.diff_reports(baseline, current, tolerance=0.0) == []

    def test_improvements_pass_any_tolerance(self):
        baseline = _report({"a": 4.0})
        current = _report({"a": 0.5})
        assert bench.diff_reports(baseline, current, tolerance=0.0) == []

    def test_negative_tolerance_rejected(self):
        report = _report({"a": 1.0})
        with pytest.raises(ValueError):
            bench.diff_reports(report, report, tolerance=-0.1)

    def test_seconds_hint_is_never_compared(self):
        baseline = _report({"a": 4.0})
        current = _report({"a": 4.0})
        current["cells"]["a"]["seconds_hint"] = 1e9  # different machine
        assert bench.diff_reports(baseline, current, tolerance=0.0) == []


class TestAreas:
    def test_area_names_and_paths(self):
        names = bench.area_names()
        assert "topology" in names and "service" in names
        assert bench.bench_path("topology") == "BENCH_topology.json"

    def test_unknown_area_raises(self):
        with pytest.raises(KeyError, match="unknown bench area"):
            bench.run_area("nonsense")

    def test_run_area_produces_normalized_report(self):
        report = bench.run_area("service", repeats=1)
        assert report["version"] == bench.BENCH_VERSION
        assert report["area"] == "service"
        assert report["reference_cell"] == bench.REFERENCE_CELL
        assert report["reference_seconds_hint"] > 0
        for entry in report["cells"].values():
            assert entry["ratio"] > 0
            assert entry["seconds_hint"] > 0
        # A fresh measurement diffs clean against itself.
        assert bench.diff_reports(report, report, tolerance=0.0) == []

    def test_format_report_renders_every_cell(self):
        report = _report({"a": 4.0, "b": 10.0})
        rendered = bench.format_report(report)
        assert "a" in rendered and "b" in rendered and "reference" in rendered
