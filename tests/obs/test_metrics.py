"""The metrics registry: merge algebra, canonical serialization, percentiles."""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.results import canonical_json
from repro.obs.metrics import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    hit_rate,
    histogram_delta,
    merge_snapshots,
    summarize_snapshot,
)

observations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=40,
)


def _observe_all(values, bounds=SECONDS_BUCKETS):
    hist = Histogram(bounds)
    for value in values:
        hist.observe(value)
    return hist


class TestHistogramAlgebra:
    @given(observations, observations, observations)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative_and_order_independent(self, a, b, c):
        left = _observe_all(a)
        left.merge(_observe_all(b))
        left.merge(_observe_all(c))

        inner = _observe_all(b)
        inner.merge(_observe_all(c))
        right = _observe_all(a)
        right.merge(inner)

        reversed_order = _observe_all(c)
        reversed_order.merge(_observe_all(b))
        reversed_order.merge(_observe_all(a))

        combined = _observe_all(a + b + c)
        reference = left.to_dict()
        for other in (right, reversed_order, combined):
            payload = other.to_dict()
            # Float addition is commutative but not associative in the last
            # ulp, so the running total is compared to tolerance; counts,
            # bounds and extrema — everything percentiles derive from — are
            # exact in every merge order.
            total = payload.pop("sum")
            assert math.isclose(total, reference["sum"], rel_tol=1e-9, abs_tol=1e-12)
            assert payload == {k: v for k, v in reference.items() if k != "sum"}

    @given(observations, observations)
    @settings(max_examples=60, deadline=None)
    def test_percentiles_are_merge_order_independent(self, a, b):
        forward = _observe_all(a)
        forward.merge(_observe_all(b))
        backward = _observe_all(b)
        backward.merge(_observe_all(a))
        for fraction in (0.5, 0.95, 0.99):
            assert forward.percentile(fraction) == backward.percentile(fraction)

    @given(observations)
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_clamped_to_observed_range(self, values):
        hist = _observe_all(values)
        if not values:
            assert hist.percentile(0.5) is None
            return
        for fraction in (0.01, 0.5, 0.99):
            p = hist.percentile(fraction)
            assert min(values) <= p <= max(values)

    def test_merge_rejects_different_bounds(self):
        seconds = Histogram(SECONDS_BUCKETS)
        counts = Histogram(COUNT_BUCKETS)
        try:
            seconds.merge(counts)
        except ValueError:
            pass
        else:
            raise AssertionError("merging differing bounds must fail")


class TestCanonicalSerialization:
    @given(observations)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_byte_identical(self, values):
        hist = _observe_all(values)
        payload = hist.to_dict()
        # The dict is pure JSON scalars: canonical encoding round-trips.
        encoded = canonical_json(payload)
        decoded = json.loads(encoded)
        assert Histogram.from_dict(decoded).to_dict() == payload
        assert canonical_json(decoded) == encoded

    def test_no_infinities_in_snapshot(self):
        registry = MetricsRegistry(source="test")
        hist = registry.histogram("h")
        hist.observe(1e12)  # past the last bound: lands in overflow bucket
        encoded = canonical_json(registry.snapshot())
        assert "Infinity" not in encoded and "NaN" not in encoded
        assert sum(hist.counts) == 1 and hist.counts[-1] == 1


class TestSnapshotMerge:
    def _registry(self, source):
        registry = MetricsRegistry(source=source)
        registry.counter("requests").inc(3)
        registry.gauge("live").set(2)
        registry.histogram("latency").observe(0.001)
        return registry

    def test_duplicate_sources_are_deduplicated(self):
        snap = self._registry("shard-0").snapshot()
        merged = merge_snapshots([snap, snap, dict(snap)])
        assert merged["sources"] == ["shard-0"]
        assert merged["counters"]["requests"] == 3
        assert merged["histograms"]["latency"]["count"] == 1

    def test_distinct_sources_sum(self):
        merged = merge_snapshots(
            [self._registry("shard-0").snapshot(), self._registry("shard-1").snapshot()]
        )
        assert merged["sources"] == ["shard-0", "shard-1"]
        assert merged["counters"]["requests"] == 6
        assert merged["gauges"]["live"] == 4
        assert merged["histograms"]["latency"]["count"] == 2

    def test_merge_of_merges_preserves_sources(self):
        first = merge_snapshots([self._registry("a").snapshot()])
        second = merge_snapshots([self._registry("b").snapshot()])
        merged = merge_snapshots([first, second])
        assert merged["sources"] == ["a", "b"]
        assert merged["counters"]["requests"] == 6

    def test_none_entries_are_skipped(self):
        merged = merge_snapshots([None, self._registry("a").snapshot(), None])
        assert merged["counters"]["requests"] == 3

    def test_summarize_attaches_percentiles(self):
        summarized = summarize_snapshot(self._registry("a").snapshot())
        latency = summarized["histograms"]["latency"]
        assert latency["count"] == 1
        for key in ("mean", "p50", "p95", "p99"):
            assert latency[key] == 0.001


class TestRegistry:
    def test_redeclaring_histogram_bounds_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", SECONDS_BUCKETS)
        try:
            registry.histogram("h", COUNT_BUCKETS)
        except ValueError:
            pass
        else:
            raise AssertionError("bound redeclaration must fail")

    def test_extra_counters_fold_into_snapshot(self):
        registry = MetricsRegistry(source="s")
        registry.counter("requests").inc(2)
        snap = registry.snapshot({"requests": 5, "cache.hits": 7})
        assert snap["counters"] == {"cache.hits": 7, "requests": 7}


class TestWindows:
    @given(observations, observations)
    @settings(max_examples=60, deadline=None)
    def test_delta_recovers_the_window(self, before_values, window_values):
        hist = _observe_all(before_values)
        before = hist.to_dict()
        for value in window_values:
            hist.observe(value)
        delta = histogram_delta(hist.to_dict(), before)
        expected = _observe_all(window_values)
        assert delta.counts == expected.counts
        assert delta.count == expected.count

    def test_hit_rate(self):
        assert hit_rate(0, 0) is None
        assert hit_rate(3, 1) == 0.75
