"""Consistent-hash ring properties."""

import pytest

from repro.service.sharding import HashRing


class TestHashRing:
    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_of(f"w{i}") for i in range(50)} == {0}

    def test_mapping_is_deterministic(self):
        a = HashRing(4)
        b = HashRing(4)
        worlds = [f"world-{i}" for i in range(100)]
        assert a.assignment(worlds) == b.assignment(worlds)

    def test_shards_in_range(self):
        ring = HashRing(5)
        for i in range(200):
            assert 0 <= ring.shard_of(f"w{i}") < 5

    def test_every_shard_gets_work_at_scale(self):
        ring = HashRing(4)
        assignment = ring.assignment([f"world-{i:03d}" for i in range(200)])
        counts = [list(assignment.values()).count(shard) for shard in range(4)]
        assert all(count > 0 for count in counts)
        # Virtual nodes keep the split within a loose factor of uniform.
        assert max(counts) <= 4 * (200 // 4)

    def test_growing_the_ring_moves_only_some_worlds(self):
        worlds = [f"world-{i:03d}" for i in range(200)]
        before = HashRing(4).assignment(worlds)
        after = HashRing(5).assignment(worlds)
        moved = [w for w in worlds if before[w] != after[w]]
        # Consistent hashing: an added shard captures roughly 1/5 of the
        # keys; wholesale reshuffling (what modulo hashing would do) is the
        # failure mode this guards against.
        assert 0 < len(moved) < 120
        # Worlds that moved all moved *to* the new shard.
        assert {after[w] for w in moved} == {4}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestHashRingResize:
    """The resize edge cases live migration leans on."""

    WORLDS = [f"world-{i:03d}" for i in range(400)]

    def test_shrinking_to_one_shard_converges_everywhere(self):
        # The terminal shrink: whatever the starting count, every world
        # lands on shard 0 and nothing is orphaned.
        for start in (2, 3, 8):
            before = HashRing(start).assignment(self.WORLDS)
            after = HashRing(1).assignment(self.WORLDS)
            assert set(after.values()) == {0}
            moved = [w for w in self.WORLDS if before[w] != after[w]]
            # Exactly the worlds not already on shard 0 move.
            assert sorted(moved) == sorted(w for w in self.WORLDS if before[w] != 0)

    def test_growing_past_virtual_node_count(self):
        # More shards than replicas-per-shard would naively suggest is
        # fine: every shard still appears on the ring, and with enough
        # keys every shard owns some (sparse rings are lumpy at small
        # sample sizes, so this one samples wide).
        ring = HashRing(24, replicas=8)
        assignment = ring.assignment([f"world-{i:05d}" for i in range(5000)])
        assert set(assignment.values()) == set(range(24))
        for i in range(200):
            assert 0 <= ring.shard_of(f"extra-{i}") < 24

    def test_grow_moves_roughly_one_over_n(self):
        # The consistent-hashing contract: growing n-1 -> n moves about
        # 1/n of the keys (within a 3x band — CRC32 placement is lumpy at
        # this sample size, but nowhere near the (n-1)/n of modulo).
        for n in (3, 5, 9):
            before = HashRing(n - 1).assignment(self.WORLDS)
            after = HashRing(n).assignment(self.WORLDS)
            moved = sum(1 for w in self.WORLDS if before[w] != after[w])
            expected = len(self.WORLDS) / n
            assert expected / 3 <= moved <= expected * 3
            # Nothing shuffles between surviving shards: every move lands
            # on the new shard.
            assert {after[w] for w in self.WORLDS if before[w] != after[w]} == {n - 1}

    def test_shrink_moves_only_the_dying_shards_keys(self):
        before = HashRing(6).assignment(self.WORLDS)
        after = HashRing(5).assignment(self.WORLDS)
        moved = [w for w in self.WORLDS if before[w] != after[w]]
        assert moved and all(before[w] == 5 for w in moved)
