"""Consistent-hash ring properties."""

import pytest

from repro.service.sharding import HashRing


class TestHashRing:
    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_of(f"w{i}") for i in range(50)} == {0}

    def test_mapping_is_deterministic(self):
        a = HashRing(4)
        b = HashRing(4)
        worlds = [f"world-{i}" for i in range(100)]
        assert a.assignment(worlds) == b.assignment(worlds)

    def test_shards_in_range(self):
        ring = HashRing(5)
        for i in range(200):
            assert 0 <= ring.shard_of(f"w{i}") < 5

    def test_every_shard_gets_work_at_scale(self):
        ring = HashRing(4)
        assignment = ring.assignment([f"world-{i:03d}" for i in range(200)])
        counts = [list(assignment.values()).count(shard) for shard in range(4)]
        assert all(count > 0 for count in counts)
        # Virtual nodes keep the split within a loose factor of uniform.
        assert max(counts) <= 4 * (200 // 4)

    def test_growing_the_ring_moves_only_some_worlds(self):
        worlds = [f"world-{i:03d}" for i in range(200)]
        before = HashRing(4).assignment(worlds)
        after = HashRing(5).assignment(worlds)
        moved = [w for w in worlds if before[w] != after[w]]
        # Consistent hashing: an added shard captures roughly 1/5 of the
        # keys; wholesale reshuffling (what modulo hashing would do) is the
        # failure mode this guards against.
        assert 0 < len(moved) < 120
        # Worlds that moved all moved *to* the new shard.
        assert {after[w] for w in moved} == {4}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)
