"""The service-layer determinism battery.

The fleet's contract: the final state of every world is a pure function of
the per-world request subsequence — independent of sharding, batching,
scheduling, and transport.  The hypothesis battery replays randomly
generated request traces serially and through the sharded executor under
adversarially sampled batch schedules and requires byte-identical world
snapshots; a separate test drives the real multiprocessing worker pool.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import protocol
from repro.service.replay import replay_serial, replay_sharded
from repro.service.sharding import HashRing
from repro.service.workers import ProcessShardPool
from repro.sim.randomness import SeededRandom

WORLD_NAMES = ("alpha", "beta", "gamma")


def _world_ops(rng: SeededRandom, world: str, count: int, node_count: int):
    """A deterministic mixed op sequence for one world."""
    requests = [
        {
            "op": protocol.CREATE_WORLD,
            "world": world,
            "params": {
                "scenario": "random-waypoint-drift",
                "nodes": node_count,
                "seed": rng.randrange(1000),
                "mover_fraction": 0.3,
            },
        }
    ]
    for _ in range(count):
        kind = rng.randrange(6)
        if kind == 0:
            requests.append({"op": protocol.ADVANCE, "world": world, "params": {"steps": 1}})
        elif kind == 1:
            node = rng.randrange(node_count)
            requests.append(
                {
                    "op": protocol.APPLY,
                    "world": world,
                    "params": {"moves": [[node, float(rng.randrange(1500)), float(rng.randrange(1500))]]},
                }
            )
        elif kind == 2:
            requests.append(
                {"op": protocol.APPLY, "world": world, "params": {"crashes": [rng.randrange(node_count)]}}
            )
        elif kind == 3:
            requests.append({"op": protocol.QUERY_STATS, "world": world, "params": {}})
        elif kind == 4:
            source, target = rng.sample(range(node_count), 2)
            requests.append(
                {"op": protocol.QUERY_ROUTE, "world": world, "params": {"source": source, "target": target}}
            )
        else:
            requests.append({"op": protocol.SNAPSHOT, "world": world, "params": {}})
    return requests


def _interleave(rng: SeededRandom, per_world):
    """A random arrival order preserving each world's request order."""
    cursors = {world: 0 for world in per_world}
    trace = []
    while True:
        open_worlds = [w for w, c in cursors.items() if c < len(per_world[w])]
        if not open_worlds:
            return trace
        world = rng.choice(open_worlds)
        trace.append(per_world[world][cursors[world]])
        cursors[world] += 1


def build_trace(trace_seed: int, ops_per_world: int, node_count: int = 20):
    rng = SeededRandom(trace_seed)
    per_world = {
        world: _world_ops(rng.child(f"ops:{world}"), world, ops_per_world, node_count)
        for world in WORLD_NAMES
    }
    return _interleave(rng.child("interleave"), per_world)


class TestSerialVsSharded:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        ops_per_world=st.integers(min_value=0, max_value=6),
        shards=st.integers(min_value=1, max_value=4),
        schedule_seed=st.integers(min_value=0, max_value=2**20),
        max_batch=st.integers(min_value=1, max_value=7),
    )
    def test_random_interleavings_replay_byte_identically(
        self, trace_seed, ops_per_world, shards, schedule_seed, max_batch
    ):
        trace = build_trace(trace_seed, ops_per_world)
        serial = replay_serial(trace)
        sharded = replay_sharded(
            trace,
            shards=shards,
            schedule_seed=schedule_seed,
            max_batch=max_batch,
        )
        assert serial == sharded

    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        ops_per_world=st.integers(min_value=1, max_value=5),
    )
    def test_naive_baseline_replays_byte_identically(self, trace_seed, ops_per_world):
        """The caches and the incremental path never change a single byte."""
        trace = build_trace(trace_seed, ops_per_world, node_count=15)
        assert replay_serial(trace) == replay_serial(trace, naive=True)

    def test_two_different_schedules_agree(self):
        trace = build_trace(99, 5)
        a = replay_sharded(trace, shards=3, schedule_seed=1, max_batch=2)
        b = replay_sharded(trace, shards=2, schedule_seed=1234, max_batch=6)
        assert a == b


class TestProcessWorkers:
    def test_real_worker_pool_matches_serial_replay(self):
        """The multiprocessing path: batches crossing real process queues."""
        trace = build_trace(7, 6, node_count=25)
        serial = replay_serial(trace)

        shards = 2
        ring = HashRing(shards)
        pool = ProcessShardPool(shards)
        try:
            queues = [[] for _ in range(shards)]
            for request in trace:
                queues[ring.shard_of(request["world"])].append(request)
            # Ship each shard's queue in small batches, round-robin.
            cursors = [0] * shards
            while any(cursor < len(queue) for cursor, queue in zip(cursors, queues)):
                for shard in range(shards):
                    if cursors[shard] < len(queues[shard]):
                        batch = queues[shard][cursors[shard] : cursors[shard] + 3]
                        cursors[shard] += len(batch)
                        responses = pool.execute(shard, batch)
                        assert len(responses) == len(batch)
            from repro.io.results import results_to_json

            snapshots = {}
            for world in WORLD_NAMES:
                shard = ring.shard_of(world)
                [response] = pool.execute(
                    shard, [{"id": None, "op": protocol.SNAPSHOT, "world": world, "params": {}}]
                )
                assert response["ok"], response
                snapshots[world] = results_to_json(response["result"])
            assert snapshots == serial
        finally:
            pool.close()
