"""The chaos-hardening battery: faults, backpressure, retries, migration.

Four layers, mirroring the robustness design:

* **fault-plan unit tests** — the JSON schema round-trips, bad plans are
  rejected loudly, and the injector's firing decisions are deterministic
  in the plan's seed (the property that lets chaos runs be replayed).
* **TCP chaos tests** — a real inline-shard server with an installed
  fault plan: dropped/delayed/duplicated responses, refused connections,
  killed workers and frozen shards, each absorbed by the retrying client
  with final snapshots byte-identical to the serial replay.
* **admission control** — a saturated shard queue answers ``RETRY_LATER``
  with a backoff hint instead of queueing without bound; shutdown fails
  queued requests with ``SHUTTING_DOWN`` instead of stranding them.
* **live-resize battery** — hypothesis interleaves ring resizes (and
  crashes) into randomly scheduled sharded replays and requires final
  snapshots byte-identical to :func:`replay_serial`; a TCP test does the
  same through the ``resize`` op against a live server.
"""

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import faults as faultlib
from repro.service import protocol
from repro.service.client import (
    DeadlineExceeded,
    RetryingClient,
    ServiceClient,
    ServiceError,
)
from repro.service.faults import FaultInjector, FaultPlan, FaultRule
from repro.service.loadgen import LoadConfig, run_load_async, verify_snapshots
from repro.service.replay import ShardedReplayer, replay_serial
from repro.service.server import FleetServer
from repro.service.storage import MemoryStore

from tests.service.test_determinism import build_trace

def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **kwargs):
    """Start an inline-shard server on a free port, run ``body``, stop."""
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("inline", True)
    server = FleetServer(port=0, **kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


def _retrying(server, *, seed=0, **options) -> RetryingClient:
    options.setdefault("timeout", 5.0)
    options.setdefault("deadline", 30.0)
    return RetryingClient.to_server("127.0.0.1", server.port, seed=seed, **options)


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.from_json(
            json.dumps(
                {
                    "seed": 7,
                    "rules": [
                        {"kind": "kill_worker", "shard": 1, "at_request": 4},
                        {"kind": "freeze_shard", "shard": 0, "every": 10, "duration": 0.05},
                        {"kind": "drop_response", "every": 3, "count": 2},
                        {"kind": "delay_response", "probability": 0.5, "duration": 0.01},
                        {"kind": "refuse_connections", "at_request": 2},
                    ],
                }
            )
        )
        assert plan.seed == 7
        assert len(plan.rules) == 5
        assert FaultPlan.from_json(json.dumps(plan.to_dict())).to_dict() == plan.to_dict()

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 1, "rules": [{"kind": "drop_response", "every": 5}]}')
        plan = FaultPlan.load(str(path))
        assert plan.rules[0].kind == faultlib.DROP_RESPONSE

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"kind": "melt_cpu", "every": 1}, "unknown fault kind"),
            ({"kind": "drop_response"}, "exactly one of"),
            ({"kind": "drop_response", "every": 2, "at_request": 3}, "exactly one of"),
            ({"kind": "kill_worker", "at_request": 1}, "requires a non-negative 'shard'"),
            ({"kind": "drop_response", "shard": 0, "every": 1}, "does not take a 'shard'"),
            ({"kind": "drop_response", "at_request": 0}, "'at_request' must be"),
            ({"kind": "drop_response", "every": 0}, "'every' must be"),
            ({"kind": "drop_response", "probability": 1.5}, "'probability' must be"),
            ({"kind": "drop_response", "every": 1, "count": 0}, "'count' must be"),
            ({"kind": "drop_response", "every": 1, "surprise": 1}, "unknown fault-rule fields"),
        ],
    )
    def test_bad_rules_rejected(self, payload, match):
        with pytest.raises(ValueError, match=match):
            FaultRule.from_dict(payload)

    def test_bad_plans_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_dict({"seed": 0, "rules": [], "extra": 1})
        with pytest.raises(ValueError, match="'seed' must be an integer"):
            FaultPlan.from_dict({"seed": "zero"})
        with pytest.raises(ValueError, match="'rules' must be a list"):
            FaultPlan.from_dict({"rules": {}})


class TestFaultInjector:
    def test_at_request_fires_once(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.KILL_WORKER, shard=0, at_request=3)])
        injector = FaultInjector(plan)
        kills = [injector.on_shard_request(0)[0] for _ in range(6)]
        assert kills == [False, False, True, False, False, False]
        # A different shard's counter never trips a shard-0 rule.
        assert injector.on_shard_request(1) == (False, 0.0)
        assert injector.counters() == {faultlib.KILL_WORKER: 1}

    def test_every_with_count_budget(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.DROP_RESPONSE, every=2, count=2)])
        injector = FaultInjector(plan)
        drops = [injector.on_response().drop for _ in range(8)]
        assert drops == [False, True, False, True, False, False, False, False]

    def test_probabilistic_rules_replay_identically(self):
        def firings():
            plan = FaultPlan(
                seed=99,
                rules=[FaultRule(kind=faultlib.DELAY_RESPONSE, probability=0.3, duration=0.01)],
            )
            injector = FaultInjector(plan)
            return [bool(injector.on_response()) for _ in range(50)]

        first, second = firings(), firings()
        assert first == second
        assert any(first) and not all(first)

    def test_freeze_duration_accumulates(self):
        plan = FaultPlan(
            rules=[FaultRule(kind=faultlib.FREEZE_SHARD, shard=0, every=1, duration=0.25)]
        )
        injector = FaultInjector(plan)
        assert injector.on_shard_request(0) == (False, 0.25)

    def test_connection_refusal(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.REFUSE_CONNECTIONS, every=2)])
        injector = FaultInjector(plan)
        assert [injector.on_connection() for _ in range(4)] == [False, True, False, True]


# --------------------------------------------------------------------- #
# TCP chaos: response faults, connection refusal, worker kills
# --------------------------------------------------------------------- #
def _chaos_load_config(**overrides):
    defaults = dict(
        worlds=4,
        requests_per_world=6,
        nodes=20,
        connections=2,
        seed=5,
        request_timeout=2.0,
        deadline=30.0,
    )
    defaults.update(overrides)
    return LoadConfig(**defaults)


class TestResponseFaults:
    def test_dropped_responses_are_retried_to_byte_identity(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.DROP_RESPONSE, every=9, count=3)])

        async def body(server):
            config = _chaos_load_config()
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert report.retries >= 3
            assert verify_snapshots(config, snapshots) == []
            assert server.metrics.counter("server.faults.responses_dropped").value == 3

        run(_with_server(body, faults=plan))

    def test_duplicated_responses_are_discarded_by_id_matching(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.DUPLICATE_RESPONSE, every=4)])

        async def body(server):
            config = _chaos_load_config(seed=6)
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert verify_snapshots(config, snapshots) == []
            assert server.metrics.counter("server.faults.responses_duplicated").value > 0

        run(_with_server(body, faults=plan))

    def test_delayed_responses_stay_correct(self):
        plan = FaultPlan(
            rules=[FaultRule(kind=faultlib.DELAY_RESPONSE, every=7, duration=0.02)]
        )

        async def body(server):
            config = _chaos_load_config(seed=7)
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert verify_snapshots(config, snapshots) == []
            assert server.metrics.counter("server.faults.responses_delayed").value > 0

        run(_with_server(body, faults=plan))

    def test_refused_connections_are_reconnected(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.REFUSE_CONNECTIONS, at_request=1)])

        async def body(server):
            # The first connection is refused (closed before any response);
            # the retrying client reconnects and completes the call.
            client = _retrying(server)
            try:
                result = await client.call(protocol.PING)
                assert result["pong"] is True
                assert client.reconnects >= 1
            finally:
                await client.close()
            assert server.metrics.counter("server.faults.connections_refused").value == 1

        run(_with_server(body, faults=plan))


class TestWorkerKills:
    def test_durable_inline_worker_kill_is_invisible(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.KILL_WORKER, shard=0, at_request=9)])

        async def body(server):
            config = _chaos_load_config(seed=8)
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert verify_snapshots(config, snapshots) == []
            stats = server.stats()
            assert stats["worker_restarts"] >= 1

        run(_with_server(body, faults=plan, state_dir=str(tmp_path)))

    def test_nondurable_worker_kill_surfaces_errors_not_hangs(self):
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.KILL_WORKER, shard=0, at_request=2)])

        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=10.0)
            try:
                # Find a world hashed to shard 0 so the kill rule triggers.
                world = next(
                    f"w{i}" for i in range(50) if server.ring.shard_of(f"w{i}") == 0
                )
                await client.call(protocol.CREATE_WORLD, world=world, params={"nodes": 10})
                with pytest.raises(ServiceError, match="worker died"):
                    await client.call(protocol.ADVANCE, world=world, params={"steps": 1})
            finally:
                await client.close()

        run(_with_server(body, faults=plan))


# --------------------------------------------------------------------- #
# Admission control & backpressure
# --------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_saturated_shard_sheds_with_retry_hint(self):
        # Freeze every dispatch long enough that pipelined requests pile up
        # behind the 2-deep queue bound and get shed.
        plan = FaultPlan(
            rules=[FaultRule(kind=faultlib.FREEZE_SHARD, shard=0, every=1, duration=0.05)]
        )

        async def body(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                world = next(
                    f"w{i}" for i in range(50) if server.ring.shard_of(f"w{i}") == 0
                )
                total = 16
                for index in range(total):
                    op = protocol.CREATE_WORLD if index == 0 else protocol.QUERY_STATS
                    params = {"nodes": 10} if index == 0 else {}
                    writer.write(
                        protocol.encode_message(
                            {"id": index, "op": op, "world": world, "params": params}
                        )
                    )
                await writer.drain()
                responses = []
                for _ in range(total):
                    line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                    assert line, "server closed mid-stream"
                    responses.append(protocol.decode_message(line))
                shed = [r for r in responses if r.get("code") == protocol.RETRY_LATER]
                served = [r for r in responses if r.get("ok")]
                assert shed, "expected RETRY_LATER responses from the saturated shard"
                assert served, "the queue-admitted requests must still be served"
                for response in shed:
                    assert response["retry_after"] > 0
                    assert "saturated" in response["error"]
                assert server.metrics.counter("server.load_shed").value == len(shed)
            finally:
                writer.close()

        run(_with_server(body, faults=plan, max_pending=2, max_inflight=64))

    def test_retrying_client_absorbs_shedding(self):
        plan = FaultPlan(
            rules=[FaultRule(kind=faultlib.FREEZE_SHARD, shard=0, every=3, duration=0.03)]
        )

        async def body(server):
            config = _chaos_load_config(seed=9, connections=4)
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert verify_snapshots(config, snapshots) == []

        run(_with_server(body, faults=plan, max_pending=2))

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="max_pending"):
            FleetServer(max_pending=0)
        with pytest.raises(ValueError, match="max_inflight"):
            FleetServer(max_inflight=0)

    def test_shutdown_fails_queued_requests_with_structured_error(self):
        # A long freeze parks a batch in the dispatcher while more requests
        # queue behind it; stop() must fail the queued ones immediately with
        # SHUTTING_DOWN rather than strand the connection.
        plan = FaultPlan(
            rules=[FaultRule(kind=faultlib.FREEZE_SHARD, shard=0, every=1, duration=0.3)]
        )

        async def body():
            server = FleetServer(port=0, shards=1, inline=True, faults=plan)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                world = next(
                    f"w{i}" for i in range(50) if server.ring.shard_of(f"w{i}") == 0
                )
                writer.write(
                    protocol.encode_message(
                        {"id": 0, "op": protocol.CREATE_WORLD, "world": world, "params": {"nodes": 10}}
                    )
                )
                await writer.drain()
                # Let the dispatcher pick up the first request and enter its
                # 0.3s freeze, then queue more behind the frozen batch.
                await asyncio.sleep(0.05)
                for index in range(1, 5):
                    writer.write(
                        protocol.encode_message(
                            {"id": index, "op": protocol.QUERY_STATS, "world": world, "params": {}}
                        )
                    )
                await writer.drain()
                await asyncio.sleep(0.05)
                await server.stop()
                responses = []
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                    if not line:
                        break
                    responses.append(protocol.decode_message(line))
                codes = [r.get("code") for r in responses if not r.get("ok")]
                assert protocol.SHUTTING_DOWN in codes
                # Nothing is silently dropped: every request got an answer.
                assert len(responses) == 5
            finally:
                writer.close()

        run(body())

    def test_requests_after_stop_are_refused(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                await client.call(protocol.SHUTDOWN)
                response = await client.request(
                    protocol.CREATE_WORLD, world="w", params={"nodes": 10}
                )
                assert response.get("code") == protocol.SHUTTING_DOWN
            except (ConnectionError, ServiceError):
                pass  # the listener may already be gone — equally acceptable
            finally:
                await client.close()

        run(_with_server(body))

    def test_internal_ops_are_refused_from_the_wire(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                response = await client.request(
                    protocol.MIGRATE_IN, world="w", params={"state": "AAAA"}
                )
                assert not response["ok"]
                assert "internal" in response["error"]
            finally:
                await client.close()

        run(_with_server(body))


# --------------------------------------------------------------------- #
# Deadline-aware retries
# --------------------------------------------------------------------- #
class TestRetryingClient:
    def test_deadline_exhaustion_raises(self):
        async def body(server):
            # Refuse every connection: the client can never complete.
            client = _retrying(server, deadline=0.3, max_attempts=3)
            with pytest.raises(DeadlineExceeded):
                await client.call(protocol.PING)
            await client.close()

        plan = FaultPlan(rules=[FaultRule(kind=faultlib.REFUSE_CONNECTIONS, every=1)])
        run(_with_server(body, faults=plan))

    def test_application_errors_are_not_retried(self):
        async def body(server):
            client = _retrying(server)
            try:
                with pytest.raises(ServiceError, match="unknown world"):
                    await client.call(protocol.QUERY_STATS, world="nope")
                assert client.retries == 0
            finally:
                await client.close()

        run(_with_server(body))

    def test_backoff_schedule_is_deterministic_in_seed(self):
        a = RetryingClient(lambda: None, seed=4)
        b = RetryingClient(lambda: None, seed=4)
        schedule_a = [a._backoff(i, None) for i in range(6)]
        schedule_b = [b._backoff(i, None) for i in range(6)]
        assert schedule_a == schedule_b
        c = RetryingClient(lambda: None, seed=5)
        assert [c._backoff(i, None) for i in range(6)] != schedule_a

    def test_backoff_honours_server_hint_as_floor(self):
        client = RetryingClient(lambda: None, seed=0, backoff_cap=0.2)
        assert client._backoff(0, 1.5) >= 1.5

    def test_tokens_make_write_retries_exactly_once(self):
        # Drop the response to an advance: the client re-issues under the
        # same token and the server answers from the dedup cache instead of
        # advancing twice.
        plan = FaultPlan(rules=[FaultRule(kind=faultlib.DROP_RESPONSE, at_request=2)])

        async def body(server):
            client = _retrying(server, timeout=1.0)
            try:
                await client.call(protocol.CREATE_WORLD, world="w", params={"nodes": 10, "seed": 1})
                await client.call(protocol.ADVANCE, world="w", params={"steps": 1})
                assert client.retries >= 1
                stats = await client.call(protocol.CACHE_STATS, world="w")
                assert stats["writes"] == 1  # not 2: the retry was deduped
            finally:
                await client.close()

        run(_with_server(body, faults=plan))


# --------------------------------------------------------------------- #
# Live resize over TCP
# --------------------------------------------------------------------- #
class TestLiveResize:
    def test_resize_preserves_byte_identity(self):
        async def body(server):
            config = _chaos_load_config(seed=12, worlds=6)
            # Load in two halves with a grow in between, against the same
            # worlds: run the full load, resize, then verify re-snapshots.
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            try:
                result = await client.call(protocol.RESIZE, params={"shards": 5})
                assert result["shards"] == 5
                assert result["moved"] > 0
                assert server.shards == 5
                # Placement matches the new ring for every world.
                listing = await client.call(protocol.LIST_WORLDS)
                for world, shard in listing["worlds"].items():
                    assert shard == server.ring.shard_of(world)
                # Worlds still serve, and serve the same bytes.
                after = {}
                from repro.io.results import results_to_json

                for world in listing["worlds"]:
                    after[world] = results_to_json(
                        await client.call(protocol.SNAPSHOT, world=world)
                    )
                assert after == snapshots
                # Shrink below the original count; still byte-identical.
                result = await client.call(protocol.RESIZE, params={"shards": 1})
                assert result["shards"] == 1
                for world in listing["worlds"]:
                    assert server.ring.shard_of(world) == 0
                    assert (
                        results_to_json(await client.call(protocol.SNAPSHOT, world=world))
                        == snapshots[world]
                    )
            finally:
                await client.close()

        run(_with_server(body, shards=3))

    def test_resize_during_traffic_parks_and_replays(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            worlds = [f"world-{i:02d}" for i in range(8)]
            try:
                for index, world in enumerate(worlds):
                    await client.call(
                        protocol.CREATE_WORLD, world=world, params={"nodes": 15, "seed": index}
                    )

                async def churn():
                    churn_client = await ServiceClient.connect(
                        "127.0.0.1", server.port, timeout=30.0
                    )
                    try:
                        for _ in range(3):
                            for world in worlds:
                                await churn_client.call(
                                    protocol.ADVANCE, world=world, params={"steps": 1}
                                )
                    finally:
                        await churn_client.close()

                churn_task = asyncio.create_task(churn())
                result = await client.call(protocol.RESIZE, params={"shards": 4})
                await churn_task
                assert result["shards"] == 4
                # Every world advanced exactly 3 times despite the migration.
                for world in worlds:
                    stats = await client.call(protocol.CACHE_STATS, world=world)
                    assert stats["writes"] == 3
            finally:
                await client.close()

        run(_with_server(body, shards=2))

    def test_resize_validation(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                for bad in (0, -1, True, "three"):
                    response = await client.request(protocol.RESIZE, params={"shards": bad})
                    assert not response["ok"]
                same = await client.call(protocol.RESIZE, params={"shards": 2})
                assert same == {"shards": 2, "moved": 0, "parked": 0}
            finally:
                await client.close()

        run(_with_server(body, shards=2))

    def test_durable_resize_survives_restart_under_new_shard_count(self, tmp_path):
        """Write state under 3 shards, resize live to 2, restart with 2:
        the healed placement must serve identical bytes.  Then restart with
        a *different* count again — startup healing migrates strays."""

        async def body():
            from repro.io.results import results_to_json

            state_dir = str(tmp_path)
            server = FleetServer(port=0, shards=3, inline=True, state_dir=state_dir)
            await server.start()
            snapshots = {}
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            try:
                for index in range(6):
                    world = f"world-{index:02d}"
                    await client.call(
                        protocol.CREATE_WORLD, world=world, params={"nodes": 15, "seed": index}
                    )
                    await client.call(protocol.ADVANCE, world=world, params={"steps": 2})
                    snapshots[world] = results_to_json(
                        await client.call(protocol.SNAPSHOT, world=world)
                    )
                await client.call(protocol.RESIZE, params={"shards": 2})
            finally:
                await client.close()
                await server.stop()

            # Restart with yet another shard count: worlds live in files
            # 0..1, the ring now spans 4 shards — healing must move them.
            server = FleetServer(port=0, shards=4, inline=True, state_dir=state_dir)
            await server.start()
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            try:
                listing = await client.call(protocol.LIST_WORLDS)
                assert sorted(listing["worlds"]) == sorted(snapshots)
                for world, shard in listing["worlds"].items():
                    assert shard == server.ring.shard_of(world)
                for world, expected in snapshots.items():
                    assert (
                        results_to_json(await client.call(protocol.SNAPSHOT, world=world))
                        == expected
                    )
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_restart_with_fewer_shards_heals_stray_files(self, tmp_path):
        """Shard files beyond the new fleet (a 4-shard directory booted
        with --shards 2) are drained parent-side at startup."""

        async def body():
            from repro.io.results import results_to_json

            state_dir = str(tmp_path)
            server = FleetServer(port=0, shards=4, inline=True, state_dir=state_dir)
            await server.start()
            snapshots = {}
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            try:
                for index in range(8):
                    world = f"world-{index:02d}"
                    await client.call(
                        protocol.CREATE_WORLD, world=world, params={"nodes": 15, "seed": index}
                    )
                    snapshots[world] = results_to_json(
                        await client.call(protocol.SNAPSHOT, world=world)
                    )
            finally:
                await client.close()
                await server.stop()

            server = FleetServer(port=0, shards=2, inline=True, state_dir=state_dir)
            await server.start()
            client = await ServiceClient.connect("127.0.0.1", server.port, timeout=30.0)
            try:
                listing = await client.call(protocol.LIST_WORLDS)
                assert sorted(listing["worlds"]) == sorted(snapshots)
                for world, shard in listing["worlds"].items():
                    assert 0 <= shard < 2
                    assert shard == server.ring.shard_of(world)
                for world, expected in snapshots.items():
                    assert (
                        results_to_json(await client.call(protocol.SNAPSHOT, world=world))
                        == expected
                    )
            finally:
                await client.close()
                await server.stop()

        run(body())


# --------------------------------------------------------------------- #
# The hypothesis chaos battery (in-process)
# --------------------------------------------------------------------- #
class TestChaosBattery:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        ops_per_world=st.integers(min_value=1, max_value=6),
        shards=st.integers(min_value=1, max_value=3),
        schedule_seed=st.integers(min_value=0, max_value=2**20),
        max_batch=st.integers(min_value=1, max_value=5),
        resizes=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),  # trace cut position
                st.integers(min_value=1, max_value=5),  # new shard count
            ),
            min_size=1,
            max_size=3,
        ),
        crash_after_resize=st.booleans(),
        snapshot_every=st.integers(min_value=1, max_value=8),
    )
    def test_resizes_and_crashes_preserve_byte_identity(
        self,
        trace_seed,
        ops_per_world,
        shards,
        schedule_seed,
        max_batch,
        resizes,
        crash_after_resize,
        snapshot_every,
    ):
        """Interleave live resizes (and optional shard crashes) at random
        trace positions under random batch schedules; the final snapshots
        must match the uninterrupted serial execution byte for byte."""
        trace = build_trace(trace_seed, ops_per_world, node_count=15)
        serial = replay_serial(trace)
        replayer = ShardedReplayer(
            shards,
            store_factory=lambda shard: MemoryStore(),
            snapshot_every=snapshot_every,
        )
        try:
            cuts = sorted({min(cut, len(trace)) for cut, _ in resizes})
            new_counts = [count for _, count in resizes]
            previous = 0
            for index, position in enumerate(cuts + [len(trace)]):
                replayer.execute(
                    trace[previous:position],
                    schedule_seed=schedule_seed + index,
                    max_batch=max_batch,
                )
                previous = position
                if index < len(cuts):
                    replayer.resize(new_counts[index % len(new_counts)])
                    if crash_after_resize:
                        for shard in range(len(replayer.hosts)):
                            replayer.crash(shard)
            assert replayer.snapshots() == serial
        finally:
            replayer.close()

    def test_resize_without_store_moves_live_state(self):
        """Migration must not depend on durability: an in-memory-only
        replayer resizes by pickling live worlds across hosts."""
        trace = build_trace(3, 4, node_count=15)
        serial = replay_serial(trace)
        replayer = ShardedReplayer(2)
        try:
            half = len(trace) // 2
            replayer.execute(trace[:half], schedule_seed=1)
            replayer.resize(4)
            replayer.execute(trace[half:], schedule_seed=2)
            replayer.resize(1)
            assert replayer.snapshots() == serial
        finally:
            replayer.close()
