"""Wire-protocol encoding and validation."""

import pytest

from repro.service import protocol


class TestEncoding:
    def test_round_trip(self):
        message = {"id": 3, "op": "query_stats", "world": "w1", "params": {"a": 1}}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_encoding_is_canonical(self):
        a = protocol.encode_message({"b": 1, "a": 2})
        b = protocol.encode_message({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        assert b" " not in a

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError):
            protocol.decode_message(b"[1, 2, 3]\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError):
            protocol.decode_message(b"{nope\n")


class TestResponses:
    def test_ok_response_shape(self):
        response = protocol.ok_response(7, {"x": 1})
        assert response == {"id": 7, "ok": True, "result": {"x": 1}}

    def test_error_response_shape(self):
        response = protocol.error_response(None, "boom")
        assert response == {"id": None, "ok": False, "error": "boom"}


class TestValidation:
    def test_well_formed_world_op(self):
        assert protocol.validate_request({"op": "advance", "world": "w"}) is None

    def test_well_formed_frontend_op(self):
        assert protocol.validate_request({"op": "ping"}) is None

    def test_missing_op(self):
        assert "missing" in protocol.validate_request({"world": "w"})

    def test_unknown_op(self):
        assert "unknown op" in protocol.validate_request({"op": "frobnicate"})

    def test_world_op_requires_world(self):
        problem = protocol.validate_request({"op": "query_stats"})
        assert "requires" in problem

    def test_world_must_be_nonempty_string(self):
        assert protocol.validate_request({"op": "advance", "world": ""}) is not None
        assert protocol.validate_request({"op": "advance", "world": 3}) is not None

    def test_params_must_be_object(self):
        problem = protocol.validate_request({"op": "advance", "world": "w", "params": [1]})
        assert "params" in problem

    def test_op_partition_is_total_and_disjoint(self):
        assert not (protocol.WORLD_OPS & protocol.FRONTEND_OPS)
        assert protocol.READ_OPS <= protocol.WORLD_OPS
