"""World hosting: request execution, snapshot caching, dirty invalidation."""

import pytest

from repro.io.results import results_to_json
from repro.service import protocol
from repro.service.worlds import WorldHost


def _request(op, world="w", **params):
    return {"id": 1, "op": op, "world": world, "params": params}


@pytest.fixture
def host():
    host = WorldHost()
    yield host
    host.close()


def _create(host, world="w", nodes=30, seed=1, **extra):
    params = {"scenario": "random-waypoint-drift", "nodes": nodes, "seed": seed,
              "mover_fraction": 0.2, **extra}
    response = host.execute({"id": 0, "op": protocol.CREATE_WORLD, "world": world,
                             "params": params})
    assert response["ok"], response
    return response["result"]


class TestLifecycle:
    def test_create_reports_population(self, host):
        result = _create(host, nodes=25)
        assert result == {"world": "w", "scenario": "random-waypoint-drift",
                          "seed": 1, "nodes": 25}

    def test_duplicate_create_is_an_error(self, host):
        _create(host)
        response = host.execute(_request(protocol.CREATE_WORLD))
        assert not response["ok"]
        assert "already exists" in response["error"]

    def test_unknown_world_is_an_error(self, host):
        response = host.execute(_request(protocol.QUERY_STATS, world="nope"))
        assert not response["ok"]
        assert "unknown world" in response["error"]

    def test_unknown_scenario_is_an_error(self, host):
        response = host.execute(_request(protocol.CREATE_WORLD, scenario="not-a-scenario"))
        assert not response["ok"]
        assert "unknown scenario" in response["error"]

    def test_distributed_scenario_is_rejected(self, host):
        response = host.execute(_request(protocol.CREATE_WORLD, scenario="lossy-channel-chaos"))
        assert not response["ok"]
        assert "distributed" in response["error"]

    def test_delete_world_frees_the_name(self, host):
        _create(host)
        assert host.execute(_request(protocol.DELETE_WORLD))["ok"]
        assert not host.execute(_request(protocol.QUERY_STATS))["ok"]
        _create(host)  # the name is reusable

    def test_malformed_request_yields_error_response(self, host):
        response = host.execute({"id": 9, "op": "query_stats"})
        assert response == {"id": 9, "ok": False,
                            "error": "op 'query_stats' requires a non-empty 'world'"}


class TestReads:
    def test_stats_shape(self, host):
        _create(host)
        stats = host.execute(_request(protocol.QUERY_STATS))["result"]
        assert stats["alive_nodes"] == 30
        assert stats["edge_count"] > 0
        assert stats["components"] >= 1
        assert isinstance(stats["connectivity_preserved"], bool)

    def test_route_between_connected_nodes(self, host):
        _create(host)
        route = host.execute(_request(protocol.QUERY_ROUTE, source=0, target=5))["result"]
        if route["reachable"]:
            assert route["path"][0] == 0
            assert route["path"][-1] == 5
            assert route["hops"] == len(route["path"]) - 1
            assert route["cost"] > 0
        else:
            assert "path" not in route

    def test_route_to_missing_node_is_unreachable(self, host):
        _create(host)
        route = host.execute(_request(protocol.QUERY_ROUTE, source=0, target=999))["result"]
        assert route["reachable"] is False

    def test_route_requires_integer_endpoints(self, host):
        _create(host)
        response = host.execute(_request(protocol.QUERY_ROUTE, source="a", target=1))
        assert not response["ok"]

    def test_traffic_report_shape(self, host):
        _create(host)
        report = host.execute(_request(protocol.RUN_TRAFFIC, flows=2, packets=2))["result"]
        assert report["world"] == "w"
        assert 0.0 <= report["delivery_ratio"] <= 1.0

    def test_traffic_rejects_bad_spec(self, host):
        _create(host)
        response = host.execute(_request(protocol.RUN_TRAFFIC, flows=-1))
        assert not response["ok"]

    def test_snapshot_is_canonical_and_complete(self, host):
        _create(host, nodes=25)
        snapshot = host.execute(_request(protocol.SNAPSHOT))["result"]
        assert [node["id"] for node in snapshot["nodes"]] == sorted(
            node["id"] for node in snapshot["nodes"]
        )
        assert len(snapshot["nodes"]) == 25
        assert snapshot["topology"]["edges"]
        # Canonical serialization is reproducible byte for byte.
        again = host.execute(_request(protocol.SNAPSHOT))["result"]
        assert results_to_json(snapshot) == results_to_json(again)


class TestWrites:
    def test_advance_counts_writes(self, host):
        _create(host)
        assert host.execute(_request(protocol.ADVANCE, steps=2))["result"]["writes"] == 1
        assert host.execute(_request(protocol.ADVANCE))["result"]["writes"] == 2

    def test_advance_rejects_negative_steps(self, host):
        _create(host)
        assert not host.execute(_request(protocol.ADVANCE, steps=-1))["ok"]

    def test_apply_delta_round_trips_into_snapshot(self, host):
        _create(host, nodes=20)
        result = host.execute(
            _request(
                protocol.APPLY,
                moves=[[0, 10.0, 20.0]],
                joins=[[700.0, 700.0]],
                crashes=[3],
            )
        )["result"]
        assert result["moved"] == 1
        assert result["joined"] == [20]
        assert result["crashed"] == 1
        snapshot = host.execute(_request(protocol.SNAPSHOT))["result"]
        by_id = {node["id"]: node for node in snapshot["nodes"]}
        assert (by_id[0]["x"], by_id[0]["y"]) == (10.0, 20.0)
        assert by_id[20]["alive"] and by_id[20]["x"] == 700.0
        assert not by_id[3]["alive"]
        # Crashed nodes carry no topology edges.
        assert all(3 not in (e["u"], e["v"]) for e in snapshot["topology"]["edges"])

    def test_apply_recover_rejoins(self, host):
        _create(host, nodes=20)
        host.execute(_request(protocol.APPLY, crashes=[4]))
        host.execute(_request(protocol.APPLY, recovers=[4]))
        snapshot = host.execute(_request(protocol.SNAPSHOT))["result"]
        assert {n["id"]: n["alive"] for n in snapshot["nodes"]}[4] is True

    def test_invalid_delta_applies_nothing(self, host):
        _create(host, nodes=20)
        before = host.execute(_request(protocol.SNAPSHOT))["result"]
        response = host.execute(
            _request(protocol.APPLY, moves=[[0, 1.0, 1.0]], crashes=[999])
        )
        assert not response["ok"]
        after = host.execute(_request(protocol.SNAPSHOT))["result"]
        assert results_to_json(before) == results_to_json(after)

    @pytest.mark.parametrize(
        "delta",
        [
            {"moves": [[0, 1.0]]},  # arity-2 move
            {"moves": [[0, 123.0, 456.0], [1, "oops", 9.0]]},  # bad coordinate after a good move
            {"moves": [[0, None, 2.0]]},
            {"joins": [5]},  # join entry is not a pair
            {"crashes": [[1]]},  # unhashable node id
        ],
    )
    def test_malformed_delta_is_an_error_and_atomic(self, host, delta):
        """Shape/type problems anywhere in the delta yield a friendly error
        response and leave the world byte-identical — no partial apply, no
        exception escaping to kill a dispatcher."""
        _create(host, nodes=20)
        before = host.execute(_request(protocol.SNAPSHOT))["result"]
        response = host.execute(_request(protocol.APPLY, **delta))
        assert not response["ok"]
        assert "malformed delta" in response["error"]
        after = host.execute(_request(protocol.SNAPSHOT))["result"]
        assert results_to_json(before) == results_to_json(after)

    def test_unexpected_handler_failure_yields_error_response(self, host):
        """The per-request containment layer: even a non-RequestError must
        come back as an error response, identically on every backend."""
        _create(host)
        response = host.execute(
            _request(protocol.CREATE_WORLD, world="w2", mover_fraction={})
        )
        assert not response["ok"]
        response = host.execute(_request(protocol.ADVANCE, steps=True))
        # bool is an int subclass; either a validation error or a clean
        # success is acceptable — what is not acceptable is an exception.
        assert "ok" in response


class TestSnapshotCache:
    def test_repeated_reads_hit_the_cache(self, host):
        _create(host)
        host.execute(_request(protocol.QUERY_STATS))
        host.execute(_request(protocol.QUERY_STATS))
        host.execute(_request(protocol.QUERY_STATS))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["snapshot_cache_hits"] == 2
        assert stats["snapshot_cache_misses"] == 1

    def test_distinct_params_are_distinct_entries(self, host):
        _create(host)
        host.execute(_request(protocol.QUERY_ROUTE, source=0, target=1))
        host.execute(_request(protocol.QUERY_ROUTE, source=0, target=2))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["snapshot_cache_misses"] == 2
        assert stats["snapshot_cache_hits"] == 0

    def test_geometry_change_invalidates(self, host):
        _create(host)
        host.execute(_request(protocol.QUERY_STATS))
        host.execute(_request(protocol.APPLY, moves=[[0, 5.0, 5.0]]))
        host.execute(_request(protocol.QUERY_STATS))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["snapshot_cache_misses"] == 2
        assert stats["snapshot_cache_hits"] == 0

    def test_no_op_write_keeps_the_cache(self, host):
        """The dirty-listener hook, not the write counter, drives invalidation."""
        _create(host)
        host.execute(_request(protocol.QUERY_STATS))
        host.execute(_request(protocol.ADVANCE, steps=0))  # touches nothing
        host.execute(_request(protocol.QUERY_STATS))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["writes"] == 1
        assert stats["snapshot_cache_hits"] == 1

    def test_cache_is_bounded(self, host, monkeypatch):
        from repro.service import worlds as worlds_module

        monkeypatch.setattr(worlds_module, "SNAPSHOT_CACHE_MAX_ENTRIES", 3)
        _create(host, nodes=20)
        for target in range(1, 6):
            host.execute(_request(protocol.QUERY_ROUTE, source=0, target=target))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["snapshot_cache_entries"] == 3
        # Evicted entries recompute correctly (a miss, not a wrong answer).
        route = host.execute(_request(protocol.QUERY_ROUTE, source=0, target=1))["result"]
        assert route["source"] == 0 and route["target"] == 1

    def test_cached_reads_skip_pipeline_work(self, host):
        _create(host)
        host.execute(_request(protocol.QUERY_STATS))
        builds_before = host.execute(_request(protocol.CACHE_STATS))["result"]["topology_builds"]
        for _ in range(5):
            host.execute(_request(protocol.QUERY_STATS))
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["topology_builds"] == builds_before


class TestNaiveBaseline:
    def test_naive_and_cached_agree_byte_for_byte(self):
        cached = WorldHost()
        naive = WorldHost(naive=True)
        try:
            for host in (cached, naive):
                _create(host, nodes=25, seed=7)
                host.execute(_request(protocol.ADVANCE, steps=1))
                host.execute(_request(protocol.APPLY, crashes=[2]))
            for op, params in [
                (protocol.QUERY_STATS, {}),
                (protocol.QUERY_ROUTE, {"source": 0, "target": 9}),
                (protocol.RUN_TRAFFIC, {"flows": 2, "packets": 2}),
                (protocol.SNAPSHOT, {}),
            ]:
                a = cached.execute({"id": 1, "op": op, "world": "w", "params": params})
                b = naive.execute({"id": 1, "op": op, "world": "w", "params": params})
                assert results_to_json(a) == results_to_json(b), op
        finally:
            cached.close()
            naive.close()

    def test_naive_mode_rebuilds_per_request(self):
        host = WorldHost(naive=True)
        try:
            _create(host)
            for _ in range(3):
                host.execute(_request(protocol.QUERY_STATS))
            stats = host.execute(_request(protocol.CACHE_STATS))["result"]
            assert stats["snapshot_cache_hits"] == 0
            assert stats["snapshot_cache_entries"] == 0
        finally:
            host.close()


class TestIntegerValidation:
    """bool subclasses int, so isinstance checks used to accept true/false
    off the wire — 'steps': true quietly advanced one step."""

    @pytest.mark.parametrize("steps", [True, False, "3", 1.0, None])
    def test_advance_rejects_non_integers(self, host, steps):
        _create(host)
        response = host.execute(_request(protocol.ADVANCE, steps=steps))
        assert not response["ok"]
        assert "non-negative integer" in response["error"]

    @pytest.mark.parametrize("endpoint", [True, False, 1.5, "0"])
    def test_route_rejects_non_integer_endpoints(self, host, endpoint):
        _create(host)
        for params in ({"source": endpoint, "target": 1}, {"source": 0, "target": endpoint}):
            response = host.execute(_request(protocol.QUERY_ROUTE, **params))
            assert not response["ok"]
            assert "node IDs" in response["error"]

    @pytest.mark.parametrize("nodes", [True, 2.0, "10"])
    def test_create_rejects_non_integer_nodes(self, host, nodes):
        response = host.execute(_request(protocol.CREATE_WORLD, nodes=nodes))
        assert not response["ok"]
        assert "positive integer" in response["error"]

    @pytest.mark.parametrize("seed", [True, False, 0.5, "7"])
    def test_create_rejects_non_integer_seed(self, host, seed):
        response = host.execute(_request(protocol.CREATE_WORLD, seed=seed))
        assert not response["ok"]
        assert "'seed' must be an integer" in response["error"]


class TestCacheAliasing:
    def test_mutating_a_cached_response_does_not_corrupt_later_hits(self, host):
        """The snapshot cache used to hand out its stored dictionary: a
        caller mutating a hit corrupted every later hit of the same key."""
        _create(host)
        first = host.execute(_request(protocol.QUERY_STATS))["result"]
        pristine = results_to_json(first)
        first["alive_nodes"] = -999
        first.pop("edge_count")
        second = host.execute(_request(protocol.QUERY_STATS))["result"]
        assert results_to_json(second) == pristine
        # And the first response really was a cache hit's copy, not a rebuild.
        stats = host.execute(_request(protocol.CACHE_STATS))["result"]
        assert stats["snapshot_cache_hits"] >= 1


class TestFailedCreateCleanup:
    def test_failed_prime_unregisters_every_hook(self, monkeypatch):
        """A create_world whose prime raises must leave nothing behind: no
        hosted world, no staged WAL records, no listeners on the network."""
        from repro.core.reconfiguration import ReconfigurationManager
        from repro.scenarios.spec import ScenarioSpec
        from repro.service.storage import MemoryStore

        networks = []
        original_build = ScenarioSpec.build_network

        def capturing_build(self, seed):
            network = original_build(self, seed)
            networks.append(network)
            return network

        monkeypatch.setattr(ScenarioSpec, "build_network", capturing_build)
        original_synchronize = ReconfigurationManager.synchronize

        def failing_synchronize(self, *args, **kwargs):
            raise RuntimeError("mid-prime failure")

        monkeypatch.setattr(ReconfigurationManager, "synchronize", failing_synchronize)
        store = MemoryStore()
        host = WorldHost(store=store)
        response = host.execute(_request(protocol.CREATE_WORLD))
        assert not response["ok"]
        assert "mid-prime failure" in response["error"]
        # No partial state: the world is not hosted, nothing was staged for
        # the WAL, and the doomed network's hooks were all unwound.
        assert host.world_ids() == []
        assert host._staged == []
        assert host._log_seq == {}
        [network] = networks
        assert network._dirty_listeners == []
        # The name is immediately reusable once the failure is gone.
        monkeypatch.setattr(ReconfigurationManager, "synchronize", original_synchronize)
        assert host.execute(_request(protocol.CREATE_WORLD))["ok"]
        host.close()
