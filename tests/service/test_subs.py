"""The subscription & diff-push battery.

The subsystem's contract, enforced at three layers:

* **diff engine unit tests** — ``apply_diff(old, compute_diff(old, new))``
  reconstructs ``new`` byte-identically, including field removals, and
  ``merge_diffs`` composes exactly like sequential application (the
  coalescing path must never invent a third behaviour);
* **live-server hypothesis battery** — random schedules interleaving
  writes, subscribes, disconnect/resume cycles and live resizes against a
  real TCP front end, requiring the diff-reconstructed mirror to be
  byte-identical to a fresh ``snapshot`` fetch at *every* sequence point;
* **lifecycle edges** — ghost-world subscribes, delete-while-subscribed
  (the terminal ``deleted`` frame), double-subscribe idempotency, and
  resume-after-restart from the durable store.

Satellite regressions ride along: the ``protocol_version`` envelope field
round trip and the zero-request ``metrics`` path.
"""

import asyncio
import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.results import canonical_json, results_to_json
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError, SubscribingClient
from repro.service.replay import ShardedReplayer, replay_serial
from repro.service.server import FleetServer
from repro.service.subs.diff import apply_diff, compute_diff, merge_diffs
from repro.service.subs.mirror import SequenceGap, WorldMirror
from repro.sim.randomness import SeededRandom
from tests.service.test_determinism import build_trace


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("inline", True)
    server = FleetServer(port=0, **kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


# --------------------------------------------------------------------- #
# Diff engine
# --------------------------------------------------------------------- #
def _snapshot(rng: SeededRandom, nodes: int = 6) -> dict:
    """A small canonical-form snapshot with randomised content."""
    ids = sorted(rng.sample(range(nodes * 3), nodes))
    return {
        "world": "w",
        "scenario": "random-waypoint-drift",
        "seed": 7,
        "nodes": [
            {
                "id": node,
                "alive": rng.randrange(4) != 0,
                "x": float(rng.randrange(1500)),
                "y": float(rng.randrange(1500)),
            }
            for node in ids
        ],
        "topology": {
            "nodes": [
                {"id": node, "pos": [float(rng.randrange(1500)), float(rng.randrange(1500))]}
                for node in ids
            ],
            "edges": [
                {"u": u, "v": v, "length": float(rng.randrange(500))}
                for u, v in zip(ids, ids[1:])
                if rng.randrange(3) != 0
            ],
        },
    }


class TestDiffEngine:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_apply_reconstructs_byte_identically(self, seed):
        rng = SeededRandom(seed)
        old = _snapshot(rng.child("old"))
        new = _snapshot(rng.child("new"))
        diff = compute_diff(old, new)
        assert canonical_json(apply_diff(old, diff)) == canonical_json(new)
        # Diffing a snapshot against itself is a no-op payload.
        assert compute_diff(new, new) == {}

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_merge_composes_like_sequential_application(self, seed):
        rng = SeededRandom(seed)
        a = _snapshot(rng.child("a"))
        b = _snapshot(rng.child("b"))
        c = _snapshot(rng.child("c"))
        first = compute_diff(a, b)
        second = compute_diff(b, c)
        merged = merge_diffs(first, second)
        assert canonical_json(apply_diff(a, merged)) == canonical_json(c)

    def test_field_removal_is_not_a_null_write(self):
        # Canonical JSON distinguishes an absent key from an explicit null,
        # so the diff must carry removals, not null assignments.
        topology = {"nodes": [], "edges": []}
        old = {"world": "w", "seed": 1, "extra": {"x": 1}, "nodes": [], "topology": topology}
        new = {"world": "w", "seed": 1, "nodes": [], "topology": topology}
        diff = compute_diff(old, new)
        rebuilt = apply_diff(old, diff)
        assert "extra" not in rebuilt
        assert canonical_json(rebuilt) == canonical_json(new)

    def test_apply_does_not_mutate_its_input(self):
        rng = SeededRandom(5)
        old = _snapshot(rng.child("old"))
        new = _snapshot(rng.child("new"))
        frozen = copy.deepcopy(old)
        apply_diff(old, compute_diff(old, new))
        assert old == frozen


class TestWorldMirror:
    def test_duplicate_and_stale_frames_are_ignored(self):
        mirror = WorldMirror("w")
        mirror.seed(3, {"world": "w", "nodes": []})
        frame = protocol.push_frame("w", 3, protocol.FRAME_DIFF, {}, base=2)
        assert mirror.apply(frame) is False
        assert mirror.seq == 3

    def test_gap_raises_sequence_gap(self):
        mirror = WorldMirror("w")
        mirror.seed(3, {"world": "w", "nodes": []})
        frame = protocol.push_frame("w", 7, protocol.FRAME_DIFF, {}, base=6)
        with pytest.raises(SequenceGap):
            mirror.apply(frame)

    def test_terminal_frame_marks_deleted(self):
        mirror = WorldMirror("w")
        mirror.seed(1, {"world": "w", "nodes": []})
        assert mirror.apply(protocol.push_frame("w", 2, protocol.FRAME_DELETED)) is True
        assert mirror.deleted is True
        # Nothing applies after the terminal frame.
        late = protocol.push_frame("w", 3, protocol.FRAME_SNAPSHOT, {"world": "w"})
        assert mirror.apply(late) is False


# --------------------------------------------------------------------- #
# Live-server hypothesis battery
# --------------------------------------------------------------------- #
WORLDS = ("alpha", "beta")


def _schedule(rng: SeededRandom, length: int):
    """A random action schedule: writes, subscribes, drops, resizes."""
    actions = []
    for _ in range(length):
        kind = rng.randrange(10)
        world = rng.choice(WORLDS)
        if kind < 5:
            actions.append(("advance", world))
        elif kind < 7:
            actions.append(("apply", world, rng.randrange(20)))
        elif kind == 7:
            actions.append(("reconnect",))
        elif kind == 8:
            actions.append(("resubscribe", world))
        else:
            actions.append(("resize", rng.choice((1, 2, 3))))
    return actions


async def _verify_mirrors(client, watcher):
    """Every watched mirror is byte-identical to a fresh snapshot fetch.

    The server is quiescent between actions (each write is awaited), so a
    fresh ``snapshot`` fetch observes exactly the state the last pushed
    frame described once the watcher has drained up to the shard cursor.
    """
    for world in WORLDS:
        fresh = await client.call(protocol.SNAPSHOT, world=world)
        target = results_to_json(fresh)
        for _ in range(50):
            mirror = watcher.mirrors[world]
            if mirror.snapshot is not None and results_to_json(mirror.snapshot) == target:
                break
            if watcher.stale:
                await watcher.heal()
            try:
                await watcher.wait_for(world, timeout=0.2)
            except ServiceError:
                continue
        mirror = watcher.mirrors[world]
        assert results_to_json(mirror.snapshot) == target, (
            f"mirror for {world!r} diverged at seq {mirror.seq}"
        )


class TestLiveBattery:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**20),
        length=st.integers(min_value=1, max_value=10),
    )
    def test_mirror_is_byte_identical_at_every_sequence_point(
        self, schedule_seed, length
    ):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                for world in WORLDS:
                    await client.call(
                        protocol.CREATE_WORLD,
                        world=world,
                        params={"nodes": 20, "seed": 3, "mover_fraction": 0.3},
                    )
                    await watcher.subscribe(world)
                rng = SeededRandom(schedule_seed)
                for action in _schedule(rng, length):
                    if action[0] == "advance":
                        await client.call(
                            protocol.ADVANCE, world=action[1], params={"steps": 1}
                        )
                    elif action[0] == "apply":
                        await client.call(
                            protocol.APPLY,
                            world=action[1],
                            params={"crashes": [action[2]]},
                        )
                    elif action[0] == "reconnect":
                        await watcher.resume()
                    elif action[0] == "resubscribe":
                        await watcher.subscribe(action[1])
                    elif action[0] == "resize":
                        await client.call(
                            protocol.RESIZE, params={"shards": action[1]}
                        )
                    # Byte-identity is checked after *every* action, so a
                    # divergence is pinned to the schedule step that caused it.
                    await _verify_mirrors(client, watcher)
            finally:
                await watcher.close()
                await client.close()

        run(_with_server(body))


class TestReplayerMirrors:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        shards=st.integers(min_value=1, max_value=3),
        resize_to=st.integers(min_value=1, max_value=4),
    )
    def test_engine_mirrors_survive_resize(self, trace_seed, shards, resize_to):
        trace = build_trace(trace_seed, 4)
        replayer = ShardedReplayer(shards=shards)
        creates = [r for r in trace if r["op"] == protocol.CREATE_WORLD]
        rest = [r for r in trace if r["op"] != protocol.CREATE_WORLD]
        replayer.execute(creates)
        for request in creates:
            replayer.attach_mirror(request["world"])
        half = len(rest) // 2
        replayer.execute(rest[:half])
        replayer.resize(resize_to)
        replayer.execute(rest[half:])
        replayer.collect_all_frames()
        assert replayer.mirror_snapshots() == replayer.snapshots()

    def test_trace_level_subscribes_replay_byte_identically(self):
        """Subscribe ops in a trace keep serial and sharded replays aligned."""
        trace = build_trace(17, 4)
        with_subs = []
        for request in trace:
            with_subs.append(request)
            if request["op"] == protocol.CREATE_WORLD:
                with_subs.append(
                    {"op": protocol.SUBSCRIBE, "world": request["world"], "params": {}}
                )
        replayer = ShardedReplayer(shards=3)
        replayer.execute(with_subs)
        assert replay_serial(with_subs) == replayer.snapshots()


# --------------------------------------------------------------------- #
# Lifecycle edges
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_subscribe_to_nonexistent_world_is_an_error(self):
        async def body(server):
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                with pytest.raises(ServiceError, match="unknown world"):
                    await watcher.subscribe("ghost")
                # The connection survives, and no phantom mirror lingers
                # in a subscribable state.
                result = await watcher.call(protocol.PING)
                assert result["pong"] is True
                assert watcher.mirrors["ghost"].seq is None
            finally:
                await watcher.close()

        run(_with_server(body))

    def test_delete_while_subscribed_pushes_terminal_frame(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                await client.call(
                    protocol.CREATE_WORLD, world="doomed", params={"nodes": 10}
                )
                await watcher.subscribe("doomed")
                await client.call(protocol.ADVANCE, world="doomed", params={"steps": 1})
                await watcher.wait_for("doomed", seq=1)
                await client.call(protocol.DELETE_WORLD, world="doomed")
                await watcher.wait_for("doomed", deleted=True)
                assert watcher.mirrors["doomed"].deleted is True
            finally:
                await watcher.close()
                await client.close()

        run(_with_server(body))

    def test_double_subscribe_is_idempotent(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                await client.call(protocol.CREATE_WORLD, world="twice", params={"nodes": 10})
                first = await watcher.subscribe("twice")
                await client.call(protocol.ADVANCE, world="twice", params={"steps": 1})
                await watcher.wait_for("twice", seq=1)
                # A second subscribe on the same connection resumes from the
                # mirror's cursor: no resync, no duplicate frames, no gap.
                second = await watcher.subscribe("twice")
                assert second["seq"] == 1
                assert second.get("frames", []) == []
                assert watcher.mirrors["twice"].resyncs == 0
                assert watcher.gaps == 0
                await client.call(protocol.ADVANCE, world="twice", params={"steps": 1})
                await watcher.wait_for("twice", seq=2)
                # Exactly one stream: seq 1 and seq 2, no duplicates applied.
                assert watcher.mirrors["twice"].frames_applied == 2
                assert first["seq"] == 0
            finally:
                await watcher.close()
                await client.close()

        run(_with_server(body))

    def test_unsubscribe_stops_delivery(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                await client.call(protocol.CREATE_WORLD, world="quiet", params={"nodes": 10})
                await watcher.subscribe("quiet")
                assert await watcher.unsubscribe("quiet") is True
                await client.call(protocol.ADVANCE, world="quiet", params={"steps": 1})
                # Give any stray push a beat to arrive, then check silence.
                await asyncio.sleep(0.1)
                assert watcher.frames_received == 0
                assert "quiet" not in watcher.mirrors
            finally:
                await watcher.close()
                await client.close()

        run(_with_server(body))

    def test_resume_after_server_restart_from_durable_store(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def first_life(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                await client.call(
                    protocol.CREATE_WORLD,
                    world="durable",
                    params={"nodes": 15, "seed": 2, "mover_fraction": 0.3},
                )
                await watcher.subscribe("durable")
                await client.call(protocol.ADVANCE, world="durable", params={"steps": 1})
                await watcher.wait_for("durable", seq=1)
                mirror = watcher.mirrors["durable"]
                return mirror.seq, results_to_json(mirror.snapshot)
            finally:
                await watcher.close()
                await client.close()

        async def second_life(server, seq, snapshot_json):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                # Hand-seed the mirror with the pre-restart cursor, as a
                # client that survived the outage would hold it.
                mirror = watcher.mirrors["durable"] = WorldMirror("durable")
                import json

                mirror.seed(seq, json.loads(snapshot_json))
                # One write lands while the old subscriber is away.
                await client.call(protocol.ADVANCE, world="durable", params={"steps": 1})
                result = await watcher.subscribe("durable")
                assert result["seq"] == seq + 1
                # The WAL-replayed ring served the missed diff: no resync.
                assert watcher.mirrors["durable"].resyncs == 0
                fresh = await client.call(protocol.SNAPSHOT, world="durable")
                assert results_to_json(watcher.mirrors["durable"].snapshot) == (
                    results_to_json(fresh)
                )
            finally:
                await watcher.close()
                await client.close()

        seq, snapshot_json = run(_with_server(first_life, state_dir=state_dir))
        run(_with_server(lambda s: second_life(s, seq, snapshot_json), state_dir=state_dir))


# --------------------------------------------------------------------- #
# Satellite regressions
# --------------------------------------------------------------------- #
class TestProtocolVersion:
    def test_envelope_problem_round_trip(self):
        ok = {"id": 1, "op": protocol.PING, "protocol_version": protocol.PROTOCOL_VERSION}
        assert protocol.envelope_problem(ok) is None
        legacy = {"id": 1, "op": protocol.PING, "protocol_version": 1}
        assert protocol.envelope_problem(legacy) is None
        absent = {"id": 1, "op": protocol.PING}
        assert protocol.envelope_problem(absent) is None
        message, code = protocol.envelope_problem(
            {"id": 1, "op": protocol.PING, "protocol_version": 99}
        )
        assert code == protocol.UNSUPPORTED_VERSION
        assert "99" in message
        message, code = protocol.envelope_problem(
            {"id": 1, "op": protocol.PING, "protocol_version": "two"}
        )
        assert code == protocol.UNSUPPORTED_VERSION

    def test_unsupported_version_on_the_wire(self):
        async def body(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                request = {"id": 1, "op": protocol.PING, "protocol_version": 99}
                writer.write(protocol.encode_message(request))
                await writer.drain()
                response = protocol.decode_message(await reader.readline())
                assert response["ok"] is False
                assert response["code"] == protocol.UNSUPPORTED_VERSION
                # The connection survives; a speakable version still works.
                request = {
                    "id": 2,
                    "op": protocol.PING,
                    "protocol_version": protocol.PROTOCOL_VERSION,
                }
                writer.write(protocol.encode_message(request))
                await writer.drain()
                response = protocol.decode_message(await reader.readline())
                assert response["ok"] is True
                assert response["result"]["pong"] is True
            finally:
                writer.close()
                await writer.wait_closed()

        run(_with_server(body))


class TestEmptyRegistries:
    def test_metrics_op_on_zero_request_server(self):
        """A fresh server answers ``metrics`` with zeros, not a crash."""

        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                payload = await client.call(protocol.METRICS)
            finally:
                await client.close()
            merged = payload["merged"]
            assert merged["counters"].get("host.requests", 0) == 0
            assert merged["counters"].get("world.writes", 0) == 0
            assert merged["gauges"]["subs.active"] == 0
            # Zero-count histograms must render as empty summaries, not
            # percentile-of-nothing errors.
            for summary in merged["histograms"].values():
                if summary["count"] == 0:
                    assert summary["p99"] is None
            return payload

        payload = run(_with_server(body))
        # The CLI renderer accepts the empty payload end to end.
        from repro.cli import _render_metrics

        text = _render_metrics(payload)
        assert "subs.active" in text

    def test_metrics_subs_gauges_track_population(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            watcher = await SubscribingClient.connect("127.0.0.1", server.port)
            try:
                await client.call(protocol.CREATE_WORLD, world="g", params={"nodes": 10})
                await watcher.subscribe("g")
                payload = await client.call(protocol.METRICS)
                assert payload["merged"]["gauges"]["subs.active"] == 1
                assert payload["merged"]["counters"]["subs.tracked"] == 1
                await watcher.unsubscribe("g")
                payload = await client.call(protocol.METRICS)
                assert payload["merged"]["gauges"]["subs.active"] == 0
            finally:
                await watcher.close()
                await client.close()

        run(_with_server(body))
