"""Durability battery: write-ahead log, crash recovery, eviction.

Three layers of assurance, mirroring the design's trust chain:

* **store unit tests** — both backends implement the WorldStore contract
  identically (group commit, purge-first semantics, the exactly-once batch
  marker);
* **kill-and-recover battery** — hypothesis interleaves host crashes (the
  abandoned-host model: no flush, only committed state survives) into
  randomly scheduled sharded replays and requires the final snapshots to
  stay byte-identical to :func:`replay_serial`, with and without
  checkpoints, under random checkpoint cadences and eviction bounds;
* **process supervision** — a real SIGKILLed worker: with a durable store
  the dispatcher restarts, recovers and re-dispatches (the client never
  sees the crash); without one it surfaces per-request errors instead of
  hanging forever (the regression that motivated this PR).
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import protocol
from repro.service.replay import ShardedReplayer, replay_serial
from repro.service.sharding import HashRing
from repro.service.storage import (
    Checkpoint,
    MemoryStore,
    SqliteStore,
    StoreConfig,
    scan_world_ids,
    shard_db_path,
)
from repro.service.workers import ProcessShardPool
from repro.service.worlds import WorldHost

from tests.service.test_determinism import WORLD_NAMES, build_trace


# --------------------------------------------------------------------- #
# Store contract
# --------------------------------------------------------------------- #
@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryStore()
    else:
        backend = SqliteStore(str(tmp_path / "shard.sqlite"))
    yield backend
    backend.close()


class TestStoreContract:
    def test_empty_store(self, store):
        assert store.last_batch() == (0, None)
        assert store.world_ids() == []
        assert store.world_counts() == {}
        assert store.latest_checkpoint("w") is None
        assert store.records_after("w", 0) == []

    def test_commit_round_trip(self, store):
        records = [
            ("w", 1, {"kind": "op", "op": "create_world", "params": {"nodes": 5}}),
            ("w", 2, {"kind": "op", "op": "advance", "params": {"steps": 1}}),
            ("w", 3, {"kind": "sync"}),
            ("v", 1, {"kind": "op", "op": "create_world", "params": {}}),
        ]
        responses = [{"id": 1, "ok": True, "result": {"x": 1}}]
        store.commit_batch(1, records, responses, [], [])
        assert store.world_ids() == ["v", "w"]
        assert store.world_counts() == {"v": (1, 1), "w": (3, 2)}
        assert store.last_batch() == (1, responses)
        assert store.records_after("w", 0) == [record for _, _, record in records[:3]]
        assert store.records_after("w", 2) == [{"kind": "sync"}]

    def test_checkpoints(self, store):
        checkpoint = Checkpoint(seq=4, state=b"blob", snapshot_json='{"a": 1}')
        store.commit_batch(1, [], [], [("w", checkpoint)], [])
        loaded = store.latest_checkpoint("w")
        assert (loaded.seq, bytes(loaded.state), loaded.snapshot_json) == (4, b"blob", '{"a": 1}')
        # A checkpoint-only world still shows up with its seq.
        assert store.world_counts() == {"w": (4, 0)}
        # save_checkpoint (the eviction path) replaces it.
        store.save_checkpoint("w", Checkpoint(seq=9, state=b"newer"))
        loaded = store.latest_checkpoint("w")
        assert (loaded.seq, loaded.snapshot_json) == (9, None)

    def test_purges_apply_before_records(self, store):
        store.commit_batch(
            1,
            [("w", 1, {"kind": "op", "op": "create_world", "params": {}})],
            [],
            [("w", Checkpoint(seq=1, state=b"old"))],
            [],
        )
        # Delete-then-recreate in one batch: the purge must erase the old
        # history, the same batch's records must survive it.
        store.commit_batch(
            2,
            [("w", 1, {"kind": "op", "op": "create_world", "params": {"seed": 7}})],
            [],
            [],
            ["w"],
        )
        assert store.records_after("w", 0) == [
            {"kind": "op", "op": "create_world", "params": {"seed": 7}}
        ]
        assert store.latest_checkpoint("w") is None

    def test_last_batch_marker_is_replaced(self, store):
        store.commit_batch(1, [], [{"id": 1, "ok": True, "result": {}}], [], [])
        store.commit_batch(2, [], [{"id": 2, "ok": True, "result": {}}], [], [])
        seq, responses = store.last_batch()
        assert seq == 2
        assert responses == [{"id": 2, "ok": True, "result": {}}]


class TestSqlitePersistence:
    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "shard.sqlite")
        first = SqliteStore(path)
        first.commit_batch(
            3,
            [("w", 1, {"kind": "op", "op": "create_world", "params": {}})],
            [{"id": 0, "ok": True, "result": {}}],
            [("w", Checkpoint(seq=1, state=b"blob"))],
            [],
        )
        first.close()
        second = SqliteStore(path)
        try:
            assert second.last_batch()[0] == 3
            assert second.world_ids() == ["w"]
            assert bytes(second.latest_checkpoint("w").state) == b"blob"
        finally:
            second.close()

    def test_scan_world_ids(self, tmp_path):
        state_dir = str(tmp_path)
        for shard, world in ((0, "alpha"), (2, "gamma")):
            backend = SqliteStore(shard_db_path(state_dir, shard))
            backend.commit_batch(
                1, [(world, 1, {"kind": "op", "op": "create_world", "params": {}})], [], [], []
            )
            backend.close()
        # Shard 1 has no database file; the scan just skips it.
        assert scan_world_ids(state_dir, 3) == {"alpha": 0, "gamma": 2}


class TestStoreConfig:
    def test_sqlite_requires_path(self):
        with pytest.raises(ValueError, match="state directory"):
            StoreConfig(kind="sqlite", path=None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown store kind"):
            StoreConfig(kind="postgres", path="x")

    def test_bounds(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            StoreConfig(kind="memory", snapshot_every=0)
        with pytest.raises(ValueError, match="max_live_worlds"):
            StoreConfig(kind="memory", max_live_worlds=0)

    def test_durability_flag(self):
        assert StoreConfig(kind="sqlite", path="x").durable
        assert not StoreConfig(kind="memory").durable


# --------------------------------------------------------------------- #
# Kill-and-recover battery
# --------------------------------------------------------------------- #
def _replay_with_crashes(
    trace,
    *,
    shards,
    schedule_seed,
    max_batch,
    cuts,
    snapshot_every,
    max_live_worlds,
    use_checkpoints,
    store_factory,
):
    """Sharded replay with every shard crashed-and-recovered at each cut."""
    replayer = ShardedReplayer(
        shards,
        store_factory=store_factory,
        snapshot_every=snapshot_every,
        max_live_worlds=max_live_worlds,
    )
    try:
        positions = sorted(set(min(cut, len(trace)) for cut in cuts))
        previous = 0
        for position in positions + [len(trace)]:
            replayer.execute(
                trace[previous:position], schedule_seed=schedule_seed, max_batch=max_batch
            )
            previous = position
            if position < len(trace):
                for shard in range(shards):
                    replayer.crash(shard, use_checkpoints=use_checkpoints)
        return replayer.snapshots()
    finally:
        replayer.close()


class TestKillAndRecover:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        ops_per_world=st.integers(min_value=1, max_value=6),
        shards=st.integers(min_value=1, max_value=3),
        schedule_seed=st.integers(min_value=0, max_value=2**20),
        max_batch=st.integers(min_value=1, max_value=5),
        cuts=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3),
        snapshot_every=st.integers(min_value=1, max_value=8),
        use_checkpoints=st.booleans(),
    )
    def test_recovered_replay_is_byte_identical(
        self,
        trace_seed,
        ops_per_world,
        shards,
        schedule_seed,
        max_batch,
        cuts,
        snapshot_every,
        use_checkpoints,
    ):
        """Crash every shard at random trace positions; recovery (from a
        random checkpoint cadence, or from the raw log) must reproduce the
        uninterrupted serial execution byte for byte."""
        trace = build_trace(trace_seed, ops_per_world, node_count=15)
        serial = replay_serial(trace)
        recovered = _replay_with_crashes(
            trace,
            shards=shards,
            schedule_seed=schedule_seed,
            max_batch=max_batch,
            cuts=cuts,
            snapshot_every=snapshot_every,
            max_live_worlds=None,
            use_checkpoints=use_checkpoints,
            store_factory=lambda shard: MemoryStore(),
        )
        assert recovered == serial

    @settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**20),
        ops_per_world=st.integers(min_value=1, max_value=5),
        snapshot_every=st.integers(min_value=1, max_value=6),
        max_live_worlds=st.integers(min_value=1, max_value=2),
    )
    def test_eviction_is_transparent(
        self, trace_seed, ops_per_world, snapshot_every, max_live_worlds
    ):
        """A host bounded to fewer live worlds than the trace touches must
        serve the exact bytes an unbounded host serves — eviction and
        rehydration are invisible to clients."""
        trace = build_trace(trace_seed, ops_per_world, node_count=15)
        serial = replay_serial(trace)
        replayer = ShardedReplayer(
            1,
            store_factory=lambda shard: MemoryStore(),
            snapshot_every=snapshot_every,
            max_live_worlds=max_live_worlds,
        )
        try:
            replayer.execute(trace, schedule_seed=trace_seed, max_batch=3)
            host = replayer.hosts[0]
            if len(host.world_ids()) > max_live_worlds:
                assert host.evictions > 0
            assert replayer.snapshots() == serial
        finally:
            replayer.close()

    def test_memory_and_sqlite_recover_identically(self, tmp_path):
        trace = build_trace(11, 5, node_count=15)
        serial = replay_serial(trace)
        kwargs = dict(
            shards=2,
            schedule_seed=5,
            max_batch=3,
            cuts=[4, 9],
            snapshot_every=3,
            max_live_worlds=None,
            use_checkpoints=True,
        )
        from_memory = _replay_with_crashes(
            trace, store_factory=lambda shard: MemoryStore(), **kwargs
        )
        from_sqlite = _replay_with_crashes(
            trace,
            store_factory=lambda shard: SqliteStore(str(tmp_path / f"shard-{shard}.sqlite")),
            **kwargs,
        )
        assert from_memory == serial
        assert from_sqlite == serial

    def test_delete_and_recreate_survive_a_crash(self):
        store = MemoryStore()
        host = WorldHost(store=store)
        create = {"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 10, "seed": 1}}
        host.execute(create)
        host.execute({"op": protocol.ADVANCE, "world": "w", "params": {"steps": 2}})
        # Delete and recreate (different seed) in ONE batch: the purge and
        # the new create commit together.
        recreate = {"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 10, "seed": 2}}
        responses = host.execute_batch(
            [{"op": protocol.DELETE_WORLD, "world": "w", "params": {}}, recreate]
        )
        assert all(response["ok"] for response in responses)
        [snapshot] = host.execute_batch(
            [{"op": protocol.SNAPSHOT, "world": "w", "params": {}}]
        )
        recovered_host = WorldHost(store=store)
        recovered_host.recover()
        [recovered] = recovered_host.execute_batch(
            [{"op": protocol.SNAPSHOT, "world": "w", "params": {}}]
        )
        assert recovered["result"] == snapshot["result"]
        assert recovered["result"]["seed"] == 2

    def test_flush_on_close_makes_recovery_checkpoint_only(self):
        store = MemoryStore()
        host = WorldHost(store=store, snapshot_every=100)
        host.execute({"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 10}})
        host.execute({"op": protocol.ADVANCE, "world": "w", "params": {"steps": 3}})
        host.execute({"op": protocol.QUERY_STATS, "world": "w", "params": {}})
        host.close()  # flushes a checkpoint at the current log position
        checkpoint = store.latest_checkpoint("w")
        assert checkpoint is not None
        assert store.records_after("w", checkpoint.seq) == []

    def test_redispatched_batch_is_not_reexecuted(self):
        host = WorldHost(store=MemoryStore())
        host.execute_batch(
            [{"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 10}}],
            batch_seq=1,
        )
        batch = [{"op": protocol.ADVANCE, "world": "w", "params": {"steps": 1}}]
        first = host.execute_batch(batch, batch_seq=2)
        executed = host.requests_executed
        again = host.execute_batch(batch, batch_seq=2)
        assert again == first
        assert host.requests_executed == executed  # answered from the store
        with pytest.raises(RuntimeError, match="already committed"):
            host.execute_batch(batch, batch_seq=1)

    def test_failed_write_is_not_logged(self):
        store = MemoryStore()
        host = WorldHost(store=store)
        host.execute({"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 10}})
        response = host.execute(
            {"op": protocol.APPLY, "world": "w", "params": {"moves": [[999, 0.0, 0.0]]}}
        )
        assert not response["ok"]
        # Only the create is durable; the rejected apply staged nothing.
        assert [record["kind"] for record in store.records_after("w", 0)] == ["op"]
        recovered_host = WorldHost(store=store)
        assert recovered_host.recover() == 1


# --------------------------------------------------------------------- #
# Process-pool supervision (real SIGKILL)
# --------------------------------------------------------------------- #
class TestProcessPoolSupervision:
    def _bootstrap(self, pool, trace, ring):
        for request in trace:
            [response] = pool.execute(ring.shard_of(request["world"]), [request])
            assert response["ok"], response

    def test_durable_pool_survives_worker_kill(self, tmp_path):
        """SIGKILL a worker, then keep serving: the restarted worker must
        recover from its log and the full run must stay byte-identical to
        an uninterrupted serial execution."""
        trace = build_trace(21, 4, node_count=15)
        serial = replay_serial(trace)
        midpoint = len(trace) // 2
        ring = HashRing(2)
        pool = ProcessShardPool(
            2, store_config=StoreConfig(kind="sqlite", path=str(tmp_path))
        )
        try:
            self._bootstrap(pool, trace[:midpoint], ring)
            for worker in pool._workers:
                worker.kill()
            self._bootstrap(pool, trace[midpoint:], ring)
            # Every shard that received post-kill traffic restarted once.
            assert pool.worker_restarts >= 1
            from repro.io.results import results_to_json

            snapshots = {}
            for world in WORLD_NAMES:
                [response] = pool.execute(
                    ring.shard_of(world),
                    [{"id": None, "op": protocol.SNAPSHOT, "world": world, "params": {}}],
                )
                assert response["ok"], response
                snapshots[world] = results_to_json(response["result"])
            assert snapshots == serial
        finally:
            pool.close()

    def test_nondurable_pool_reports_errors_instead_of_hanging(self):
        """The PR's motivating bug: ``execute`` used to block forever on the
        outbox of a dead worker.  It must return error responses promptly
        and leave the shard serving."""
        pool = ProcessShardPool(1)
        try:
            [response] = pool.execute(
                0, [{"id": 1, "op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 8}}]
            )
            assert response["ok"], response
            pool._workers[0].kill()

            outcome = {}

            def run_batch():
                outcome["responses"] = pool.execute(
                    0, [{"id": 2, "op": protocol.ADVANCE, "world": "w", "params": {}}]
                )

            thread = threading.Thread(target=run_batch, daemon=True)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive(), "dispatcher hung on a dead worker"
            [response] = outcome["responses"]
            assert not response["ok"]
            assert "worker died" in response["error"]
            assert response["id"] == 2
            assert pool.worker_restarts == 1
            # The restarted (empty) worker serves new worlds.
            [response] = pool.execute(
                0, [{"id": 3, "op": protocol.CREATE_WORLD, "world": "w2", "params": {"nodes": 8}}]
            )
            assert response["ok"], response
        finally:
            pool.close()

    def test_mid_batch_kill_recovers_exactly_once(self, tmp_path):
        """Kill the worker *while* a batch executes: the re-dispatched batch
        must apply its writes exactly once."""
        ring = HashRing(1)
        pool = ProcessShardPool(
            1, store_config=StoreConfig(kind="sqlite", path=str(tmp_path))
        )
        try:
            [response] = pool.execute(
                0, [{"op": protocol.CREATE_WORLD, "world": "w", "params": {"nodes": 20, "seed": 3}}]
            )
            assert response["ok"], response
            # A batch slow enough to be killed in flight: many advances.
            batch = [
                {"id": index, "op": protocol.ADVANCE, "world": "w", "params": {"steps": 2}}
                for index in range(30)
            ]
            killer = threading.Timer(0.15, pool._workers[0].kill)
            killer.start()
            try:
                responses = pool.execute(0, batch)
            finally:
                killer.cancel()
            assert all(response["ok"] for response in responses), responses
            # Exactly-once: the final write count equals the trace's writes.
            [stats] = pool.execute(
                0, [{"op": protocol.CACHE_STATS, "world": "w", "params": {}}]
            )
            assert stats["ok"], stats
            assert stats["result"]["writes"] == 30
        finally:
            pool.close()
