"""The ``metrics`` front-end op, end to end over TCP against 4 shards."""

import asyncio

from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import FleetServer


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("inline", True)
    server = FleetServer(port=0, **kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


async def _exercise(client, worlds=4, steps=3):
    for index in range(worlds):
        world = f"m{index}"
        await client.call(
            protocol.CREATE_WORLD,
            world=world,
            params={"nodes": 25, "seed": index, "mover_fraction": 0.2},
        )
        for _ in range(steps):
            await client.call(protocol.ADVANCE, world=world, params={"steps": 1})
            await client.call(protocol.QUERY_STATS, world=world)
        await client.call(protocol.SNAPSHOT, world=world)
        await client.call(protocol.SNAPSHOT, world=world)  # snapshot-cache hit


class TestMetricsOp:
    def test_metrics_merges_all_shards_and_frontend(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                await _exercise(client)
                payload = await client.call(protocol.METRICS)
            finally:
                await client.close()

            assert len(payload["shards"]) == 4
            merged = payload["merged"]
            frontend = payload["frontend"]

            # Per-shard registries really are distinct sources.
            shard_sources = [snap["source"] for snap in payload["shards"]]
            assert len(set(shard_sources)) == 4
            assert sorted(merged["sources"]) == sorted(
                shard_sources + [frontend["source"]]
            )

            counters = merged["counters"]
            # Worlds hash across shards; every world op reached some host.
            assert counters["host.requests"] > 0
            # The metrics op itself is answered at the front end (so it is
            # received but never dispatched), while its four shard_metrics
            # probes are dispatched without being received over the wire.
            assert (
                counters["server.requests"]
                == counters["server.requests_received"] - 1 + 4
            )
            # Internal probes are excluded from the host workload count.
            assert counters["cache.snapshot.hits"] >= 4  # one repeat snapshot per world
            assert counters["topology.full_builds"] >= 4
            assert counters["world.writes"] > 0

            histograms = merged["histograms"]
            for name in (
                "server.batch_size",
                "server.queue_wait_seconds",
                "server.execute_seconds",
                "host.batch_size",
            ):
                summary = histograms[name]
                assert summary["count"] > 0
                for key in ("mean", "p50", "p95", "p99"):
                    assert summary[key] is not None
            assert histograms["topology.dirty_set_size"]["count"] >= 0

            gauges = merged["gauges"]
            assert gauges["host.live_worlds"] == 4
            assert gauges["server.worlds"] == 4
            return payload

        run(_with_server(body))

    def test_metrics_op_is_repeatable_and_monotone(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                await _exercise(client, worlds=2, steps=1)
                first = await client.call(protocol.METRICS)
                await _exercise_more(client)
                second = await client.call(protocol.METRICS)
            finally:
                await client.close()
            assert (
                second["merged"]["counters"]["host.requests"]
                > first["merged"]["counters"]["host.requests"]
            )

        async def _exercise_more(client):
            await client.call(protocol.ADVANCE, world="m0", params={"steps": 1})
            await client.call(protocol.QUERY_STATS, world="m0")

        run(_with_server(body))

    def test_shard_metrics_requires_no_real_world(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                snap = await client.call(
                    protocol.SHARD_METRICS, world="@shard:probe"
                )
                assert "counters" in snap and "histograms" in snap
            finally:
                await client.close()

        run(_with_server(body))
