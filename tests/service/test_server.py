"""The asyncio front end, driven over real TCP connections."""

import asyncio

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import LoadConfig, run_load_async, verify_snapshots
from repro.service.server import FleetServer


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **kwargs):
    """Start an inline-shard server on a free port, run ``body``, stop."""
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("inline", True)
    server = FleetServer(port=0, **kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


class TestFrontend:
    def test_ping(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                result = await client.call(protocol.PING)
                assert result == {"pong": True, "shards": 2}
            finally:
                await client.close()

        run(_with_server(body))

    def test_world_round_trip_and_listing(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                created = await client.call(
                    protocol.CREATE_WORLD,
                    world="w1",
                    params={"nodes": 25, "seed": 2, "mover_fraction": 0.2},
                )
                assert created["nodes"] == 25
                stats = await client.call(protocol.QUERY_STATS, world="w1")
                assert stats["alive_nodes"] == 25
                await client.call(protocol.ADVANCE, world="w1", params={"steps": 1})
                listing = await client.call(protocol.LIST_WORLDS)
                assert list(listing["worlds"]) == ["w1"]
                await client.call(protocol.DELETE_WORLD, world="w1")
                listing = await client.call(protocol.LIST_WORLDS)
                assert listing["worlds"] == {}
            finally:
                await client.close()

        run(_with_server(body))

    def test_error_responses_are_not_fatal(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                with pytest.raises(ServiceError, match="unknown world"):
                    await client.call(protocol.QUERY_STATS, world="ghost")
                # The connection survives an error response.
                assert (await client.call(protocol.PING))["pong"] is True
            finally:
                await client.close()

        run(_with_server(body))

    def test_malformed_line_yields_error_response(self):
        async def body(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = protocol.decode_message(await reader.readline())
                assert response["ok"] is False
                assert "malformed" in response["error"]
            finally:
                writer.close()
                await writer.wait_closed()

        run(_with_server(body))

    def test_server_stats_counts_requests_and_batches(self):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                await client.call(protocol.CREATE_WORLD, world="w1", params={"nodes": 20})
                for _ in range(3):
                    await client.call(protocol.QUERY_STATS, world="w1")
                stats = await client.call(protocol.SERVER_STATS)
                assert stats["worlds"] == 1
                assert stats["requests"] >= 5
                assert stats["batches"] >= 4
                assert sum(stats["shard_requests"]) == 4
            finally:
                await client.close()

        run(_with_server(body))

    def test_shutdown_is_acknowledged_then_honoured(self):
        async def body():
            server = FleetServer(port=0, shards=2, inline=True)
            await server.start()
            waiter = asyncio.create_task(server.serve_until_shutdown())
            client = await ServiceClient.connect("127.0.0.1", server.port)
            result = await client.call(protocol.SHUTDOWN)
            assert result == {"stopping": True}
            await client.close()
            await asyncio.wait_for(waiter, timeout=10)

        run(body())


class TestLoadAgainstServer:
    def test_load_run_verifies_against_serial_replay(self):
        async def body(server):
            config = LoadConfig(
                worlds=4, requests_per_world=5, nodes=25, connections=3, seed=11
            )
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            # Creation is the untimed setup phase; the workload phase covers
            # the per-world requests plus the closing snapshot.
            assert report.setup_requests == 4
            assert report.requests == 4 * (5 + 1)
            assert verify_snapshots(config, snapshots) == []
            assert report.server_stats["worlds"] == 4
            return report

        report = run(_with_server(body))
        assert report.requests_per_second > 0

    def test_load_run_with_subscribers_converges_byte_identically(self):
        async def body(server):
            config = LoadConfig(
                worlds=4,
                requests_per_world=6,
                nodes=25,
                connections=3,
                seed=13,
                subscribers=3,
            )
            report, snapshots = await run_load_async("127.0.0.1", server.port, config)
            assert report.errors == 0
            assert report.subscribers == 3
            assert report.frames_pushed > 0
            # Every watched mirror settled byte-identical to the served
            # final snapshot, and the subscribe ops kept the serial
            # reference aligned with the live run.
            assert report.mirrors_verified == 3
            assert verify_snapshots(config, snapshots) == []
            assert "subscribers: 3 worlds watched" in report.as_text()

        run(_with_server(body))

    def test_second_load_against_the_same_server_fails_fast(self):
        """Leftover worlds from a previous run must yield a clear error,
        not a phantom 'snapshots diverged' verification failure."""
        from repro.service.client import ServiceError

        async def body(server):
            config = LoadConfig(worlds=2, requests_per_world=2, nodes=20, connections=1)
            await run_load_async("127.0.0.1", server.port, config)
            with pytest.raises(ServiceError, match="previous run"):
                await run_load_async("127.0.0.1", server.port, config)

        run(_with_server(body))

    def test_tampered_snapshot_fails_verification(self):
        async def body(server):
            config = LoadConfig(
                worlds=2, requests_per_world=3, nodes=20, connections=2, seed=3
            )
            _, snapshots = await run_load_async("127.0.0.1", server.port, config)
            snapshots["world-000"] = snapshots["world-000"].replace('"alive": true', '"alive": false', 1)
            assert "world-000" in verify_snapshots(config, snapshots)
            del snapshots["world-001"]
            assert verify_snapshots(config, snapshots) == ["world-000", "world-001"]

        run(_with_server(body))


class TestDurableServer:
    def test_state_dir_survives_a_server_restart(self, tmp_path):
        """Stop a --state-dir server, start a fresh one on the directory:
        the worlds, their placement, and their exact bytes all come back."""
        state_dir = str(tmp_path / "state")

        async def first_life(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                await client.call(
                    protocol.CREATE_WORLD,
                    world="w1",
                    params={"nodes": 20, "seed": 3, "mover_fraction": 0.2},
                )
                await client.call(protocol.ADVANCE, world="w1", params={"steps": 2})
                return await client.call(protocol.SNAPSHOT, world="w1")
            finally:
                await client.close()

        async def second_life(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                listing = await client.call(protocol.LIST_WORLDS)
                assert list(listing["worlds"]) == ["w1"]
                stats = await client.call(protocol.SERVER_STATS)
                assert stats["durable"] is True
                assert stats["recovered_worlds"] == 1
                return await client.call(protocol.SNAPSHOT, world="w1")
            finally:
                await client.close()

        before = run(_with_server(first_life, state_dir=state_dir))
        after = run(_with_server(second_life, state_dir=state_dir))
        from repro.io.results import results_to_json

        assert results_to_json(after) == results_to_json(before)

    def test_max_live_worlds_requires_state_dir(self):
        with pytest.raises(ValueError, match="state-dir"):
            FleetServer(max_live_worlds=1)

    def test_bounded_server_serves_evicted_worlds(self, tmp_path):
        async def body(server):
            client = await ServiceClient.connect("127.0.0.1", server.port)
            try:
                snapshots = {}
                for name in ("a1", "a2", "a3"):
                    await client.call(
                        protocol.CREATE_WORLD, world=name, params={"nodes": 15, "seed": 1}
                    )
                    await client.call(protocol.ADVANCE, world=name, params={"steps": 1})
                    snapshots[name] = await client.call(protocol.SNAPSHOT, world=name)
                # Revisit in creation order: the cold ones rehydrate.
                from repro.io.results import results_to_json

                for name, expected in snapshots.items():
                    again = await client.call(protocol.SNAPSHOT, world=name)
                    assert results_to_json(again) == results_to_json(expected)
            finally:
                await client.close()

        run(
            _with_server(
                body, shards=1, state_dir=str(tmp_path / "state"), max_live_worlds=1
            )
        )
