"""Load-generator trace determinism and report mechanics."""

import pytest

from repro.service import protocol
from repro.service.loadgen import (
    LoadConfig,
    _percentile,
    build_trace,
    build_world_trace,
    flatten_trace,
    serial_reference,
    world_name,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(worlds=0)
        with pytest.raises(ValueError):
            LoadConfig(write_fraction=1.5)
        with pytest.raises(ValueError):
            LoadConfig(connections=0)
        with pytest.raises(ValueError, match="at least 2 nodes"):
            LoadConfig(nodes=1)

    def test_node_count_falls_back_to_the_catalogue(self):
        assert LoadConfig(nodes=None).node_count == 100  # random-waypoint-drift
        assert LoadConfig(nodes=33).node_count == 33

    def test_subscriber_validation(self):
        with pytest.raises(ValueError, match="subscribers"):
            LoadConfig(worlds=2, subscribers=-1)
        with pytest.raises(ValueError, match="subscribers"):
            LoadConfig(worlds=2, subscribers=3)
        assert LoadConfig(worlds=2, subscribers=2).subscribers == 2


class TestTrace:
    def test_trace_is_deterministic(self):
        config = LoadConfig(worlds=3, requests_per_world=8, seed=5)
        assert build_trace(config) == build_trace(config)

    def test_world_traces_are_order_independent(self):
        """Adding worlds never changes the existing worlds' traces."""
        small = LoadConfig(worlds=2, requests_per_world=6, seed=9)
        large = LoadConfig(worlds=5, requests_per_world=6, seed=9)
        for index in range(2):
            assert build_world_trace(small, index) == build_world_trace(large, index)

    def test_trace_shape(self):
        config = LoadConfig(worlds=2, requests_per_world=4, seed=1)
        for index, trace in enumerate(build_trace(config)):
            assert trace[0]["op"] == protocol.CREATE_WORLD
            assert trace[-1]["op"] == protocol.SNAPSHOT
            assert len(trace) == 4 + 2
            assert {request["world"] for request in trace} == {world_name(index)}

    def test_write_fraction_extremes(self):
        writes_only = LoadConfig(worlds=1, requests_per_world=10, write_fraction=1.0)
        [trace] = build_trace(writes_only)
        assert all(r["op"] == protocol.ADVANCE for r in trace[1:-1])
        reads_only = LoadConfig(worlds=1, requests_per_world=10, write_fraction=0.0)
        [trace] = build_trace(reads_only)
        assert all(r["op"] != protocol.ADVANCE for r in trace[1:-1])

    def test_subscribed_worlds_lead_with_a_subscribe_op(self):
        """The subscribe rides the trace right after the create — the same
        position live and in the serial reference, so tracking perturbs
        neither schedule."""
        config = LoadConfig(worlds=3, requests_per_world=4, seed=1, subscribers=2)
        traces = build_trace(config)
        for index, trace in enumerate(traces):
            assert trace[0]["op"] == protocol.CREATE_WORLD
            if index < 2:
                assert trace[1]["op"] == protocol.SUBSCRIBE
            else:
                assert trace[1]["op"] != protocol.SUBSCRIBE

    def test_flatten_preserves_per_world_order(self):
        config = LoadConfig(worlds=3, requests_per_world=5, seed=2)
        traces = build_trace(config)
        flat = flatten_trace(traces)
        assert len(flat) == sum(len(trace) for trace in traces)
        for trace in traces:
            world = trace[0]["world"]
            assert [r for r in flat if r["world"] == world] == trace


class TestSerialReference:
    def test_reference_covers_every_world(self):
        config = LoadConfig(worlds=2, requests_per_world=3, nodes=20, seed=4)
        reference = serial_reference(config)
        assert sorted(reference) == [world_name(0), world_name(1)]
        for payload in reference.values():
            assert '"topology"' in payload


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.95) == 0.0

    def test_matches_the_traffic_report_definition(self):
        """One percentile semantics repo-wide (rounded rank, see
        repro.traffic.metrics.percentile): p95 latency means the same thing
        in a TrafficReport and a LoadReport."""
        from repro.traffic.metrics import percentile

        values = [float(v) for v in range(100, 0, -1)]  # unsorted on purpose
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert _percentile(values, fraction) == percentile(sorted(values), fraction)
        assert _percentile(values, 0.95) == 95.0
        assert _percentile(values, 1.0) == 100.0

    def test_single_value(self):
        assert _percentile([7.0], 0.99) == 7.0
