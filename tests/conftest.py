"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Point
from repro.net.network import Network
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio import PathLossModel, PowerModel

ALPHA_FIVE_SIXTHS = 5.0 * math.pi / 6.0
ALPHA_TWO_THIRDS = 2.0 * math.pi / 3.0


@pytest.fixture
def unit_power_model() -> PowerModel:
    """A power model with maximum range 1 and quadratic path loss."""
    return PowerModel(propagation=PathLossModel(exponent=2.0), max_range=1.0)


@pytest.fixture
def square_network(unit_power_model: PowerModel) -> Network:
    """Four nodes on a unit square with R = 1 (sides in range, diagonals out)."""
    return Network.from_points(
        [Point(0.0, 0.0), Point(1.0, 0.0), Point(1.0, 1.0), Point(0.0, 1.0)],
        power_model=unit_power_model,
    )


@pytest.fixture
def line_network(unit_power_model: PowerModel) -> Network:
    """Five nodes on a line, each 0.8 apart, so only consecutive pairs are in range."""
    return Network.from_points(
        [Point(0.8 * i, 0.0) for i in range(5)],
        power_model=unit_power_model,
    )


@pytest.fixture
def small_random_network() -> Network:
    """A 30-node random network on the paper's workload geometry (seeded)."""
    return random_uniform_placement(PlacementConfig(node_count=30), seed=7)


@pytest.fixture
def medium_random_network() -> Network:
    """A 60-node random network on the paper's workload geometry (seeded)."""
    return random_uniform_placement(PlacementConfig(node_count=60), seed=11)
