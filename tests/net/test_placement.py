"""Tests for repro.net.placement."""

import pytest

from repro.net.placement import (
    PAPER_CONFIG,
    PlacementConfig,
    clustered_placement,
    grid_placement,
    paper_workload,
    paper_workload_suite,
    positions_from_network,
    random_uniform_placement,
)


class TestPlacementConfig:
    def test_paper_config_matches_section5(self):
        assert PAPER_CONFIG.width == 1500.0
        assert PAPER_CONFIG.height == 1500.0
        assert PAPER_CONFIG.node_count == 100
        assert PAPER_CONFIG.max_range == 500.0

    def test_power_model_from_config(self):
        model = PAPER_CONFIG.power_model()
        assert model.max_range == 500.0
        assert model.max_power == pytest.approx(500.0**2)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PlacementConfig(width=0)
        with pytest.raises(ValueError):
            PlacementConfig(node_count=0)
        with pytest.raises(ValueError):
            PlacementConfig(max_range=0)


class TestRandomUniform:
    def test_node_count_and_bounds(self):
        network = random_uniform_placement(PlacementConfig(node_count=50), seed=3)
        assert len(network) == 50
        min_x, min_y, max_x, max_y = network.bounding_box()
        assert min_x >= 0 and min_y >= 0
        assert max_x <= 1500 and max_y <= 1500

    def test_seed_reproducibility(self):
        a = random_uniform_placement(seed=9)
        b = random_uniform_placement(seed=9)
        assert positions_from_network(a) == positions_from_network(b)

    def test_different_seeds_differ(self):
        a = random_uniform_placement(seed=1)
        b = random_uniform_placement(seed=2)
        assert positions_from_network(a) != positions_from_network(b)

    def test_paper_workload_is_paper_config(self):
        network = paper_workload(seed=0)
        assert len(network) == 100
        assert network.power_model.max_range == 500.0

    def test_paper_workload_suite_size_and_independence(self):
        suite = paper_workload_suite(count=3, base_seed=5)
        assert len(suite) == 3
        assert positions_from_network(suite[0]) != positions_from_network(suite[1])


class TestGridPlacement:
    def test_grid_node_count(self):
        network = grid_placement(PlacementConfig(node_count=30), seed=0)
        assert len(network) == 30

    def test_grid_without_jitter_is_deterministic(self):
        a = grid_placement(PlacementConfig(node_count=16))
        b = grid_placement(PlacementConfig(node_count=16))
        assert positions_from_network(a) == positions_from_network(b)

    def test_grid_positions_within_region(self):
        network = grid_placement(PlacementConfig(node_count=25, width=100, height=200), jitter=30, seed=1)
        for node in network.nodes:
            assert 0 <= node.position.x <= 100
            assert 0 <= node.position.y <= 200


class TestClusteredPlacement:
    def test_cluster_count_validation(self):
        with pytest.raises(ValueError):
            clustered_placement(cluster_count=0)

    def test_clustered_positions_within_region(self):
        network = clustered_placement(PlacementConfig(node_count=40), cluster_count=3, seed=2)
        assert len(network) == 40
        for node in network.nodes:
            assert 0 <= node.position.x <= 1500
            assert 0 <= node.position.y <= 1500

    def test_clustered_is_denser_than_uniform(self):
        # Clustered placements should have a higher average degree in G_R than
        # uniform ones of the same size, since nodes pile into a few hot spots.
        config = PlacementConfig(node_count=60)
        clustered = clustered_placement(config, cluster_count=2, cluster_radius=150, seed=4)
        uniform = random_uniform_placement(config, seed=4)
        clustered_degree = 2 * clustered.max_power_graph().number_of_edges() / 60
        uniform_degree = 2 * uniform.max_power_graph().number_of_edges() / 60
        assert clustered_degree > uniform_degree
