"""Tests for repro.net.mobility."""

import pytest

from repro.net.mobility import (
    ConvoyModel,
    PartitionModel,
    RandomWalkModel,
    RandomWaypointModel,
    StationaryModel,
)
from repro.net.placement import PlacementConfig, random_uniform_placement


@pytest.fixture
def network():
    return random_uniform_placement(PlacementConfig(node_count=20), seed=0)


def _positions(network):
    return [node.position.as_tuple() for node in network.nodes]


class TestStationaryModel:
    def test_no_movement(self, network):
        before = _positions(network)
        StationaryModel().step(network)
        assert _positions(network) == before


class TestRandomWalkModel:
    def test_moves_nodes_within_bounds(self, network):
        model = RandomWalkModel(max_step=50, seed=1)
        before = _positions(network)
        for _ in range(10):
            model.step(network)
        after = _positions(network)
        assert after != before
        for x, y in after:
            assert 0 <= x <= 1500
            assert 0 <= y <= 1500

    def test_step_size_bounded(self, network):
        model = RandomWalkModel(max_step=10, seed=2)
        before = _positions(network)
        model.step(network, dt=1.0)
        after = _positions(network)
        for (x0, y0), (x1, y1) in zip(before, after):
            assert ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5 <= 10 + 1e-9

    def test_dead_nodes_do_not_move(self, network):
        network.node(0).crash()
        before = network.node(0).position
        RandomWalkModel(max_step=100, seed=3).step(network)
        assert network.node(0).position == before

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkModel(max_step=-1)

    def test_seed_reproducibility(self, network):
        clone = network.copy()
        RandomWalkModel(max_step=30, seed=7).step(network)
        RandomWalkModel(max_step=30, seed=7).step(clone)
        assert _positions(network) == _positions(clone)


class TestRandomWaypointModel:
    def test_moves_toward_destination_at_bounded_speed(self, network):
        model = RandomWaypointModel(min_speed=5, max_speed=10, seed=4)
        before = _positions(network)
        model.step(network, dt=1.0)
        after = _positions(network)
        for (x0, y0), (x1, y1) in zip(before, after):
            step = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
            assert step <= 10 + 1e-9

    def test_eventually_reaches_and_repicks_destinations(self, network):
        model = RandomWaypointModel(min_speed=200, max_speed=400, seed=5)
        for _ in range(50):
            model.step(network, dt=1.0)
        for x, y in _positions(network):
            assert 0 <= x <= 1500
            assert 0 <= y <= 1500

    def test_invalid_speeds_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(min_speed=10, max_speed=5)

    def test_dead_nodes_do_not_move(self, network):
        network.node(3).crash()
        before = network.node(3).position
        RandomWaypointModel(seed=6).step(network)
        assert network.node(3).position == before


class TestPartitionModel:
    def test_halves_separate_then_heal(self, network):
        model = PartitionModel(separation_speed=60.0, period=20)
        homes = _positions(network)
        for _ in range(10):
            model.step(network)
        midline = 750.0
        for (hx, _), node in zip(homes, network.nodes):
            if hx < midline:
                assert node.position.x <= hx + 1e-9
            else:
                assert node.position.x >= hx - 1e-9
        for _ in range(10):
            model.step(network)
        for (hx, hy), node in zip(homes, network.nodes):
            assert node.position.x == pytest.approx(hx, abs=1e-6)
            assert node.position.y == pytest.approx(hy, abs=1e-6)

    def test_positions_stay_in_region(self, network):
        model = PartitionModel(separation_speed=500.0, period=6)
        for _ in range(6):
            model.step(network)
        for x, y in _positions(network):
            assert 0 <= x <= 1500
            assert 0 <= y <= 1500

    def test_deterministic_without_seed(self):
        a = random_uniform_placement(PlacementConfig(node_count=20), seed=0)
        b = random_uniform_placement(PlacementConfig(node_count=20), seed=0)
        model_a = PartitionModel(separation_speed=60.0, period=8)
        model_b = PartitionModel(separation_speed=60.0, period=8)
        for _ in range(8):
            model_a.step(a)
            model_b.step(b)
        assert _positions(a) == _positions(b)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PartitionModel(separation_speed=-1.0)
        with pytest.raises(ValueError):
            PartitionModel(period=1)


class TestConvoyModel:
    def test_population_advances_together(self):
        from repro.net.network import Network

        network = Network.from_positions([(100.0, 200.0), (300.0, 250.0), (500.0, 150.0)])
        model = ConvoyModel(speed=50.0, jitter=0.0, seed=1)
        before = _positions(network)
        model.step(network)
        after = _positions(network)
        for (x0, _), (x1, _) in zip(before, after):
            assert x1 == pytest.approx(x0 + 50.0)

    def test_bounces_at_corridor_ends(self, network):
        model = ConvoyModel(speed=400.0, jitter=0.0, seed=2)
        for _ in range(30):
            model.step(network)
        for x, y in _positions(network):
            assert 0 <= x <= 1500
            assert 0 <= y <= 1500

    def test_seed_reproducibility(self):
        a = random_uniform_placement(PlacementConfig(node_count=15), seed=3)
        b = random_uniform_placement(PlacementConfig(node_count=15), seed=3)
        model_a = ConvoyModel(speed=40.0, jitter=10.0, seed=9)
        model_b = ConvoyModel(speed=40.0, jitter=10.0, seed=9)
        for _ in range(10):
            model_a.step(a)
            model_b.step(b)
        assert _positions(a) == _positions(b)

    def test_dead_nodes_do_not_move(self, network):
        network.node(5).crash()
        before = network.node(5).position
        ConvoyModel(seed=4).step(network)
        assert network.node(5).position == before

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConvoyModel(speed=-1.0)
        with pytest.raises(ValueError):
            ConvoyModel(jitter=-0.5)
