"""Tests for repro.net.energy."""

import pytest

from repro.net.energy import EnergyAccount, EnergyLedger


class TestEnergyAccount:
    def test_charge_accumulates(self):
        account = EnergyAccount()
        account.charge(5.0)
        account.charge(2.5)
        assert account.consumed == pytest.approx(7.5)
        assert account.transmissions == 2

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge(-1.0)

    def test_remaining_and_exhausted(self):
        account = EnergyAccount(capacity=10.0)
        account.charge(4.0)
        assert account.remaining == pytest.approx(6.0)
        assert not account.exhausted
        account.charge(7.0)
        assert account.exhausted

    def test_infinite_capacity_never_exhausts(self):
        account = EnergyAccount()
        account.charge(1e12)
        assert not account.exhausted


class TestEnergyLedger:
    def test_charging_and_totals(self):
        ledger = EnergyLedger([0, 1, 2])
        ledger.charge_transmission(0, power=10.0)
        ledger.charge_transmission(0, power=5.0, duration=2.0)
        ledger.charge_transmission(1, power=3.0)
        assert ledger.consumed_by(0) == pytest.approx(20.0)
        assert ledger.consumed_by(1) == pytest.approx(3.0)
        assert ledger.consumed_by(2) == 0.0
        assert ledger.total_consumed() == pytest.approx(23.0)
        assert ledger.total_transmissions() == 3
        assert ledger.max_consumed() == pytest.approx(20.0)

    def test_unknown_node_account_created_on_demand(self):
        ledger = EnergyLedger([0])
        ledger.charge_transmission(42, power=1.0)
        assert ledger.consumed_by(42) == pytest.approx(1.0)

    def test_exhausted_nodes(self):
        ledger = EnergyLedger([0, 1], capacity=5.0)
        ledger.charge_transmission(0, power=6.0)
        assert list(ledger.exhausted_nodes()) == [0]

    def test_snapshot(self):
        ledger = EnergyLedger([0, 1])
        ledger.charge_transmission(1, power=2.0)
        assert ledger.snapshot() == {0: 0.0, 1: 2.0}

    def test_empty_ledger_max_consumed(self):
        assert EnergyLedger([]).max_consumed() == 0.0
