"""Tests for repro.net.node."""

import math

import pytest

from repro.geometry import Point
from repro.net.node import Node


class TestNode:
    def test_distance_and_direction(self):
        a = Node(node_id=0, position=Point(0, 0))
        b = Node(node_id=1, position=Point(3, 4))
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)
        assert a.direction_to(b) == pytest.approx(math.atan2(4, 3))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=-1, position=Point(0, 0))

    def test_move_to(self):
        node = Node(node_id=0, position=Point(0, 0))
        node.move_to(Point(5, 5))
        assert node.position == Point(5, 5)

    def test_crash_and_recover(self):
        node = Node(node_id=3, position=Point(1, 1))
        assert node.alive
        node.crash()
        assert not node.alive
        node.recover()
        assert node.alive

    def test_equality_and_hash_by_id(self):
        a = Node(node_id=7, position=Point(0, 0))
        b = Node(node_id=7, position=Point(9, 9))
        c = Node(node_id=8, position=Point(0, 0))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert a != "not a node"


class TestNoOpMoves:
    """Satellite: a move to the identical position must not notify watchers."""

    def test_move_to_same_position_skips_watchers(self):
        node = Node(node_id=1, position=Point(3.0, 4.0))
        seen = []
        node.watch(seen.append)
        node.move_to(Point(3.0, 4.0))
        assert seen == []
        node.move_to(Point(3.0, 5.0))
        assert seen == [node]

    def test_real_move_still_notifies_every_watcher(self):
        node = Node(node_id=1, position=Point(0.0, 0.0))
        first, second = [], []
        node.watch(first.append)
        node.watch(second.append)
        node.move_to(Point(1.0, 0.0))
        node.move_to(Point(1.0, 0.0))  # repeat: no second notification
        assert len(first) == 1 and len(second) == 1
