"""Tests for repro.net.failures."""

import pytest

from repro.net.failures import CrashFailureModel, NoFailures
from repro.net.placement import PlacementConfig, random_uniform_placement


@pytest.fixture
def network():
    return random_uniform_placement(PlacementConfig(node_count=30), seed=0)


class TestNoFailures:
    def test_nothing_happens(self, network):
        assert NoFailures().step(network) == []
        assert all(node.alive for node in network.nodes)


class TestCrashFailureModel:
    def test_zero_probability_never_crashes(self, network):
        model = CrashFailureModel(crash_probability=0.0, seed=1)
        for _ in range(10):
            assert model.step(network) == []
        assert all(node.alive for node in network.nodes)

    def test_certain_crash(self, network):
        model = CrashFailureModel(crash_probability=1.0, seed=1)
        changed = model.step(network)
        assert len(changed) == 30
        assert all(not node.alive for node in network.nodes)

    def test_recovery(self, network):
        model = CrashFailureModel(crash_probability=1.0, recovery_probability=1.0, seed=2)
        model.step(network)
        assert all(not node.alive for node in network.nodes)
        model.step(network)
        assert all(node.alive for node in network.nodes)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            CrashFailureModel(crash_probability=1.5)
        with pytest.raises(ValueError):
            CrashFailureModel(recovery_probability=-0.1)

    def test_seed_reproducibility(self, network):
        clone = network.copy()
        a = CrashFailureModel(crash_probability=0.3, seed=9)
        b = CrashFailureModel(crash_probability=0.3, seed=9)
        assert a.step(network) == b.step(clone)
