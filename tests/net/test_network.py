"""Tests for repro.net.network."""

import math

import pytest

from repro.geometry import Point
from repro.net.network import Network
from repro.net.node import Node
from repro.radio import PathLossModel, PowerModel


class TestConstruction:
    def test_from_positions_assigns_sequential_ids(self):
        network = Network.from_positions([(0, 0), (1, 0), (2, 0)])
        assert network.node_ids == [0, 1, 2]
        assert network.node(1).position == Point(1.0, 0.0)

    def test_duplicate_ids_rejected(self):
        nodes = [Node(0, Point(0, 0)), Node(0, Point(1, 1))]
        with pytest.raises(ValueError):
            Network(nodes)

    def test_add_and_remove_node(self, square_network):
        new_node = Node(node_id=10, position=Point(0.5, 0.5))
        square_network.add_node(new_node)
        assert 10 in square_network
        removed = square_network.remove_node(10)
        assert removed is new_node
        assert 10 not in square_network

    def test_add_duplicate_node_rejected(self, square_network):
        with pytest.raises(ValueError):
            square_network.add_node(Node(node_id=0, position=Point(9, 9)))

    def test_default_power_model(self):
        network = Network.from_positions([(0, 0)])
        assert network.power_model.max_range == pytest.approx(500.0)

    def test_copy_is_deep_for_positions_and_liveness(self, square_network):
        clone = square_network.copy()
        clone.node(0).move_to(Point(9, 9))
        clone.node(1).crash()
        assert square_network.node(0).position == Point(0, 0)
        assert square_network.node(1).alive


class TestPhysicalQueries:
    def test_distance_and_direction(self, square_network):
        assert square_network.distance(0, 1) == pytest.approx(1.0)
        assert square_network.distance(0, 2) == pytest.approx(math.sqrt(2))
        assert square_network.direction(0, 3) == pytest.approx(math.pi / 2)

    def test_required_power(self, square_network):
        assert square_network.required_power(0, 1) == pytest.approx(1.0)
        assert square_network.required_power(0, 2) == pytest.approx(2.0)

    def test_receivers_of_broadcast_respects_power(self, square_network):
        # Power 1.0 reaches the two adjacent corners but not the diagonal one.
        receivers = square_network.receivers_of_broadcast(0, 1.0)
        assert sorted(receivers) == [1, 3]
        # Even with more power the diagonal neighbour stays unreachable: it is
        # sqrt(2) away, beyond the maximum range R = 1 of the radio.
        receivers_all = square_network.receivers_of_broadcast(0, 2.0)
        assert sorted(receivers_all) == [1, 3]
        assert 0.9 < square_network.power_model.max_range < 1.5

    def test_receivers_of_broadcast_excludes_dead_nodes(self, square_network):
        square_network.node(1).crash()
        receivers = square_network.receivers_of_broadcast(0, 2.0)
        assert 1 not in receivers
        receivers_including_dead = square_network.receivers_of_broadcast(0, 2.0, include_dead=True)
        assert 1 in receivers_including_dead

    def test_neighbors_within(self, line_network):
        assert line_network.neighbors_within(2, 0.9) == [1, 3]
        assert line_network.neighbors_within(0, 2.0) == [1, 2]


class TestMaxPowerGraph:
    def test_square_network_graph(self, square_network):
        graph = square_network.max_power_graph()
        assert graph.number_of_nodes() == 4
        # Only the four sides are within range 1; the diagonals are sqrt(2) away.
        assert graph.number_of_edges() == 4
        assert not graph.has_edge(0, 2)
        assert graph.edges[0, 1]["length"] == pytest.approx(1.0)

    def test_line_network_graph_is_a_path(self, line_network):
        graph = line_network.max_power_graph()
        assert graph.number_of_edges() == 4
        degrees = sorted(dict(graph.degree).values())
        assert degrees == [1, 1, 2, 2, 2]

    def test_dead_nodes_excluded(self, square_network):
        square_network.node(2).crash()
        graph = square_network.max_power_graph()
        assert 2 not in graph
        assert graph.number_of_nodes() == 3

    def test_positions_attached(self, square_network):
        graph = square_network.max_power_graph()
        assert graph.nodes[3]["pos"] == (0.0, 1.0)

    def test_custom_power_model_range(self):
        power_model = PowerModel(propagation=PathLossModel(), max_range=2.0)
        network = Network.from_positions([(0, 0), (1.5, 0), (3.5, 0)], power_model=power_model)
        graph = network.max_power_graph()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)


class TestGeometryHelpers:
    def test_bounding_box(self, square_network):
        assert square_network.bounding_box() == (0.0, 0.0, 1.0, 1.0)

    def test_bounding_box_empty_network_raises(self):
        with pytest.raises(ValueError):
            Network([]).bounding_box()

    def test_positions_mapping(self, square_network):
        positions = square_network.positions()
        assert positions[2] == (1.0, 1.0)
        assert len(positions) == 4


class TestDirtyTracking:
    """Dirty listeners and delta-patched caches (the incremental substrate)."""

    def _network(self):
        return Network.from_positions([(0, 0), (100, 0), (200, 0), (0, 150)])

    def test_listener_collects_every_kind_of_change(self):
        network = self._network()
        dirty = network.register_dirty_listener()
        network.node(0).move_to(Point(5.0, 5.0))
        network.node(1).crash()
        network.node(1).recover()
        network.add_node(Node(node_id=9, position=Point(50.0, 50.0)))
        network.remove_node(9)
        assert dirty == {0, 1, 9}
        dirty.clear()
        network.node(2).move_to(Point(210.0, 0.0))
        assert dirty == {2}
        network.unregister_dirty_listener(dirty)
        network.node(3).move_to(Point(0.0, 160.0))
        assert dirty == {2}

    def test_noop_move_invalidates_nothing(self):
        network = self._network()
        dirty = network.register_dirty_listener()
        index = network.spatial_index()
        cache = network.derived_cache
        cache["probe"] = "value"
        network.node(0).move_to(Point(0.0, 0.0))  # unchanged position
        assert dirty == set()
        assert network.spatial_index() is index
        assert cache.get("probe") == "value"

    def test_real_move_patches_index_and_dirties_cache(self):
        network = self._network()
        index = network.spatial_index()
        cache = network.derived_cache
        cache["probe"] = "value"
        network.node(0).move_to(Point(500.0, 500.0))
        # The index object is patched in place, not discarded...
        assert network.spatial_index() is index
        # ...and answers exactly as a freshly built one would.
        fresh = Network.from_positions(
            [(500, 500), (100, 0), (200, 0), (0, 150)]
        ).spatial_index()
        assert index.neighbors_within(Point(500, 500), 250.0) == fresh.neighbors_within(
            Point(500, 500), 250.0
        )
        # Plain get() treats the dirty entry as a miss (legacy semantics)...
        assert cache.get("probe") is None
        # ...while self-patching consumers can read the value plus its dirty set.
        value, dirty = cache.entry("probe")
        assert value == "value" and dirty == {0}

    def test_crash_and_recover_patch_index_membership(self):
        network = self._network()
        index = network.spatial_index()
        network.node(2).crash()
        assert 2 not in index
        network.node(2).recover()
        assert 2 in index
        assert network.spatial_index() is index

    def test_cbtc_candidate_cache_patches_to_fresh_values(self):
        import math
        from repro.core.cbtc import _all_sorted_candidates

        side = 1500.0 * math.sqrt(2.0)
        from repro.net.placement import PlacementConfig, random_uniform_placement

        network = random_uniform_placement(
            PlacementConfig(node_count=200, width=side, height=side), seed=4
        )
        before = _all_sorted_candidates(network)
        assert _all_sorted_candidates(network) is before  # clean cache hit
        network.node(7).move_to(Point(side / 2, side / 2))
        network.node(11).crash()
        patched = _all_sorted_candidates(network)
        fresh = random_uniform_placement(
            PlacementConfig(node_count=200, width=side, height=side), seed=4
        )
        fresh.node(7).move_to(Point(side / 2, side / 2))
        fresh.node(11).crash()
        rebuilt = _all_sorted_candidates(fresh)
        assert set(patched) == set(rebuilt)
        for node_id, items in rebuilt.items():
            assert [
                (required, other.node_id, dist) for required, other, dist in patched[node_id]
            ] == [(required, other.node_id, dist) for required, other, dist in items]
