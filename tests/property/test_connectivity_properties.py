"""Property-based tests of the paper's theorems on random geometric instances.

These are the executable counterparts of Theorems 2.1, 3.1, 3.2 and 3.6: for
arbitrary node placements (drawn by hypothesis) and arbitrary alpha at or
below the relevant thresholds, the controlled graphs must preserve the
connectivity of the maximum-power graph.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import preserves_connectivity
from repro.core.cbtc import run_cbtc
from repro.core.optimizations import pairwise_edge_removal, shrink_back
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.core.topology import (
    symmetric_closure_graph,
    symmetric_subset_graph,
)
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel

ALPHA_MAX = 5 * math.pi / 6
ALPHA_ASYM = 2 * math.pi / 3

# Node placements are drawn on a 0.1-spaced grid inside a 4 x 4 region.  The
# grid guarantees a minimum pairwise distance, which keeps the instances out
# of the floating-point degenerate regime (nearly coincident nodes) where the
# strict-inequality arguments of the paper's proofs lose meaning numerically.
_grid_points = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40)),
    min_size=2,
    max_size=16,
    unique=True,
)
node_sets = _grid_points.map(lambda pts: [(0.1 * x, 0.1 * y) for x, y in pts])
alphas_connectivity = st.floats(min_value=math.pi / 3, max_value=ALPHA_MAX)
alphas_asymmetric = st.floats(min_value=math.pi / 3, max_value=ALPHA_ASYM)

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _network(points) -> Network:
    power_model = PowerModel(propagation=PathLossModel(), max_range=1.0)
    return Network.from_positions(list(points), power_model=power_model)


class TestTheorem21:
    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_symmetric_closure_preserves_connectivity(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        controlled = symmetric_closure_graph(outcome, network)
        assert preserves_connectivity(network.max_power_graph(), controlled)

    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_controlled_graph_is_subgraph_of_gr(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        controlled = symmetric_closure_graph(outcome, network)
        reference = network.max_power_graph()
        for u, v in controlled.edges:
            assert reference.has_edge(u, v)

    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_every_node_has_no_gap_or_max_power(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        for state in outcome:
            assert (not state.has_gap()) or state.used_max_power


class TestOptimizationTheorems:
    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_theorem_3_1_shrink_back(self, points, alpha):
        network = _network(points)
        outcome = shrink_back(run_cbtc(network, alpha))
        controlled = symmetric_closure_graph(outcome, network)
        assert preserves_connectivity(network.max_power_graph(), controlled)

    @RELAXED
    @given(node_sets, alphas_asymmetric)
    def test_theorem_3_2_asymmetric_removal(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        controlled = symmetric_subset_graph(outcome, network)
        assert preserves_connectivity(network.max_power_graph(), controlled)

    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_theorem_3_6_pairwise_removal(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        closure = symmetric_closure_graph(outcome, network)
        pruned = pairwise_edge_removal(closure, network, remove_all=True)
        assert preserves_connectivity(network.max_power_graph(), pruned)

    @RELAXED
    @given(node_sets, alphas_asymmetric)
    def test_all_optimizations_composed(self, points, alpha):
        network = _network(points)
        result = build_topology(network, alpha, config=OptimizationConfig.all())
        assert preserves_connectivity(network.max_power_graph(), result.graph)


class TestStructuralInvariants:
    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_shrink_back_is_idempotent(self, points, alpha):
        network = _network(points)
        once = shrink_back(run_cbtc(network, alpha))
        twice = shrink_back(once)
        for node_id in once.node_ids():
            assert set(once.state(node_id).neighbor_ids) == set(twice.state(node_id).neighbor_ids)

    @RELAXED
    @given(node_sets, alphas_connectivity)
    def test_final_power_bounded_by_maximum(self, points, alpha):
        network = _network(points)
        outcome = run_cbtc(network, alpha)
        for state in outcome:
            assert 0.0 <= state.final_power <= network.power_model.max_power + 1e-9

    @RELAXED
    @given(node_sets)
    def test_larger_alpha_never_needs_more_power(self, points):
        network = _network(points)
        narrow = run_cbtc(network, ALPHA_ASYM)
        wide = run_cbtc(network, ALPHA_MAX)
        for node_id in wide.node_ids():
            assert wide.state(node_id).final_power <= narrow.state(node_id).final_power + 1e-9
