"""Property-based tests for the geometry substrate (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.angles import (
    TWO_PI,
    angle_difference,
    angular_gaps,
    covers_full_circle,
    has_gap_greater_than,
    max_angular_gap,
    normalize_angle,
)
from repro.geometry.cones import Cone
from repro.geometry.points import Point, distance, rotate_about, translate_polar
from repro.geometry.primitives import triangle_angles

finite_angles = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
coordinates = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coordinates, coordinates)
direction_lists = st.lists(finite_angles, min_size=0, max_size=24)


class TestAngleProperties:
    @given(finite_angles)
    def test_normalize_range(self, angle):
        normalized = normalize_angle(angle)
        assert 0.0 <= normalized < TWO_PI

    @given(finite_angles, finite_angles)
    def test_angle_difference_symmetry_and_bounds(self, a, b):
        diff = angle_difference(a, b)
        assert 0.0 <= diff <= math.pi + 1e-9
        assert diff == angle_difference(b, a)

    @given(finite_angles)
    def test_angle_difference_with_itself_is_zero(self, a):
        assert angle_difference(a, a) <= 1e-9

    @given(direction_lists)
    def test_gaps_sum_to_full_circle(self, directions):
        gaps = angular_gaps(directions)
        assert sum(gaps) == pytest_approx(TWO_PI)

    @given(direction_lists, st.floats(min_value=0.01, max_value=TWO_PI))
    def test_gap_test_consistent_with_cover_test(self, directions, alpha):
        assert covers_full_circle(directions, alpha) == (not has_gap_greater_than(directions, alpha))

    @given(direction_lists, finite_angles)
    def test_max_gap_invariant_under_rotation(self, directions, offset):
        rotated = [d + offset for d in directions]
        assert abs(max_angular_gap(directions) - max_angular_gap(rotated)) < 1e-6

    @given(direction_lists, finite_angles)
    def test_adding_a_direction_never_increases_the_max_gap(self, directions, extra):
        assert max_angular_gap(directions + [extra]) <= max_angular_gap(directions) + 1e-9


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry_and_nonnegativity(self, a, b):
        assert distance(a, b) == pytest_approx(distance(b, a))
        assert distance(a, b) >= 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    @given(points, finite_angles, st.floats(min_value=0.0, max_value=1e4))
    def test_translate_polar_distance(self, origin, angle, radius):
        target = translate_polar(origin, angle, radius)
        assert distance(origin, target) == pytest_approx(radius, abs_tolerance=1e-6 * (1 + radius))

    @given(points, points, finite_angles)
    def test_rotation_preserves_distances(self, point, center, angle):
        rotated = rotate_about(point, center, angle)
        assert distance(center, rotated) == pytest_approx(
            distance(center, point), abs_tolerance=1e-6 * (1 + distance(center, point))
        )

    @given(points, points, points)
    def test_triangle_angles_sum(self, a, b, c):
        if distance(a, b) < 1e-6 or distance(b, c) < 1e-6 or distance(a, c) < 1e-6:
            return
        assert sum(triangle_angles(a, b, c)) == pytest_approx(math.pi, abs_tolerance=1e-4)


class TestConeProperties:
    @given(points, finite_angles, st.floats(min_value=0.0, max_value=TWO_PI), points)
    @settings(max_examples=200)
    def test_cone_membership_matches_angle_difference(self, apex, bisector, alpha, target):
        if distance(apex, target) < 1e-9:
            return
        cone = Cone(apex=apex, bisector=bisector, angle=alpha)
        inside = cone.contains(target)
        expected = angle_difference(apex.angle_to(target), bisector) <= alpha / 2.0 + 1e-12
        assert inside == expected


def pytest_approx(value, abs_tolerance=1e-9):
    """A tiny local stand-in for pytest.approx usable inside hypothesis bodies."""
    import pytest

    return pytest.approx(value, abs=abs_tolerance)
