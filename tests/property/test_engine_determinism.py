"""Determinism battery for the simulation engine and stochastic models.

The scenario engine and the parallel experiment runner both rest on one
invariant: *everything* stochastic replays identically from its seed.  These
tests pin that invariant for the discrete-event engine under lossy and
duplicating channels (identical seeds produce identical
``MessageTrace``s and protocol outcomes) and for the mobility/failure
models (identical seeds replay identical position/liveness histories).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import run_distributed_cbtc
from repro.net.failures import CrashFailureModel
from repro.net.mobility import ConvoyModel, RandomWalkModel, RandomWaypointModel
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.sim.channel import DuplicatingChannel, LossyChannel
from repro.sim.randomness import SeededRandom, derive_seed

ALPHA = 5.0 * math.pi / 6.0
SMALL_CONFIG = PlacementConfig(node_count=12)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _run_once(network_seed: int, channel):
    network = random_uniform_placement(SMALL_CONFIG, seed=network_seed)
    result = run_distributed_cbtc(network, ALPHA, channel=channel)
    neighbor_sets = {
        node_id: frozenset(state.neighbor_ids) for node_id, state in result.outcome.states.items()
    }
    return result.engine.trace.records, neighbor_sets


class TestEngineDeterminism:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_lossy_channel_replays_identically(self, seed):
        channel_seed = derive_seed(seed, "lossy")
        first_trace, first_outcome = _run_once(
            seed, LossyChannel(loss_probability=0.2, seed=channel_seed)
        )
        second_trace, second_outcome = _run_once(
            seed, LossyChannel(loss_probability=0.2, seed=channel_seed)
        )
        assert first_trace == second_trace
        assert first_outcome == second_outcome

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_duplicating_channel_replays_identically(self, seed):
        channel_seed = derive_seed(seed, "dup")
        first_trace, first_outcome = _run_once(
            seed, DuplicatingChannel(duplicate_probability=0.3, seed=channel_seed)
        )
        second_trace, second_outcome = _run_once(
            seed, DuplicatingChannel(duplicate_probability=0.3, seed=channel_seed)
        )
        assert first_trace == second_trace
        assert first_outcome == second_outcome

    def test_different_channel_seeds_change_the_execution(self):
        # Fixed seeds chosen so the loss pattern actually differs; this guards
        # against a channel that silently ignores its seed.
        first_trace, _ = _run_once(0, LossyChannel(loss_probability=0.4, seed=1))
        second_trace, _ = _run_once(0, LossyChannel(loss_probability=0.4, seed=2))
        assert first_trace != second_trace

    def test_trace_records_are_time_ordered(self):
        trace, _ = _run_once(3, LossyChannel(loss_probability=0.1, seed=9))
        times = [record.time for record in trace]
        assert times == sorted(times)


def _position_history(model_factory, *, steps=8, network_seed=0):
    network = random_uniform_placement(SMALL_CONFIG, seed=network_seed)
    model = model_factory()
    history = []
    for _ in range(steps):
        model.step(network)
        history.append(tuple(node.position.as_tuple() for node in network.nodes))
    return history


class TestModelDeterminism:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_random_walk_replays_identically(self, seed):
        assert _position_history(lambda: RandomWalkModel(seed=seed)) == _position_history(
            lambda: RandomWalkModel(seed=seed)
        )

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_random_waypoint_replays_identically(self, seed):
        assert _position_history(lambda: RandomWaypointModel(seed=seed)) == _position_history(
            lambda: RandomWaypointModel(seed=seed)
        )

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_convoy_replays_identically(self, seed):
        assert _position_history(lambda: ConvoyModel(seed=seed)) == _position_history(
            lambda: ConvoyModel(seed=seed)
        )

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_crash_failures_replay_identically(self, seed):
        def crash_history(model_seed):
            network = random_uniform_placement(SMALL_CONFIG, seed=0)
            model = CrashFailureModel(
                crash_probability=0.3, recovery_probability=0.2, seed=model_seed
            )
            return [tuple(model.step(network)) for _ in range(10)]

        assert crash_history(seed) == crash_history(seed)


class TestSeedDerivation:
    @given(seeds, st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_is_pure(self, base, label):
        assert derive_seed(base, label) == derive_seed(base, label)
        assert 0 <= derive_seed(base, label) < 2**31

    def test_child_streams_are_independent_of_creation_order(self):
        root_a = SeededRandom(42)
        mobility_first = root_a.child("mobility").random()
        root_b = SeededRandom(42)
        root_b.child("channel")  # creating another child first changes nothing
        assert root_b.child("mobility").random() == pytest.approx(mobility_first)
