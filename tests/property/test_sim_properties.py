"""Property-based tests for the radio model and the simulation substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.power import ExhaustiveSchedule, GeometricSchedule, LinearSchedule, PowerModel
from repro.radio.propagation import PathLossModel, ReceptionReport

exponents = st.floats(min_value=1.0, max_value=6.0)
distances = st.floats(min_value=1e-3, max_value=1e4)
powers = st.floats(min_value=1e-6, max_value=1e12)
ranges = st.floats(min_value=0.1, max_value=1e4)


class TestPropagationProperties:
    @given(exponents, distances)
    def test_range_inverts_power(self, exponent, distance):
        model = PathLossModel(exponent=exponent)
        assert math.isclose(model.range_for_power(model.required_power(distance)), distance, rel_tol=1e-9)

    @given(exponents, distances, distances)
    def test_required_power_is_monotone(self, exponent, d1, d2):
        model = PathLossModel(exponent=exponent)
        if d1 <= d2:
            assert model.required_power(d1) <= model.required_power(d2)
        else:
            assert model.required_power(d1) >= model.required_power(d2)

    @given(exponents, powers, distances)
    def test_receiver_estimate_recovers_required_power(self, exponent, tx_power, distance):
        model = PathLossModel(exponent=exponent)
        needed = model.required_power(distance)
        if tx_power < needed:
            return
        report = ReceptionReport(
            transmit_power=tx_power,
            reception_power=model.reception_power(tx_power, distance),
        )
        assert math.isclose(model.estimate_required_power(report), needed, rel_tol=1e-9)


class TestScheduleProperties:
    @given(ranges, st.floats(min_value=1.1, max_value=8.0), st.floats(min_value=1e-5, max_value=0.9))
    @settings(max_examples=60)
    def test_geometric_schedule_monotone_and_terminates_at_p(self, max_range, factor, fraction):
        model = PowerModel(propagation=PathLossModel(), max_range=max_range)
        levels = GeometricSchedule(initial_fraction=fraction, factor=factor)(model)
        assert all(b > a for a, b in zip(levels, levels[1:]))
        assert math.isclose(levels[-1], model.max_power, rel_tol=1e-9)

    @given(ranges, st.integers(min_value=1, max_value=64))
    def test_linear_schedule_covers_p(self, max_range, steps):
        model = PowerModel(propagation=PathLossModel(), max_range=max_range)
        levels = LinearSchedule(steps=steps)(model)
        assert len(levels) == steps
        assert math.isclose(levels[-1], model.max_power, rel_tol=1e-9)

    @given(ranges, st.lists(st.floats(min_value=0.0, max_value=1e9), max_size=20))
    def test_exhaustive_schedule_always_valid(self, max_range, raw_levels):
        model = PowerModel(propagation=PathLossModel(), max_range=max_range)
        levels = ExhaustiveSchedule(raw_levels=tuple(raw_levels))(model)
        assert all(b > a for a, b in zip(levels, levels[1:]))
        assert math.isclose(levels[-1], model.max_power, rel_tol=1e-9)
