"""Tests for repro.geometry.cones."""

import math

import pytest

from repro.geometry.cones import Cone, cone_from_bisector
from repro.geometry.points import Point


class TestCone:
    def test_contains_direction_inside(self):
        cone = Cone(apex=Point(0, 0), bisector=0.0, angle=math.pi / 2)
        assert cone.contains_direction(math.pi / 8)
        assert cone.contains_direction(-math.pi / 8)

    def test_contains_direction_boundary_inclusive(self):
        cone = Cone(apex=Point(0, 0), bisector=0.0, angle=math.pi / 2)
        assert cone.contains_direction(math.pi / 4)

    def test_contains_direction_outside(self):
        cone = Cone(apex=Point(0, 0), bisector=0.0, angle=math.pi / 2)
        assert not cone.contains_direction(math.pi / 2)

    def test_contains_point(self):
        cone = Cone(apex=Point(0, 0), bisector=0.0, angle=math.pi / 2)
        assert cone.contains(Point(1.0, 0.1))
        assert not cone.contains(Point(-1.0, 0.0))

    def test_apex_is_contained(self):
        cone = Cone(apex=Point(2, 2), bisector=1.0, angle=0.1)
        assert cone.contains(Point(2, 2))

    def test_bisector_is_normalized(self):
        cone = Cone(apex=Point(0, 0), bisector=2 * math.pi + 0.3, angle=1.0)
        assert cone.bisector == pytest.approx(0.3)

    def test_negative_angle_rejected(self):
        with pytest.raises(ValueError):
            Cone(apex=Point(0, 0), bisector=0.0, angle=-0.1)

    def test_boundary_directions(self):
        cone = Cone(apex=Point(0, 0), bisector=math.pi, angle=math.pi / 2)
        low, high = cone.boundary_directions()
        assert low == pytest.approx(3 * math.pi / 4)
        assert high == pytest.approx(5 * math.pi / 4)

    def test_cone_wrapping_through_zero(self):
        cone = Cone(apex=Point(0, 0), bisector=0.0, angle=math.pi / 2)
        assert cone.contains(Point(1.0, -0.2))
        assert cone.contains(Point(1.0, 0.2))


class TestConeFromBisector:
    def test_matches_paper_definition(self):
        # cone(u, alpha, v): apex u, bisected by the ray towards v.
        u = Point(0, 0)
        v = Point(1, 1)
        cone = cone_from_bisector(u, math.pi / 3, v)
        assert cone.apex == u
        assert cone.bisector == pytest.approx(math.pi / 4)
        assert cone.angle == pytest.approx(math.pi / 3)
        assert cone.contains(v)

    def test_point_opposite_bisector_not_contained(self):
        cone = cone_from_bisector(Point(0, 0), math.pi / 2, Point(1, 0))
        assert not cone.contains(Point(-1, 0))
