"""Tests for repro.geometry.angles, in particular the gap-alpha machinery."""

import math

import pytest

from repro.geometry.angles import (
    TWO_PI,
    angle_between,
    angle_difference,
    angular_gaps,
    cover,
    coverage_equal,
    covers_full_circle,
    has_gap_greater_than,
    max_angular_gap,
    normalize_angle,
    signed_angle_difference,
    sort_directions,
)
from repro.geometry.points import Point


class TestNormalization:
    def test_normalize_within_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_normalize_negative(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_normalize_multiple_turns(self):
        assert normalize_angle(5 * TWO_PI + 0.25) == pytest.approx(0.25)

    def test_normalize_result_is_half_open(self):
        assert normalize_angle(TWO_PI) == pytest.approx(0.0)
        assert 0.0 <= normalize_angle(-1e-18) < TWO_PI

    def test_angle_difference_symmetric(self):
        assert angle_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)
        assert angle_difference(TWO_PI - 0.1, 0.1) == pytest.approx(0.2)

    def test_angle_difference_is_at_most_pi(self):
        assert angle_difference(0.0, math.pi + 0.5) == pytest.approx(math.pi - 0.5)

    def test_signed_angle_difference(self):
        assert signed_angle_difference(0.5, 0.2) == pytest.approx(0.3)
        assert signed_angle_difference(0.2, 0.5) == pytest.approx(-0.3)
        assert signed_angle_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)


class TestAngleBetween:
    def test_right_angle(self):
        assert angle_between(Point(0, 0), Point(1, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_collinear_opposite(self):
        assert angle_between(Point(0, 0), Point(1, 0), Point(-2, 0)) == pytest.approx(math.pi)

    def test_tuple_inputs_accepted(self):
        assert angle_between((0, 0), (1, 0), (1, 1)) == pytest.approx(math.pi / 4)

    def test_coincident_with_apex_raises(self):
        with pytest.raises(ValueError):
            angle_between(Point(0, 0), Point(0, 0), Point(1, 1))


class TestGaps:
    def test_empty_directions_have_full_circle_gap(self):
        assert angular_gaps([]) == [TWO_PI]
        assert max_angular_gap([]) == pytest.approx(TWO_PI)

    def test_single_direction_gap_is_full_circle(self):
        assert max_angular_gap([1.0]) == pytest.approx(TWO_PI)

    def test_two_opposite_directions(self):
        gaps = angular_gaps([0.0, math.pi])
        assert sorted(gaps) == pytest.approx([math.pi, math.pi])

    def test_evenly_spread_directions(self):
        directions = [i * TWO_PI / 6 for i in range(6)]
        assert max_angular_gap(directions) == pytest.approx(TWO_PI / 6)

    def test_gap_wraps_around_zero(self):
        # Directions clustered near pi leave a large gap through 0.
        directions = [math.pi - 0.3, math.pi, math.pi + 0.3]
        assert max_angular_gap(directions) == pytest.approx(TWO_PI - 0.6)

    def test_has_gap_greater_than_strictness(self):
        directions = [0.0, math.pi]
        # Gap is exactly pi: not greater than pi.
        assert not has_gap_greater_than(directions, math.pi)
        assert has_gap_greater_than(directions, math.pi - 0.01)

    def test_sort_directions_normalizes(self):
        assert sort_directions([-0.1, 0.2]) == pytest.approx([0.2, TWO_PI - 0.1])

    def test_gap_alpha_matches_cbtc_termination_semantics(self):
        # Three directions 2*pi/3 apart: no gap > 2*pi/3, so CBTC(2*pi/3) stops.
        directions = [0.0, 2 * math.pi / 3, 4 * math.pi / 3]
        assert not has_gap_greater_than(directions, 2 * math.pi / 3)
        # But CBTC with a smaller alpha would keep growing.
        assert has_gap_greater_than(directions, math.pi / 2)


class TestCover:
    def test_empty_cover(self):
        assert cover([], math.pi) == []

    def test_full_circle_cover(self):
        directions = [0.0, math.pi / 2, math.pi, 3 * math.pi / 2]
        assert cover(directions, math.pi) == [(0.0, TWO_PI)]
        assert covers_full_circle(directions, math.pi)

    def test_partial_cover_arcs(self):
        arcs = cover([0.0], math.pi / 2)
        assert len(arcs) == 1
        start, end = arcs[0]
        assert end - start == pytest.approx(math.pi / 2)

    def test_covers_full_circle_matches_gap_test(self):
        directions = [0.0, 1.0, 2.5, 4.0, 5.5]
        alpha = 2.0
        assert covers_full_circle(directions, alpha) == (not has_gap_greater_than(directions, alpha))

    def test_coverage_equal_for_identical_sets(self):
        directions = [0.2, 1.3, 3.0, 4.4]
        assert coverage_equal(directions, list(reversed(directions)), 1.5)

    def test_coverage_not_equal_when_arc_removed(self):
        full = [0.0, math.pi / 2, math.pi, 3 * math.pi / 2]
        partial = [0.0, math.pi / 2, math.pi]
        assert not coverage_equal(full, partial, math.pi / 2)

    def test_coverage_equal_when_redundant_direction_removed(self):
        # The arc around 0.25 lies entirely inside the union of the arcs
        # around 0.0 and 0.5, so dropping it keeps coverage identical —
        # exactly the situation shrink-back exploits.
        base = [0.0, 0.5, math.pi]
        with_redundant = base + [0.25]
        assert coverage_equal(base, with_redundant, 1.2)

    def test_coverage_differs_when_direction_extends_an_arc(self):
        # A direction whose arc pokes out past the existing coverage changes
        # cover_alpha, so shrink-back must keep it.
        base = [0.0, math.pi]
        extended = base + [0.05]
        assert not coverage_equal(base, extended, 2.5)
