"""Tests for repro.geometry.primitives (circles and triangles)."""

import math

import pytest

from repro.geometry.points import Point
from repro.geometry.primitives import (
    Circle,
    circle_intersections,
    collinear,
    opposite_side_is_longest,
    triangle_angles,
)


class TestCircle:
    def test_contains_and_strictly_contains(self):
        circle = Circle(center=Point(0, 0), radius=1.0)
        assert circle.contains(Point(0.5, 0.5))
        assert circle.contains(Point(1.0, 0.0))
        assert not circle.strictly_contains(Point(1.0, 0.0))
        assert not circle.contains(Point(1.1, 0.0))

    def test_on_boundary(self):
        circle = Circle(center=Point(1, 1), radius=2.0)
        assert circle.on_boundary(Point(3, 1))
        assert not circle.on_boundary(Point(1, 1))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(center=Point(0, 0), radius=-1.0)

    def test_intersects(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(1.5, 0), 1.0)
        c = Circle(Point(5, 0), 1.0)
        assert a.intersects(b)
        assert not a.intersects(c)


class TestCircleIntersections:
    def test_two_intersections(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(1, 0), 1.0)
        points = circle_intersections(a, b)
        assert len(points) == 2
        for p in points:
            assert a.on_boundary(p)
            assert b.on_boundary(p)

    def test_figure5_construction_points(self):
        # The s and s' points of the paper's Figure 5: intersections of the two
        # radius-R circles centred at u0 = (0,0) and v0 = (R,0).
        radius = 1.0
        a = Circle(Point(0, 0), radius)
        b = Circle(Point(radius, 0), radius)
        points = circle_intersections(a, b)
        ys = sorted(p.y for p in points)
        assert ys[0] == pytest.approx(-math.sqrt(3) / 2 * radius)
        assert ys[1] == pytest.approx(math.sqrt(3) / 2 * radius)
        assert all(p.x == pytest.approx(radius / 2) for p in points)

    def test_tangent_circles_single_point(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(2, 0), 1.0)
        points = circle_intersections(a, b)
        assert len(points) == 1
        assert points[0].x == pytest.approx(1.0)

    def test_disjoint_circles_no_intersection(self):
        assert circle_intersections(Circle(Point(0, 0), 1.0), Circle(Point(5, 0), 1.0)) == []

    def test_concentric_circles_no_intersection(self):
        assert circle_intersections(Circle(Point(0, 0), 1.0), Circle(Point(0, 0), 2.0)) == []


class TestTriangles:
    def test_angles_sum_to_pi(self):
        a, b, c = Point(0, 0), Point(4, 0), Point(1, 3)
        assert sum(triangle_angles(a, b, c)) == pytest.approx(math.pi)

    def test_equilateral_triangle(self):
        a = Point(0, 0)
        b = Point(1, 0)
        c = Point(0.5, math.sqrt(3) / 2)
        angles = triangle_angles(a, b, c)
        assert all(angle == pytest.approx(math.pi / 3) for angle in angles)

    def test_right_triangle(self):
        angles = triangle_angles(Point(0, 0), Point(1, 0), Point(0, 1))
        assert max(angles) == pytest.approx(math.pi / 2)

    def test_degenerate_triangle_rejected(self):
        with pytest.raises(ValueError):
            triangle_angles(Point(0, 0), Point(0, 0), Point(1, 1))

    def test_larger_side_opposite_larger_angle(self):
        # The elementary fact the paper's proofs repeatedly invoke.
        assert opposite_side_is_longest(Point(0, 0), Point(5, 0), Point(1, 1))
        assert opposite_side_is_longest(Point(0, 0), Point(2, 0), Point(1, 10))


class TestCollinear:
    def test_collinear_points(self):
        assert collinear(Point(0, 0), Point(1, 1), Point(2, 2))

    def test_non_collinear_points(self):
        assert not collinear(Point(0, 0), Point(1, 1), Point(2, 2.5))
