"""Tests for repro.geometry.points."""

import math

import pytest

from repro.geometry.points import (
    Point,
    centroid,
    direction,
    distance,
    midpoint,
    rotate_about,
    squared_distance,
    translate_polar,
)


class TestPointArithmetic:
    def test_addition_and_subtraction(self):
        a = Point(1.0, 2.0)
        b = Point(3.0, -1.0)
        assert a + b == Point(4.0, 1.0)
        assert b - a == Point(2.0, -3.0)

    def test_scalar_multiplication_both_sides(self):
        p = Point(1.5, -2.0)
        assert p * 2 == Point(3.0, -4.0)
        assert 2 * p == Point(3.0, -4.0)

    def test_division(self):
        assert Point(4.0, 2.0) / 2.0 == Point(2.0, 1.0)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Point(1.0, 1.0) / 0.0

    def test_negation(self):
        assert -Point(1.0, -2.0) == Point(-1.0, 2.0)

    def test_iteration_and_tuple(self):
        p = Point(3.0, 4.0)
        assert tuple(p) == (3.0, 4.0)
        assert p.as_tuple() == (3.0, 4.0)

    def test_points_are_hashable_and_value_equal(self):
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_dot_and_cross(self):
        a = Point(1.0, 0.0)
        b = Point(0.0, 1.0)
        assert a.dot(b) == 0.0
        assert a.cross(b) == 1.0
        assert b.cross(a) == -1.0

    def test_norm(self):
        assert Point(3.0, 4.0).norm() == pytest.approx(5.0)


class TestMetricHelpers:
    def test_distance_is_euclidean(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance_avoids_sqrt(self):
        assert squared_distance(Point(0, 0), Point(3, 4)) == pytest.approx(25.0)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1.0, 2.0)

    def test_direction_cardinal_points(self):
        origin = Point(0, 0)
        assert direction(origin, Point(1, 0)) == pytest.approx(0.0)
        assert direction(origin, Point(0, 1)) == pytest.approx(math.pi / 2)
        assert direction(origin, Point(-1, 0)) == pytest.approx(math.pi)
        assert direction(origin, Point(0, -1)) == pytest.approx(3 * math.pi / 2)

    def test_direction_of_coincident_points_raises(self):
        with pytest.raises(ValueError):
            direction(Point(1, 1), Point(1, 1))

    def test_direction_is_normalized(self):
        angle = direction(Point(0, 0), Point(-1, -1e-9))
        assert 0.0 <= angle < 2 * math.pi

    def test_centroid(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(points) == Point(1.0, 1.0)

    def test_centroid_of_empty_collection_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_is_close(self):
        assert Point(0, 0).is_close(Point(0, 1e-12))
        assert not Point(0, 0).is_close(Point(0, 1e-3))


class TestTransforms:
    def test_rotate_about_origin_quarter_turn(self):
        rotated = rotate_about(Point(1, 0), Point(0, 0), math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_rotate_about_arbitrary_center_preserves_distance(self):
        center = Point(2.0, 3.0)
        point = Point(5.0, 7.0)
        rotated = rotate_about(point, center, 1.234)
        assert distance(center, rotated) == pytest.approx(distance(center, point))

    def test_translate_polar_roundtrip(self):
        origin = Point(1.0, 1.0)
        target = translate_polar(origin, math.pi / 3, 2.0)
        assert distance(origin, target) == pytest.approx(2.0)
        assert direction(origin, target) == pytest.approx(math.pi / 3)
