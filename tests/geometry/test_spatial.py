"""Tests for the uniform-grid spatial index (repro.geometry.spatial).

The index is an accelerator with an exactness contract: every query must
return precisely what a brute-force scan with the repo-wide ``1e-12``
distance tolerance returns, in ID-sorted order.  The property tests here
drive that contract with random point sets, including points placed at
distance *exactly* ``r`` from the query point.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DISTANCE_TOLERANCE,
    Point,
    UniformGridIndex,
    distances_from,
    pairwise_distances,
)

finite_coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(finite_coord, finite_coord), min_size=0, max_size=40)


def brute_force_within(points, query, radius, *, exclude=None):
    qx, qy = query
    return sorted(
        key
        for key, (x, y) in enumerate(points)
        if key != exclude and math.hypot(x - qx, y - qy) <= radius + DISTANCE_TOLERANCE
    )


class TestNeighborsWithin:
    @settings(max_examples=200, deadline=None)
    @given(
        points=point_lists,
        query=st.tuples(finite_coord, finite_coord),
        radius=st.floats(min_value=0.0, max_value=5e3, allow_nan=False),
        cell_size=st.floats(min_value=0.5, max_value=2e3, allow_nan=False),
    )
    def test_matches_brute_force(self, points, query, radius, cell_size):
        index = UniformGridIndex(cell_size, enumerate(points))
        assert index.neighbors_within(query, radius) == brute_force_within(points, query, radius)

    @settings(max_examples=100, deadline=None)
    @given(
        points=point_lists,
        query=st.tuples(finite_coord, finite_coord),
        radius=st.floats(min_value=0.0, max_value=5e3, allow_nan=False),
    )
    def test_exclude_drops_exactly_one_key(self, points, query, radius):
        if not points:
            return
        index = UniformGridIndex(100.0, enumerate(points))
        full = index.neighbors_within(query, radius)
        without = index.neighbors_within(query, radius, exclude=0)
        assert without == [k for k in full if k != 0]

    def test_boundary_point_at_exact_radius_included(self):
        # Matches the `<= r + 1e-12` tolerance used by _candidate_neighbors
        # and Network.neighbors_within: exactly-at-range points count.
        index = UniformGridIndex(1.0, [(0, (0.0, 0.0)), (1, (3.0, 0.0)), (2, (0.0, 3.0))])
        assert index.neighbors_within((0.0, 0.0), 3.0) == [0, 1, 2]

    def test_point_just_within_tolerance_included(self):
        index = UniformGridIndex(1.0, [(0, (1.0 + 5e-13, 0.0))])
        assert index.neighbors_within((0.0, 0.0), 1.0) == [0]

    def test_point_beyond_tolerance_excluded(self):
        index = UniformGridIndex(1.0, [(0, (1.0 + 1e-9, 0.0))])
        assert index.neighbors_within((0.0, 0.0), 1.0) == []

    def test_negative_radius_returns_nothing(self):
        index = UniformGridIndex(1.0, [(0, (0.0, 0.0))])
        assert index.neighbors_within((0.0, 0.0), -1.0) == []

    def test_accepts_point_objects(self):
        index = UniformGridIndex(1.0, [(7, Point(2.0, 2.0))])
        assert index.neighbors_within(Point(2.0, 2.5), 1.0) == [7]

    def test_radius_larger_than_indexed_area(self):
        points = [(i, (float(i), 0.0)) for i in range(10)]
        index = UniformGridIndex(0.25, points)
        assert index.neighbors_within((5.0, 0.0), 1e6) == list(range(10))


class TestNeighborsWithDistances:
    @settings(max_examples=100, deadline=None)
    @given(
        points=point_lists,
        query=st.tuples(finite_coord, finite_coord),
        radius=st.floats(min_value=0.0, max_value=5e3, allow_nan=False),
    )
    def test_distances_match_hypot_exactly(self, points, query, radius):
        index = UniformGridIndex(250.0, enumerate(points))
        result = index.neighbors_with_distances(query, radius)
        assert [key for key, _ in result] == brute_force_within(points, query, radius)
        qx, qy = query
        for key, dist in result:
            x, y = points[key]
            assert dist == math.hypot(x - qx, y - qy)


class TestPairsWithin:
    @settings(max_examples=150, deadline=None)
    @given(
        points=point_lists,
        radius=st.floats(min_value=0.0, max_value=5e3, allow_nan=False),
        cell_size=st.floats(min_value=0.5, max_value=2e3, allow_nan=False),
    )
    def test_matches_brute_force_pairs_in_order(self, points, radius, cell_size):
        index = UniformGridIndex(cell_size, enumerate(points))
        expected = []
        for i, (ax, ay) in enumerate(points):
            for j in range(i + 1, len(points)):
                bx, by = points[j]
                d = math.hypot(bx - ax, by - ay)
                if d <= radius + DISTANCE_TOLERANCE:
                    expected.append((i, j, d))
        assert list(index.pairs_within(radius)) == expected


class TestConstruction:
    def test_rejects_nonpositive_cell_size(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                UniformGridIndex(bad)

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            UniformGridIndex(1.0, [(0, (0.0, 0.0)), (0, (1.0, 1.0))])

    def test_empty_index(self):
        index = UniformGridIndex(1.0)
        assert len(index) == 0
        assert index.neighbors_within((0.0, 0.0), 10.0) == []
        assert list(index.pairs_within(10.0)) == []

    def test_introspection(self):
        index = UniformGridIndex(1.0, [(3, (0.0, 0.0)), (1, (5.0, 5.0))])
        assert index.keys() == [1, 3]
        assert 3 in index and 2 not in index
        assert index.position_of(1) == (5.0, 5.0)
        assert index.cell_count() == 2


class TestVectorizedHelpers:
    @settings(max_examples=50, deadline=None)
    @given(points=st.lists(st.tuples(finite_coord, finite_coord), min_size=1, max_size=15))
    def test_pairwise_distances_matches_hypot(self, points):
        matrix = pairwise_distances([Point(x, y) for x, y in points])
        for i, (ax, ay) in enumerate(points):
            for j, (bx, by) in enumerate(points):
                assert matrix[i][j] == pytest.approx(math.hypot(ax - bx, ay - by), abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        origin=st.tuples(finite_coord, finite_coord),
        points=st.lists(st.tuples(finite_coord, finite_coord), min_size=1, max_size=15),
    )
    def test_distances_from_matches_hypot(self, origin, points):
        ox, oy = origin
        result = distances_from(Point(ox, oy), [Point(x, y) for x, y in points])
        for got, (x, y) in zip(result, points):
            assert got == pytest.approx(math.hypot(x - ox, y - oy), abs=1e-9)


class TestDeltaUpdates:
    """insert/delete/move must leave the index indistinguishable from a rebuild."""

    def test_patched_index_matches_fresh_rebuild(self):
        rng = random.Random(17)
        points = {i: (rng.uniform(0, 1000), rng.uniform(0, 1000)) for i in range(60)}
        index = UniformGridIndex(100.0, points.items())
        for step in range(120):
            op = rng.choice(["move", "insert", "delete"])
            if op == "move" and points:
                key = rng.choice(sorted(points))
                points[key] = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                index.move(key, points[key])
            elif op == "insert":
                key = 1000 + step
                points[key] = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                index.insert(key, points[key])
            elif points:
                key = rng.choice(sorted(points))
                del points[key]
                index.delete(key)
        fresh = UniformGridIndex(100.0, points.items())
        assert index.keys() == fresh.keys()
        for radius in (0.0, 75.0, 150.0, 400.0):
            query = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            assert index.neighbors_within(query, radius) == fresh.neighbors_within(query, radius)
            assert index.neighbors_with_distances(query, radius) == fresh.neighbors_with_distances(query, radius)
        assert index.pairs_within(150.0) == fresh.pairs_within(150.0)

    def test_mutations_drop_the_pair_cache(self):
        index = UniformGridIndex(100.0, [(1, (0.0, 0.0)), (2, (50.0, 0.0))])
        assert index.pairs_within(100.0) == [(1, 2, 50.0)]
        index.move(1, (500.0, 500.0))
        assert index.pairs_within(100.0) == []
        index.insert(3, (40.0, 0.0))
        assert index.pairs_within(100.0) == [(2, 3, 10.0)]
        index.delete(3)
        assert index.pairs_within(100.0) == []

    def test_noop_move_keeps_the_pair_cache(self):
        index = UniformGridIndex(100.0, [(1, (0.0, 0.0)), (2, (50.0, 0.0))])
        first = index.pairs_within(100.0)
        index.move(1, (0.0, 0.0))
        assert index.pairs_within(100.0) is first

    def test_insert_duplicate_key_raises(self):
        index = UniformGridIndex(10.0, [(1, (0.0, 0.0))])
        with pytest.raises(ValueError):
            index.insert(1, (5.0, 5.0))

    def test_delete_missing_key_raises(self):
        index = UniformGridIndex(10.0)
        with pytest.raises(KeyError):
            index.delete(42)
