"""Integration tests for reconfiguration under realistic change scenarios."""

import math

import networkx as nx

from repro.core.analysis import preserves_connectivity
from repro.core.pipeline import OptimizationConfig
from repro.core.reconfiguration import ReconfigurationManager
from repro.geometry import Point
from repro.net.mobility import RandomWaypointModel
from repro.net.node import Node
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6
SMALL = PlacementConfig(node_count=30)


class TestMobilityScenarios:
    def test_sustained_waypoint_mobility(self):
        network = random_uniform_placement(SMALL, seed=20)
        manager = ReconfigurationManager(network, ALPHA)
        mobility = RandomWaypointModel(min_speed=20, max_speed=60, seed=20)
        for _ in range(5):
            for _ in range(3):
                mobility.step(network)
            manager.synchronize()
            assert preserves_connectivity(network.max_power_graph(), manager.topology().graph)

    def test_partition_and_heal(self):
        # Two groups far apart; a bridge node then moves between them and must
        # re-join both sides, merging the components.
        left = [(float(x), float(y)) for x in (0, 150, 300) for y in (0, 150)]
        right = [(float(2000 + x), float(y)) for x in (0, 150, 300) for y in (0, 150)]
        from repro.net.network import Network
        from repro.radio import PathLossModel, PowerModel

        power_model = PowerModel(propagation=PathLossModel(), max_range=500.0)
        network = Network.from_positions(left + right, power_model=power_model)
        manager = ReconfigurationManager(network, ALPHA)
        reference = network.max_power_graph()
        assert nx.number_connected_components(reference) == 2
        assert preserves_connectivity(reference, manager.topology().graph)

        bridge = Node(node_id=100, position=Point(700.0, 75.0))
        network.add_node(bridge)
        # One bridge node cannot join the two far groups (they are 2000 apart),
        # but it must attach to the left group.
        manager.synchronize()
        topology = manager.topology()
        assert preserves_connectivity(network.max_power_graph(), topology.graph)

        # Now move the bridge next to the right group: connectivity of the new
        # G_R (still two components) must again be matched exactly.
        bridge.move_to(Point(1800.0, 75.0))
        manager.synchronize()
        assert preserves_connectivity(network.max_power_graph(), manager.topology().graph)

    def test_mass_failure_of_half_the_network(self):
        network = random_uniform_placement(SMALL, seed=21)
        manager = ReconfigurationManager(network, ALPHA)
        for node_id in network.node_ids[::2]:
            network.node(node_id).crash()
        manager.synchronize()
        topology = manager.topology()
        assert preserves_connectivity(network.max_power_graph(), topology.graph)
        for node_id in network.node_ids[::2]:
            assert node_id not in manager.outcome.states

    def test_crash_then_recover_is_a_join(self):
        network = random_uniform_placement(SMALL, seed=22)
        manager = ReconfigurationManager(network, ALPHA)
        victim = network.node_ids[7]
        network.node(victim).crash()
        manager.synchronize()
        assert victim not in manager.outcome.states
        network.node(victim).recover()
        manager.synchronize()
        assert victim in manager.outcome.states
        assert preserves_connectivity(network.max_power_graph(), manager.topology().graph)

    def test_reconfigured_topology_supports_optimizations(self):
        network = random_uniform_placement(SMALL, seed=23)
        manager = ReconfigurationManager(network, ALPHA)
        RandomWaypointModel(min_speed=50, max_speed=100, seed=23).step(network)
        manager.synchronize()
        optimized = manager.topology(config=OptimizationConfig(shrink_back=True, pairwise_removal=True))
        assert preserves_connectivity(network.max_power_graph(), optimized.graph)
