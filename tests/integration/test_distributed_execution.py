"""Integration tests for the distributed protocol under different channels.

The paper argues (Section 4) that CBTC works in an asynchronous setting with
unreliable channels and crash failures.  These tests run the full distributed
protocol over the discrete-event simulator with duplication, loss and crashed
nodes and check that the reconstructed topology still preserves connectivity
(or degrades exactly as expected when information is lost).
"""

import math

import pytest

from repro.core.analysis import preserves_connectivity
from repro.core.cbtc import run_cbtc
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.core.protocol import run_distributed_cbtc
from repro.core.topology import symmetric_closure_graph, symmetric_subset_graph
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio.power import GeometricSchedule, LinearSchedule
from repro.sim.channel import DuplicatingChannel, LossyChannel

ALPHA = 5 * math.pi / 6
SMALL = PlacementConfig(node_count=25)


class TestDistributedMatchesCentralized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_neighbor_sets_identical_with_reliable_channel(self, seed):
        network = random_uniform_placement(SMALL, seed=seed)
        schedule = GeometricSchedule()
        distributed = run_distributed_cbtc(network, ALPHA, schedule=schedule)
        centralized = run_cbtc(network, ALPHA, schedule=schedule)
        for node_id in centralized.node_ids():
            assert set(distributed.outcome.state(node_id).neighbor_ids) == set(
                centralized.state(node_id).neighbor_ids
            )

    def test_final_powers_match_schedule_levels(self):
        network = random_uniform_placement(SMALL, seed=3)
        schedule = LinearSchedule(steps=8)
        levels = schedule(network.power_model)
        result = run_distributed_cbtc(network, ALPHA, schedule=schedule)
        for state in result.outcome:
            assert any(abs(state.final_power - level) < 1e-6 for level in levels)

    def test_asymmetric_notifications_reconstruct_e_minus(self):
        # The distributed remove-notifications must produce the same E^- graph
        # as the centralized symmetric-subset computation.
        network = random_uniform_placement(SMALL, seed=4)
        schedule = GeometricSchedule()
        alpha = 2 * math.pi / 3
        distributed = run_distributed_cbtc(network, alpha, schedule=schedule)
        centralized = run_cbtc(network, alpha, schedule=schedule)
        subset = symmetric_subset_graph(centralized, network)

        # Build the distributed E^- from each protocol's surviving neighbours.
        import networkx as nx

        distributed_subset = nx.Graph()
        distributed_subset.add_nodes_from(network.node_ids)
        for node_id, protocol in distributed.protocols.items():
            for neighbor in protocol.neighbors_excluding_asymmetric():
                other = distributed.protocols[neighbor]
                if node_id in other.neighbors_excluding_asymmetric():
                    distributed_subset.add_edge(node_id, neighbor)
        assert set(map(frozenset, distributed_subset.edges)) == set(map(frozenset, subset.edges))


class TestUnreliableChannels:
    def test_duplicating_channel_gives_identical_topology(self):
        network = random_uniform_placement(SMALL, seed=5)
        clean = run_distributed_cbtc(network, ALPHA)
        noisy = run_distributed_cbtc(
            network, ALPHA, channel=DuplicatingChannel(duplicate_probability=0.7, seed=9)
        )
        clean_graph = symmetric_closure_graph(clean.outcome, network)
        noisy_graph = symmetric_closure_graph(noisy.outcome, network)
        assert set(map(frozenset, clean_graph.edges)) == set(map(frozenset, noisy_graph.edges))

    def test_mild_loss_still_terminates_and_usually_preserves_connectivity(self):
        network = random_uniform_placement(SMALL, seed=6)
        lossy = run_distributed_cbtc(
            network,
            ALPHA,
            channel=LossyChannel(loss_probability=0.05, min_delay=0.5, max_delay=1.0, seed=11),
            round_timeout=3.0,
        )
        assert lossy.engine.pending_events() == 0
        graph = symmetric_closure_graph(lossy.outcome, network)
        # Losses can only remove knowledge, never invent edges.
        reference = network.max_power_graph()
        for u, v in graph.edges:
            assert reference.has_edge(u, v)

    def test_crashed_nodes_are_routed_around(self):
        network = random_uniform_placement(PlacementConfig(node_count=35), seed=7)
        network.node(4).crash()
        network.node(9).crash()
        result = run_distributed_cbtc(network, ALPHA)
        graph = symmetric_closure_graph(result.outcome, network)
        assert preserves_connectivity(network.max_power_graph(), graph)


class TestMessageComplexity:
    def test_coarser_schedules_send_fewer_messages(self):
        network = random_uniform_placement(SMALL, seed=8)
        fine = run_distributed_cbtc(network, ALPHA, schedule=LinearSchedule(steps=32))
        coarse = run_distributed_cbtc(network, ALPHA, schedule=LinearSchedule(steps=4))
        assert coarse.total_messages() < fine.total_messages()

    def test_energy_accounting_matches_trace(self):
        network = random_uniform_placement(SMALL, seed=9)
        result = run_distributed_cbtc(network, ALPHA)
        assert result.engine.energy.total_consumed() == pytest.approx(
            result.trace.total_transmit_energy()
        )

    def test_distributed_topology_feeds_optimization_pipeline(self):
        network = random_uniform_placement(SMALL, seed=10)
        result = run_distributed_cbtc(network, ALPHA)
        topology = build_topology(
            network, ALPHA, config=OptimizationConfig(shrink_back=True, pairwise_removal=True),
            outcome=result.outcome,
        )
        assert preserves_connectivity(network.max_power_graph(), topology.graph)
