"""Test package (explicit, so clashing basenames like test_energy.py collect cleanly)."""
