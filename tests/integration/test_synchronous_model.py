"""Integration test: CBTC under the synchronous round model of Section 2.

The paper first presents CBTC in a synchronous setting (communication in
rounds governed by a global clock) and only later relaxes it.  This test runs
the distributed protocol under the :class:`SynchronousRunner`'s lock-step
rounds and checks that it converges to the same neighbour sets as the
asynchronous event-driven execution and as the centralized computation.
"""

import math


from repro.core.cbtc import run_cbtc
from repro.core.protocol import CBTCProtocol
from repro.core.analysis import preserves_connectivity
from repro.core.state import CBTCOutcome
from repro.core.topology import symmetric_closure_graph
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio.power import GeometricSchedule
from repro.sim.synchronous import SynchronousRunner

ALPHA = 5 * math.pi / 6


def _run_synchronously(network, alpha, schedule):
    levels = schedule(network.power_model)
    runner = SynchronousRunner(network)
    protocols = {}
    for node in network.nodes:
        if not node.alive:
            continue
        protocol = CBTCProtocol(node.node_id, alpha, levels, round_timeout=3.0)
        protocols[node.node_id] = protocol
        runner.register(node.node_id, protocol)
    rounds = runner.run_until_quiescent(max_rounds=5000)
    outcome = CBTCOutcome(alpha=alpha)
    for node_id, protocol in protocols.items():
        outcome.states[node_id] = protocol.state
    return outcome, rounds, protocols


class TestSynchronousExecution:
    def test_synchronous_run_matches_centralized(self):
        network = random_uniform_placement(PlacementConfig(node_count=20), seed=13)
        schedule = GeometricSchedule()
        outcome, rounds, protocols = _run_synchronously(network, ALPHA, schedule)
        centralized = run_cbtc(network, ALPHA, schedule=schedule)
        assert rounds > 0
        assert all(protocol.finished for protocol in protocols.values())
        for node_id in centralized.node_ids():
            assert set(outcome.state(node_id).neighbor_ids) == set(
                centralized.state(node_id).neighbor_ids
            )

    def test_synchronous_run_preserves_connectivity(self):
        network = random_uniform_placement(PlacementConfig(node_count=20), seed=14)
        outcome, _, _ = _run_synchronously(network, ALPHA, GeometricSchedule())
        controlled = symmetric_closure_graph(outcome, network)
        assert preserves_connectivity(network.max_power_graph(), controlled)

    def test_round_count_bounded_by_schedule_length(self):
        network = random_uniform_placement(PlacementConfig(node_count=15), seed=15)
        schedule = GeometricSchedule()
        levels = schedule(network.power_model)
        _, rounds, protocols = _run_synchronously(network, ALPHA, schedule)
        # Each power level costs a bounded number of synchronous rounds
        # (Hello out, Acks back, timeout), so the total round count is at most
        # a small constant times the number of levels.
        assert rounds <= 5 * len(levels) + 10
        assert max(p.hello_broadcasts for p in protocols.values()) <= len(levels)
