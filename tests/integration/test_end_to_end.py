"""End-to-end integration tests exercising the whole public API surface."""

import math

import networkx as nx
import pytest

from repro import (
    ALPHA_CONNECTIVITY_THRESHOLD,
    Network,
    OptimizationConfig,
    build_topology,
    paper_workload,
    run_cbtc,
)
from repro.core.analysis import power_stretch_factor, preserves_connectivity
from repro.graphs.metrics import graph_metrics
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6


class TestPublicApi:
    def test_readme_quickstart_flow(self):
        network = paper_workload(seed=0)
        result = build_topology(network, ALPHA_CONNECTIVITY_THRESHOLD, config=OptimizationConfig.all())
        assert result.node_count == 100
        assert 2.0 < result.average_degree() < 6.0
        assert 80.0 < result.average_radius() < 300.0
        assert preserves_connectivity(network.max_power_graph(), result.graph)

    def test_full_paper_workload_all_configurations(self):
        network = paper_workload(seed=1)
        reference = network.max_power_graph()
        previous_edges = None
        for config in (
            OptimizationConfig.none(),
            OptimizationConfig.shrink_only(),
            OptimizationConfig.all(),
        ):
            result = build_topology(network, ALPHA, config=config)
            assert preserves_connectivity(reference, result.graph)
            if previous_edges is not None:
                assert result.edge_count <= previous_edges
            previous_edges = result.edge_count

    def test_outcome_reuse_across_configurations(self):
        network = random_uniform_placement(PlacementConfig(node_count=40), seed=2)
        outcome = run_cbtc(network, ALPHA)
        results = {
            name: build_topology(network, ALPHA, config=config, outcome=outcome)
            for name, config in {
                "basic": OptimizationConfig.none(),
                "all": OptimizationConfig.all(),
            }.items()
        }
        assert results["all"].edge_count <= results["basic"].edge_count
        # The shared outcome must not be mutated by downstream optimizations.
        assert outcome.neighbor_pairs()

    def test_metrics_and_stretch_pipeline(self):
        network = random_uniform_placement(PlacementConfig(node_count=30), seed=3)
        result = build_topology(network, ALPHA, config=OptimizationConfig.all())
        metrics = graph_metrics(result.graph, network)
        stretch = power_stretch_factor(network, result.graph)
        assert metrics.average_degree == pytest.approx(result.average_degree())
        assert stretch >= 1.0

    def test_sparse_network_with_isolated_components(self):
        # Very sparse workload: G_R itself is disconnected; CBTC must preserve
        # exactly that component structure, never merge or split components.
        network = random_uniform_placement(
            PlacementConfig(node_count=15, width=5000, height=5000, max_range=400), seed=4
        )
        reference = network.max_power_graph()
        assert nx.number_connected_components(reference) > 1
        result = build_topology(network, ALPHA, config=OptimizationConfig.all())
        assert preserves_connectivity(reference, result.graph)

    def test_tiny_networks(self):
        for count in (1, 2, 3):
            network = random_uniform_placement(PlacementConfig(node_count=count, width=300, height=300), seed=5)
            result = build_topology(network, ALPHA, config=OptimizationConfig.all())
            assert result.node_count == count
            assert preserves_connectivity(network.max_power_graph(), result.graph)

    def test_collinear_and_coincident_degeneracies(self):
        # Collinear nodes plus two nodes at (nearly) the same position.
        points = [(float(i * 100), 0.0) for i in range(6)] + [(0.0, 0.0001)]
        network = Network.from_positions(points)
        result = build_topology(network, ALPHA, config=OptimizationConfig.all())
        assert preserves_connectivity(network.max_power_graph(), result.graph)

    def test_dense_clique_reduces_to_near_minimal_degree(self):
        # All nodes inside one small disk: G_R is a clique, and the optimized
        # topology should be dramatically sparser while staying connected.
        network = random_uniform_placement(
            PlacementConfig(node_count=40, width=300, height=300, max_range=500), seed=6
        )
        reference = network.max_power_graph()
        assert nx.graph_clique_number(reference) if hasattr(nx, "graph_clique_number") else True
        result = build_topology(network, ALPHA, config=OptimizationConfig.all())
        assert preserves_connectivity(reference, result.graph)
        assert result.average_degree() < graph_metrics(reference, network).average_degree / 3
