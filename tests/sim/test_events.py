"""Tests for repro.sim.events."""

from repro.sim.events import Event, MessageDelivery, TimerFired
from repro.sim.messages import Envelope, Message


class TestEventOrdering:
    def test_ordered_by_time(self):
        early = Event(time=1.0)
        late = Event(time=2.0)
        assert early < late
        assert not late < early

    def test_ties_broken_by_priority_then_sequence(self):
        first = Event(time=1.0, priority=0)
        second = Event(time=1.0, priority=1)
        assert first < second
        a = Event(time=1.0)
        b = Event(time=1.0)
        assert a < b  # earlier creation wins

    def test_heterogeneous_event_types_are_comparable(self):
        # The engine keeps deliveries and timers in one heap; comparison must
        # work across the concrete subclasses.
        delivery = MessageDelivery(time=1.0, receiver=0, envelope=None, reception_power=0.0)
        timer = TimerFired(time=2.0, node=0, tag="x")
        assert delivery < timer
        assert sorted([timer, delivery])[0] is delivery

    def test_comparison_with_non_event_not_supported(self):
        assert Event(time=0.0).__lt__(42) is NotImplemented

    def test_cancel_flag(self):
        event = Event(time=0.0)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


class TestMessages:
    def test_envelope_sequence_numbers_are_unique(self):
        message = Message("hello", {"power": 1.0})
        a = Envelope(message=message, sender=0, transmit_power=1.0)
        b = Envelope(message=message, sender=0, transmit_power=1.0)
        assert a.unique_id() != b.unique_id()

    def test_broadcast_flag(self):
        message = Message("hello")
        assert Envelope(message=message, sender=0, transmit_power=1.0).is_broadcast
        assert not Envelope(message=message, sender=0, transmit_power=1.0, destination=3).is_broadcast

    def test_message_payload_accessor(self):
        message = Message("ack", {"hello_power": 2.0})
        assert message.get("hello_power") == 2.0
        assert message.get("missing", -1) == -1
