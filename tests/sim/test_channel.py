"""Tests for repro.sim.channel."""

import pytest

from repro.sim.channel import DuplicatingChannel, LossyChannel, ReliableChannel
from repro.sim.messages import Envelope, Message


@pytest.fixture
def envelope():
    return Envelope(message=Message("hello"), sender=0, transmit_power=1.0)


class TestReliableChannel:
    def test_single_delivery_with_fixed_delay(self, envelope):
        channel = ReliableChannel(delay=0.5)
        assert channel.plan_delivery(envelope, receiver=1, distance=10.0) == [0.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ReliableChannel(delay=-1.0)


class TestLossyChannel:
    def test_loss_rate_roughly_respected(self, envelope):
        channel = LossyChannel(loss_probability=0.5, seed=1)
        outcomes = [channel.plan_delivery(envelope, receiver=1, distance=1.0) for _ in range(500)]
        lost = sum(1 for deliveries in outcomes if not deliveries)
        assert 150 < lost < 350

    def test_zero_loss_always_delivers(self, envelope):
        channel = LossyChannel(loss_probability=0.0, seed=2)
        for _ in range(50):
            deliveries = channel.plan_delivery(envelope, receiver=1, distance=1.0)
            assert len(deliveries) == 1
            assert channel.min_delay <= deliveries[0] <= channel.max_delay

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss_probability=1.0)
        with pytest.raises(ValueError):
            LossyChannel(min_delay=2.0, max_delay=1.0)

    def test_seed_reproducibility(self, envelope):
        a = LossyChannel(loss_probability=0.3, seed=7)
        b = LossyChannel(loss_probability=0.3, seed=7)
        plan_a = [a.plan_delivery(envelope, 1, 1.0) for _ in range(20)]
        plan_b = [b.plan_delivery(envelope, 1, 1.0) for _ in range(20)]
        assert plan_a == plan_b


class TestDuplicatingChannel:
    def test_always_duplicates_when_probability_one(self, envelope):
        channel = DuplicatingChannel(duplicate_probability=1.0, seed=3)
        deliveries = channel.plan_delivery(envelope, receiver=1, distance=1.0)
        assert len(deliveries) == 2
        assert deliveries[1] > deliveries[0]

    def test_never_duplicates_when_probability_zero(self, envelope):
        channel = DuplicatingChannel(duplicate_probability=0.0, seed=4)
        for _ in range(20):
            assert len(channel.plan_delivery(envelope, receiver=1, distance=1.0)) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DuplicatingChannel(duplicate_probability=2.0)
        with pytest.raises(ValueError):
            DuplicatingChannel(base_delay=-1.0)
