"""Tests for repro.sim.channel."""

import pytest

from repro.sim.channel import DuplicatingChannel, LossyChannel, ReliableChannel
from repro.sim.messages import Envelope, Message


@pytest.fixture
def envelope():
    return Envelope(message=Message("hello"), sender=0, transmit_power=1.0)


class TestReliableChannel:
    def test_single_delivery_with_fixed_delay(self, envelope):
        channel = ReliableChannel(delay=0.5)
        assert channel.plan_delivery(envelope, receiver=1, distance=10.0) == [0.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ReliableChannel(delay=-1.0)


class TestLossyChannel:
    def test_loss_rate_roughly_respected(self, envelope):
        channel = LossyChannel(loss_probability=0.5, seed=1)
        outcomes = [channel.plan_delivery(envelope, receiver=1, distance=1.0) for _ in range(500)]
        lost = sum(1 for deliveries in outcomes if not deliveries)
        assert 150 < lost < 350

    def test_zero_loss_always_delivers(self, envelope):
        channel = LossyChannel(loss_probability=0.0, seed=2)
        for _ in range(50):
            deliveries = channel.plan_delivery(envelope, receiver=1, distance=1.0)
            assert len(deliveries) == 1
            assert channel.min_delay <= deliveries[0] <= channel.max_delay

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss_probability=1.0)
        with pytest.raises(ValueError):
            LossyChannel(min_delay=2.0, max_delay=1.0)

    def test_seed_reproducibility(self, envelope):
        a = LossyChannel(loss_probability=0.3, seed=7)
        b = LossyChannel(loss_probability=0.3, seed=7)
        plan_a = [a.plan_delivery(envelope, 1, 1.0) for _ in range(20)]
        plan_b = [b.plan_delivery(envelope, 1, 1.0) for _ in range(20)]
        assert plan_a == plan_b


class TestDuplicatingChannel:
    def test_always_duplicates_when_probability_one(self, envelope):
        channel = DuplicatingChannel(duplicate_probability=1.0, seed=3)
        deliveries = channel.plan_delivery(envelope, receiver=1, distance=1.0)
        assert len(deliveries) == 2
        assert deliveries[1] > deliveries[0]

    def test_never_duplicates_when_probability_zero(self, envelope):
        channel = DuplicatingChannel(duplicate_probability=0.0, seed=4)
        for _ in range(20):
            assert len(channel.plan_delivery(envelope, receiver=1, distance=1.0)) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DuplicatingChannel(duplicate_probability=2.0)
        with pytest.raises(ValueError):
            DuplicatingChannel(base_delay=-1.0)


class TestDistanceLossRamp:
    def _plan_sequence(self, channel, distances):
        envelope = Envelope(message=Message("x"), sender=0, transmit_power=1.0)
        return [channel.plan_delivery(envelope, 1, d) for d in distances]

    def test_lossy_default_ramp_keeps_stream_byte_identical(self):
        # With the ramp off (the default), outcomes must not depend on
        # distance at all: same seed, wildly different distances, same plans.
        distances_a = [0.0, 10.0, 250.0, 499.0]
        distances_b = [499.0, 250.0, 10.0, 0.0]
        plans_a = self._plan_sequence(LossyChannel(loss_probability=0.4, seed=9), distances_a)
        plans_b = self._plan_sequence(LossyChannel(loss_probability=0.4, seed=9), distances_b)
        assert plans_a == plans_b

    def test_lossy_ramp_increases_loss_with_distance(self):
        near_losses = sum(
            1
            for plan in self._plan_sequence(
                LossyChannel(loss_probability=0.0, distance_loss_ramp=0.9, ramp_range=100.0, seed=1),
                [1.0] * 400,
            )
            if not plan
        )
        far_losses = sum(
            1
            for plan in self._plan_sequence(
                LossyChannel(loss_probability=0.0, distance_loss_ramp=0.9, ramp_range=100.0, seed=1),
                [100.0] * 400,
            )
            if not plan
        )
        assert near_losses < 30  # ~0.9% loss at distance 1
        assert 310 < far_losses < 410  # ~90% loss at the full ramp

    def test_lossy_ramp_saturates_beyond_ramp_range(self):
        channel = LossyChannel(loss_probability=0.5, distance_loss_ramp=0.2, ramp_range=100.0)
        assert channel._effective_loss(100.0) == channel._effective_loss(1e9)
        assert channel._effective_loss(0.0) == 0.5

    def test_lossy_ramp_never_reaches_certainty(self):
        channel = LossyChannel(loss_probability=0.9, distance_loss_ramp=0.9, ramp_range=10.0)
        assert channel._effective_loss(1e6) < 1.0

    def test_duplicating_default_ramp_keeps_stream_byte_identical(self):
        distances_a = [0.0, 10.0, 250.0, 499.0]
        distances_b = [499.0, 250.0, 10.0, 0.0]
        plans_a = self._plan_sequence(
            DuplicatingChannel(duplicate_probability=0.5, seed=9), distances_a
        )
        plans_b = self._plan_sequence(
            DuplicatingChannel(duplicate_probability=0.5, seed=9), distances_b
        )
        assert plans_a == plans_b

    def test_duplicating_ramp_can_drop_far_deliveries(self):
        channel = DuplicatingChannel(
            duplicate_probability=0.0, distance_loss_ramp=0.95, ramp_range=100.0, seed=2
        )
        losses = sum(1 for plan in self._plan_sequence(channel, [100.0] * 300) if not plan)
        assert losses > 230  # ~95% loss at the full ramp

    def test_negative_ramp_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel(distance_loss_ramp=-0.1)
        with pytest.raises(ValueError):
            DuplicatingChannel(ramp_range=0.0)

    def test_ramped_loss_helper_contract(self):
        from repro.sim.channel import _ramped_loss

        assert _ramped_loss(0.3, 0.0, 100.0, 1e9) == 0.3  # ramp off: base exactly
        assert _ramped_loss(0.0, 1.0, 100.0, 1e9) < 1.0  # never certainty
        assert _ramped_loss(0.0, 0.5, 100.0, 50.0) == pytest.approx(0.25)
        assert _ramped_loss(0.0, 0.5, 100.0, -5.0) == 0.0  # clamped at zero distance
