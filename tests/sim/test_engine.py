"""Tests for the discrete-event simulation engine."""

import pytest

from repro.geometry import Point
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel
from repro.sim.channel import DuplicatingChannel, LossyChannel, ReliableChannel
from repro.sim.engine import SimulationEngine
from repro.sim.messages import Message
from repro.sim.process import NodeProcess


def _three_node_line(spacing: float = 1.0, max_range: float = 1.5) -> Network:
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points(
        [Point(0, 0), Point(spacing, 0), Point(2 * spacing, 0)], power_model=power_model
    )


class RecordingProcess(NodeProcess):
    """Collects everything the engine delivers to it."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.started = False
        self.received = []
        self.timers = []

    def on_start(self, ctx):
        self.started = True

    def on_message(self, ctx, message, info):
        self.received.append((message, info))

    def on_timer(self, ctx, tag):
        self.timers.append((ctx.now, tag))


class BroadcastOnStart(RecordingProcess):
    def __init__(self, node_id, power, kind="hello"):
        super().__init__(node_id)
        self.power = power
        self.kind = kind

    def on_start(self, ctx):
        super().on_start(ctx)
        ctx.bcast(self.power, Message(self.kind, {"power": self.power}))


class TestRegistration:
    def test_register_unknown_node_rejected(self):
        engine = SimulationEngine(_three_node_line())
        with pytest.raises(KeyError):
            engine.register(99, RecordingProcess(99))

    def test_double_registration_rejected(self):
        engine = SimulationEngine(_three_node_line())
        engine.register(0, RecordingProcess(0))
        with pytest.raises(ValueError):
            engine.register(0, RecordingProcess(0))

    def test_registered_nodes_sorted(self):
        engine = SimulationEngine(_three_node_line())
        engine.register(2, RecordingProcess(2))
        engine.register(0, RecordingProcess(0))
        assert engine.registered_nodes == [0, 2]


class TestBroadcastDelivery:
    def test_broadcast_reaches_only_nodes_within_power(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        processes = {i: RecordingProcess(i) for i in network.node_ids}
        processes[0] = BroadcastOnStart(0, power=network.power_model.required_power(1.0))
        for node_id, process in processes.items():
            engine.register(node_id, process)
        engine.run_to_completion()
        assert len(processes[1].received) == 1
        assert len(processes[2].received) == 0

    def test_delivery_info_contents(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        sender_power = network.power_model.required_power(1.2)
        engine.register(0, BroadcastOnStart(0, power=sender_power))
        receiver = RecordingProcess(1)
        engine.register(1, receiver)
        engine.register(2, RecordingProcess(2))
        engine.run_to_completion()
        message, info = receiver.received[0]
        assert message.kind == "hello"
        assert info.sender == 0
        assert info.transmit_power == pytest.approx(sender_power)
        # The receiver's estimate of the power required to reach node 0 back
        # must equal the true required power for the 1.0 distance.
        assert info.required_power == pytest.approx(network.power_model.required_power(1.0))
        assert info.direction == pytest.approx(3.141592653589793)

    def test_dead_sender_does_not_transmit(self):
        network = _three_node_line()
        network.node(0).crash()
        engine = SimulationEngine(network)
        engine.register(0, BroadcastOnStart(0, power=network.power_model.max_power))
        receiver = RecordingProcess(1)
        engine.register(1, receiver)
        engine.run_to_completion()
        assert receiver.received == []

    def test_dead_receiver_does_not_receive(self):
        network = _three_node_line()
        network.node(1).crash()
        engine = SimulationEngine(network)
        engine.register(0, BroadcastOnStart(0, power=network.power_model.max_power))
        receiver = RecordingProcess(2)
        engine.register(2, receiver)
        engine.run_to_completion()
        # Node 2 is out of range anyway at distance 2 > 1.5; use max power graph:
        # distance 2.0 > max_range 1.5, so nothing arrives there either.
        assert receiver.received == []

    def test_unicast_send_reaches_only_destination(self):
        network = _three_node_line(spacing=0.5)
        engine = SimulationEngine(network)

        class Unicaster(RecordingProcess):
            def on_start(self, ctx):
                ctx.send(ctx.max_power, Message("ping"), 2)

        engine.register(0, Unicaster(0))
        bystander = RecordingProcess(1)
        target = RecordingProcess(2)
        engine.register(1, bystander)
        engine.register(2, target)
        engine.run_to_completion()
        assert len(target.received) == 1
        assert bystander.received == []

    def test_unicast_beyond_power_is_dropped(self):
        network = _three_node_line()
        engine = SimulationEngine(network)

        class WeakUnicaster(RecordingProcess):
            def on_start(self, ctx):
                ctx.send(0.1, Message("ping"), 1)

        engine.register(0, WeakUnicaster(0))
        target = RecordingProcess(1)
        engine.register(1, target)
        engine.run_to_completion()
        assert target.received == []

    def test_power_clamped_to_max(self):
        network = _three_node_line(spacing=1.0, max_range=1.5)
        engine = SimulationEngine(network)
        engine.register(0, BroadcastOnStart(0, power=1e12))
        far = RecordingProcess(2)
        engine.register(2, far)
        engine.run_to_completion()
        # Even "infinite" requested power cannot exceed P, and node 2 at
        # distance 2.0 is beyond the maximum range 1.5.
        assert far.received == []


class TestTimers:
    def test_timer_fires_at_requested_time(self):
        network = _three_node_line()
        engine = SimulationEngine(network)

        class TimerProcess(RecordingProcess):
            def on_start(self, ctx):
                ctx.set_timer(5.0, "wake")

        process = TimerProcess(0)
        engine.register(0, process)
        engine.run_to_completion()
        assert process.timers == [(5.0, "wake")]

    def test_negative_timer_rejected(self):
        engine = SimulationEngine(_three_node_line())
        engine.register(0, RecordingProcess(0))
        with pytest.raises(ValueError):
            engine.schedule_timer(0, -1.0, None)

    def test_cancelled_timer_does_not_fire(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        process = RecordingProcess(0)
        engine.register(0, process)
        event = engine.schedule_timer(0, 1.0, "cancel-me")
        event.cancel()
        engine.run_to_completion()
        assert process.timers == []

    def test_timer_for_dead_node_ignored(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        process = RecordingProcess(0)
        engine.register(0, process)
        engine.schedule_timer(0, 1.0, "tick")
        network.node(0).crash()
        engine.run_to_completion()
        assert process.timers == []


class TestRunControls:
    def test_run_until_time_bound(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        process = RecordingProcess(0)
        engine.register(0, process)
        engine.schedule_timer(0, 1.0, "a")
        engine.schedule_timer(0, 10.0, "b")
        engine.run(until=5.0)
        assert [tag for _, tag in process.timers] == ["a"]
        assert engine.pending_events() == 1

    def test_run_to_completion_event_budget(self):
        network = _three_node_line()
        engine = SimulationEngine(network)

        class SelfPerpetuating(RecordingProcess):
            def on_start(self, ctx):
                ctx.set_timer(1.0, "again")

            def on_timer(self, ctx, tag):
                ctx.set_timer(1.0, "again")

        engine.register(0, SelfPerpetuating(0))
        with pytest.raises(RuntimeError):
            engine.run_to_completion(max_events=50)

    def test_clock_is_monotone(self):
        network = _three_node_line()
        engine = SimulationEngine(network)
        times = []

        class Clocked(RecordingProcess):
            def on_timer(self, ctx, tag):
                times.append(ctx.now)

        process = Clocked(0)
        engine.register(0, process)
        for delay in (3.0, 1.0, 2.0):
            engine.schedule_timer(0, delay, delay)
        engine.run_to_completion()
        assert times == sorted(times)


class TestDuplicateSuppressionAndTrace:
    def test_duplicates_suppressed_by_default(self):
        network = _three_node_line(spacing=0.5)
        engine = SimulationEngine(network, channel=DuplicatingChannel(duplicate_probability=1.0, seed=0))
        engine.register(0, BroadcastOnStart(0, power=network.power_model.max_power))
        receiver = RecordingProcess(1)
        engine.register(1, receiver)
        engine.run_to_completion()
        assert len(receiver.received) == 1

    def test_duplicates_delivered_when_suppression_disabled(self):
        network = _three_node_line(spacing=0.5)
        engine = SimulationEngine(
            network,
            channel=DuplicatingChannel(duplicate_probability=1.0, seed=0),
            suppress_duplicates=False,
        )
        engine.register(0, BroadcastOnStart(0, power=network.power_model.max_power))
        receiver = RecordingProcess(1)
        engine.register(1, receiver)
        engine.run_to_completion()
        assert len(receiver.received) == 2
        assert receiver.received[1][1].duplicate

    def test_lossy_channel_can_drop_everything(self):
        network = _three_node_line(spacing=0.5)
        engine = SimulationEngine(network, channel=LossyChannel(loss_probability=0.999999, seed=1))
        engine.register(0, BroadcastOnStart(0, power=network.power_model.max_power))
        receiver = RecordingProcess(1)
        engine.register(1, receiver)
        engine.run_to_completion()
        assert receiver.received == []

    def test_trace_and_energy_recording(self):
        network = _three_node_line(spacing=0.5)
        engine = SimulationEngine(network, channel=ReliableChannel())
        power = network.power_model.required_power(0.5)
        engine.register(0, BroadcastOnStart(0, power=power))
        engine.register(1, RecordingProcess(1))
        engine.run_to_completion()
        assert len(engine.trace) == 1
        record = engine.trace.records[0]
        assert record.sender == 0
        assert record.kind == "hello"
        assert record.transmit_power == pytest.approx(power)
        assert engine.energy.consumed_by(0) == pytest.approx(power)
        assert engine.energy.consumed_by(1) == 0.0
