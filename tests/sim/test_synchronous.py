"""Tests for the synchronous (round-based) runner."""

import pytest

from repro.geometry import Point
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel
from repro.sim.messages import Message
from repro.sim.process import NodeProcess
from repro.sim.synchronous import SynchronousRunner


def _pair_network() -> Network:
    power_model = PowerModel(propagation=PathLossModel(), max_range=2.0)
    return Network.from_points([Point(0, 0), Point(1, 0)], power_model=power_model)


class PingPong(NodeProcess):
    """Sends one message per round, alternating between the two nodes."""

    def __init__(self, node_id, peer, rounds):
        super().__init__(node_id)
        self.peer = peer
        self.rounds = rounds
        self.received_rounds = []

    def on_start(self, ctx):
        if self.node_id == 0:
            ctx.send(ctx.max_power, Message("ping", {"round": 0}), self.peer)

    def on_message(self, ctx, message, info):
        round_index = message.get("round")
        self.received_rounds.append((ctx.now, round_index))
        if round_index < self.rounds:
            ctx.send(ctx.max_power, Message("ping", {"round": round_index + 1}), self.peer)


class TestSynchronousRunner:
    def test_messages_cross_exactly_one_round_boundary(self):
        network = _pair_network()
        runner = SynchronousRunner(network)
        a = PingPong(0, peer=1, rounds=4)
        b = PingPong(1, peer=0, rounds=4)
        runner.register(0, a)
        runner.register(1, b)
        runner.run_until_quiescent()
        # Node 1 receives rounds 0, 2, 4 at times 1, 3, 5; node 0 receives 1, 3 at 2, 4.
        assert [round_index for _, round_index in b.received_rounds] == [0, 2, 4]
        assert [time for time, _ in b.received_rounds] == pytest.approx([1.0, 3.0, 5.0])
        assert [round_index for _, round_index in a.received_rounds] == [1, 3]

    def test_run_returns_rounds_executed(self):
        network = _pair_network()
        runner = SynchronousRunner(network)
        runner.register(0, PingPong(0, peer=1, rounds=2))
        runner.register(1, PingPong(1, peer=0, rounds=2))
        rounds = runner.run(max_rounds=100)
        assert rounds < 100
        assert runner.engine.pending_events() == 0

    def test_quiescence_error_when_budget_too_small(self):
        network = _pair_network()
        runner = SynchronousRunner(network)
        runner.register(0, PingPong(0, peer=1, rounds=50))
        runner.register(1, PingPong(1, peer=0, rounds=50))
        with pytest.raises(RuntimeError):
            runner.run_until_quiescent(max_rounds=3)

    def test_current_round_counter(self):
        network = _pair_network()
        runner = SynchronousRunner(network)
        runner.register(0, PingPong(0, peer=1, rounds=0))
        runner.register(1, PingPong(1, peer=0, rounds=0))
        assert runner.current_round == 0
        runner.run_round()
        assert runner.current_round == 1
