"""Tests for repro.sim.trace."""

import pytest

from repro.sim.trace import MessageTrace, TraceRecord


def _record(sender=0, kind="hello", power=1.0, destination=None, time=0.0, receivers=1):
    return TraceRecord(
        time=time,
        sender=sender,
        kind=kind,
        transmit_power=power,
        destination=destination,
        receivers=receivers,
    )


class TestMessageTrace:
    def test_record_and_len(self):
        trace = MessageTrace()
        trace.record(_record())
        trace.record(_record(kind="ack"))
        assert len(trace) == 2
        assert [r.kind for r in trace.records] == ["hello", "ack"]

    def test_count_by_kind(self):
        trace = MessageTrace()
        for kind in ("hello", "hello", "ack", "beacon"):
            trace.record(_record(kind=kind))
        assert trace.count_by_kind() == {"hello": 2, "ack": 1, "beacon": 1}

    def test_transmissions_by_node(self):
        trace = MessageTrace()
        trace.record(_record(sender=1))
        trace.record(_record(sender=1))
        trace.record(_record(sender=2))
        assert trace.transmissions_by_node() == {1: 2, 2: 1}

    def test_total_transmit_energy(self):
        trace = MessageTrace()
        trace.record(_record(power=2.0))
        trace.record(_record(power=3.0))
        assert trace.total_transmit_energy() == pytest.approx(5.0)
        assert trace.total_transmit_energy(duration_per_message=2.0) == pytest.approx(10.0)

    def test_broadcasts_and_unicasts(self):
        trace = MessageTrace()
        trace.record(_record(destination=None))
        trace.record(_record(destination=5))
        assert len(trace.broadcasts()) == 1
        assert len(trace.unicasts()) == 1
        assert trace.unicasts()[0].destination == 5

    def test_clear(self):
        trace = MessageTrace()
        trace.record(_record())
        trace.clear()
        assert len(trace) == 0
