"""Tests for repro.sim.randomness."""

from repro.sim.randomness import SeededRandom


class TestSeededRandom:
    def test_same_seed_same_stream(self):
        a = SeededRandom(5)
        b = SeededRandom(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_child_streams_are_deterministic(self):
        a = SeededRandom(5).child("mobility")
        b = SeededRandom(5).child("mobility")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_child_streams_with_different_labels_differ(self):
        root = SeededRandom(5)
        mobility = root.child("mobility")
        channel = root.child("channel")
        assert [mobility.random() for _ in range(5)] != [channel.random() for _ in range(5)]

    def test_child_independent_of_parent_draw_order(self):
        first = SeededRandom(9)
        first.random()
        first.random()
        late_child = first.child("x")
        early_child = SeededRandom(9).child("x")
        assert [late_child.random() for _ in range(5)] == [early_child.random() for _ in range(5)]

    def test_root_seed_exposed(self):
        assert SeededRandom(11).root_seed == 11
        assert SeededRandom().root_seed is None


class TestPickleRoundTrip:
    """random.Random's default __reduce__ drops subclass attributes: a
    round-tripped SeededRandom used to lose its root seed, so children
    derived after unpickling diverged.  World checkpoints pickle mobility
    RNGs, so recovery correctness depends on this round trip."""

    def test_root_seed_survives(self):
        import pickle

        rng = SeededRandom(1234)
        rng.random()
        clone = pickle.loads(pickle.dumps(rng))
        assert clone.root_seed == 1234

    def test_stream_and_children_continue_identically(self):
        import pickle

        rng = SeededRandom(77)
        [rng.random() for _ in range(5)]
        clone = pickle.loads(pickle.dumps(rng))
        assert [clone.random() for _ in range(3)] == [rng.random() for _ in range(3)]
        assert clone.child("mobility").random() == rng.child("mobility").random()
