"""Tests for the NDP neighbour table (repro.ndp.table)."""

import pytest

from repro.ndp.events import NeighborEventType
from repro.ndp.table import NeighborTable


@pytest.fixture
def table():
    return NeighborTable(owner=0, beacon_interval=1.0, miss_threshold=3, angle_threshold=0.1)


class TestJoinDetection:
    def test_first_beacon_is_a_join(self, table):
        events = table.observe_beacon(sender=5, time=0.0, direction=1.0, required_power=2.0)
        assert len(events) == 1
        assert events[0].event_type is NeighborEventType.JOIN
        assert events[0].observer == 0
        assert events[0].subject == 5
        assert table.live_neighbors() == [5]

    def test_subsequent_beacons_are_not_joins(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        events = table.observe_beacon(5, 1.0, 1.0, 2.0)
        assert events == []

    def test_beacon_after_failure_is_a_fresh_join(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        table.expire(10.0)
        events = table.observe_beacon(5, 11.0, 1.0, 2.0)
        assert [e.event_type for e in events] == [NeighborEventType.JOIN]


class TestLeaveDetection:
    def test_missing_beacons_trigger_leave(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        assert table.expire(2.0) == []
        events = table.expire(3.5)
        assert [e.event_type for e in events] == [NeighborEventType.LEAVE]
        assert table.live_neighbors() == []

    def test_leave_reported_only_once(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        table.expire(10.0)
        assert table.expire(20.0) == []

    def test_fresh_beacons_prevent_leave(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        table.observe_beacon(5, 3.0, 1.0, 2.0)
        assert table.expire(4.0) == []


class TestAngleChangeDetection:
    def test_small_drift_ignored(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        assert table.observe_beacon(5, 1.0, 1.05, 2.0) == []

    def test_large_drift_reported(self, table):
        table.observe_beacon(5, 0.0, 1.0, 2.0)
        events = table.observe_beacon(5, 1.0, 1.5, 2.0)
        assert [e.event_type for e in events] == [NeighborEventType.ANGLE_CHANGE]
        assert events[0].direction == pytest.approx(1.5)
        assert table.direction_of(5) == pytest.approx(1.5)

    def test_wraparound_drift_detected(self, table):
        table.observe_beacon(5, 0.0, 0.05, 2.0)
        events = table.observe_beacon(5, 1.0, 2 * 3.141592653589793 - 0.2, 2.0)
        assert [e.event_type for e in events] == [NeighborEventType.ANGLE_CHANGE]


class TestAccessors:
    def test_direction_of_unknown_or_failed(self, table):
        assert table.direction_of(9) is None
        table.observe_beacon(9, 0.0, 0.4, 1.0)
        table.expire(100.0)
        assert table.direction_of(9) is None

    def test_event_flags(self, table):
        (join,) = table.observe_beacon(1, 0.0, 0.0, 1.0)
        assert join.is_join and not join.is_leave and not join.is_angle_change
        (leave,) = table.expire(100.0)
        assert leave.is_leave
