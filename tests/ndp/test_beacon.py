"""Tests for the beaconing protocol (repro.ndp.beacon) on the simulator."""

import pytest

from repro.geometry import Point
from repro.ndp.beacon import BeaconProtocol
from repro.ndp.events import NeighborEventType
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel
from repro.sim.engine import SimulationEngine


def _pair_network(distance=1.0, max_range=2.0):
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points([Point(0, 0), Point(distance, 0)], power_model=power_model)


def _run(network, horizon, beacon_power=None, interval=1.0):
    engine = SimulationEngine(network)
    protocols = {}
    for node in network.nodes:
        power = beacon_power if beacon_power is not None else network.power_model.max_power
        protocol = BeaconProtocol(
            node.node_id,
            beacon_power=power,
            beacon_interval=interval,
            horizon=horizon,
        )
        protocols[node.node_id] = protocol
        engine.register(node.node_id, protocol)
    engine.run_to_completion()
    return engine, protocols


class TestBeaconing:
    def test_neighbors_discovered_via_join_events(self):
        network = _pair_network()
        _, protocols = _run(network, horizon=5.0)
        for protocol in protocols.values():
            joins = [e for e in protocol.events if e.event_type is NeighborEventType.JOIN]
            assert len(joins) == 1
        assert protocols[0].table.live_neighbors() == [1]

    def test_beacons_sent_until_horizon(self):
        network = _pair_network()
        _, protocols = _run(network, horizon=5.0, interval=1.0)
        for protocol in protocols.values():
            assert 4 <= protocol.beacons_sent <= 6

    def test_out_of_range_nodes_never_join(self):
        network = _pair_network(distance=3.0, max_range=2.0)
        _, protocols = _run(network, horizon=5.0)
        assert protocols[0].table.live_neighbors() == []

    def test_weak_beacon_power_misses_neighbors(self):
        network = _pair_network(distance=1.0)
        weak = network.power_model.required_power(0.5)
        _, protocols = _run(network, horizon=5.0, beacon_power=weak)
        assert protocols[0].table.live_neighbors() == []

    def test_crash_produces_leave_event(self):
        network = _pair_network()
        engine = SimulationEngine(network)
        protocols = {}
        for node in network.nodes:
            protocol = BeaconProtocol(
                node.node_id,
                beacon_power=network.power_model.max_power,
                beacon_interval=1.0,
                miss_threshold=2,
                horizon=20.0,
            )
            protocols[node.node_id] = protocol
            engine.register(node.node_id, protocol)
        # Let the nodes discover each other, then crash node 1 and keep running.
        engine.run(until=3.0)
        network.node(1).crash()
        engine.run_to_completion()
        leaves = [e for e in protocols[0].events if e.event_type is NeighborEventType.LEAVE]
        assert len(leaves) == 1
        assert leaves[0].subject == 1

    def test_event_callback_invoked(self):
        network = _pair_network()
        seen = []
        engine = SimulationEngine(network)
        protocol = BeaconProtocol(
            0,
            beacon_power=network.power_model.max_power,
            horizon=3.0,
            on_event=seen.append,
        )
        other = BeaconProtocol(1, beacon_power=network.power_model.max_power, horizon=3.0)
        engine.register(0, protocol)
        engine.register(1, other)
        engine.run_to_completion()
        assert seen == protocol.events

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            BeaconProtocol(0, beacon_power=1.0, beacon_interval=0.0)
