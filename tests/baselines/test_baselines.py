"""Tests for the baseline graph families (repro.baselines)."""

import math

import networkx as nx
import pytest

from repro.baselines import (
    delaunay_graph,
    euclidean_mst,
    gabriel_graph,
    max_power_graph,
    relative_neighborhood_graph,
    theta_graph,
    yao_graph,
)
from repro.geometry import Point
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel


def _network(points, max_range=10.0):
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points(points, power_model=power_model)


class TestMaxPower:
    def test_equals_network_reference_graph(self, small_random_network):
        assert set(max_power_graph(small_random_network).edges) == set(
            small_random_network.max_power_graph().edges
        )


class TestRelativeNeighborhoodGraph:
    def test_blocked_edge_removed(self):
        # Node 2 sits between 0 and 1 and is closer to both than they are to
        # each other, so the (0, 1) edge is not in the RNG.
        network = _network([Point(0, 0), Point(2, 0), Point(1, 0.1)])
        rng = relative_neighborhood_graph(network)
        assert not rng.has_edge(0, 1)
        assert rng.has_edge(0, 2)
        assert rng.has_edge(1, 2)

    def test_subgraph_of_gabriel_and_of_gr(self, small_random_network):
        rng = relative_neighborhood_graph(small_random_network)
        gabriel = gabriel_graph(small_random_network)
        reference = small_random_network.max_power_graph()
        assert set(rng.edges) <= set(gabriel.edges)
        assert set(rng.edges) <= set(reference.edges)

    def test_preserves_connectivity_of_gr(self, small_random_network):
        from repro.core.analysis import preserves_connectivity

        rng = relative_neighborhood_graph(small_random_network)
        assert preserves_connectivity(small_random_network.max_power_graph(), rng)

    def test_respect_max_range_flag(self):
        network = _network([Point(0, 0), Point(5, 0)], max_range=1.0)
        assert relative_neighborhood_graph(network).number_of_edges() == 0
        assert relative_neighborhood_graph(network, respect_max_range=False).number_of_edges() == 1


class TestGabrielGraph:
    def test_blocked_edge_removed(self):
        # Node 2 lies inside the disk with diameter (0, 1).
        network = _network([Point(0, 0), Point(2, 0), Point(1, 0.5)])
        gabriel = gabriel_graph(network)
        assert not gabriel.has_edge(0, 1)

    def test_unblocked_edge_kept(self):
        network = _network([Point(0, 0), Point(2, 0), Point(1, 3.0)])
        gabriel = gabriel_graph(network)
        assert gabriel.has_edge(0, 1)

    def test_contains_mst(self, small_random_network):
        gabriel = gabriel_graph(small_random_network)
        mst = euclidean_mst(small_random_network)
        assert set(map(frozenset, mst.edges)) <= set(map(frozenset, gabriel.edges))


class TestEuclideanMst:
    def test_is_spanning_tree(self, small_random_network):
        mst = euclidean_mst(small_random_network)
        assert mst.number_of_nodes() == len(small_random_network)
        assert mst.number_of_edges() == len(small_random_network) - 1
        assert nx.is_connected(mst)

    def test_minimum_total_length(self, small_random_network):
        mst = euclidean_mst(small_random_network)
        rng = relative_neighborhood_graph(small_random_network, respect_max_range=False)
        mst_length = sum(data["length"] for _, _, data in mst.edges(data=True))
        rng_length = sum(data["length"] for _, _, data in rng.edges(data=True))
        assert mst_length <= rng_length + 1e-6

    def test_respect_max_range_gives_forest_per_component(self):
        network = _network([Point(0, 0), Point(1, 0), Point(50, 0), Point(51, 0)], max_range=2.0)
        forest = euclidean_mst(network, respect_max_range=True)
        assert forest.number_of_edges() == 2
        assert nx.number_connected_components(forest) == 2


class TestConeFamilies:
    def test_yao_graph_degree_bounded_by_outgoing_cones(self):
        network = _network([Point(0, 0)] + [Point(math.cos(a), math.sin(a)) for a in
                                            [i * math.pi / 8 for i in range(16)]], max_range=5.0)
        yao = yao_graph(network, k=6)
        # Node 0 selects at most one neighbour per cone; its incident edges can
        # exceed 6 only via other nodes' selections, which cannot happen here
        # because node 0 is the nearest neighbour of every ring node.
        assert yao.degree[0] <= 16
        assert yao.number_of_edges() >= 6

    def test_yao_keeps_nearest_per_cone(self):
        network = _network([Point(0, 0), Point(1, 0), Point(2, 0.05)], max_range=5.0)
        yao = yao_graph(network, k=4)
        assert yao.has_edge(0, 1)

    def test_theta_graph_connected_on_random_networks(self, small_random_network):
        from repro.core.analysis import preserves_connectivity

        theta = theta_graph(small_random_network, k=8)
        assert preserves_connectivity(small_random_network.max_power_graph(), theta)

    def test_invalid_cone_count_rejected(self, small_random_network):
        with pytest.raises(ValueError):
            yao_graph(small_random_network, k=0)
        with pytest.raises(ValueError):
            theta_graph(small_random_network, k=0)

    def test_yao_sparser_than_max_power(self, small_random_network):
        yao = yao_graph(small_random_network, k=6)
        assert yao.number_of_edges() < small_random_network.max_power_graph().number_of_edges()


class TestDelaunay:
    def test_triangulation_edge_count_bound(self, small_random_network):
        graph = delaunay_graph(small_random_network, respect_max_range=False)
        n = graph.number_of_nodes()
        # A planar triangulation has at most 3n - 6 edges.
        assert graph.number_of_edges() <= 3 * n - 6

    def test_range_restriction_drops_long_edges(self, small_random_network):
        unrestricted = delaunay_graph(small_random_network, respect_max_range=False)
        restricted = delaunay_graph(small_random_network, respect_max_range=True)
        assert set(restricted.edges) <= set(unrestricted.edges)
        for u, v, data in restricted.edges(data=True):
            assert data["length"] <= small_random_network.power_model.max_range + 1e-9

    def test_degenerate_inputs_fall_back(self):
        two_nodes = _network([Point(0, 0), Point(1, 0)])
        graph = delaunay_graph(two_nodes)
        assert graph.number_of_edges() == 1
        collinear = _network([Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)])
        assert delaunay_graph(collinear).number_of_nodes() == 4
