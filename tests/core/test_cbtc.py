"""Tests for the basic CBTC(alpha) growing phase (repro.core.cbtc)."""

import math

import pytest

from repro.core.cbtc import run_cbtc, run_cbtc_for_node
from repro.geometry import Point, translate_polar
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel
from repro.radio.power import GeometricSchedule, LinearSchedule

ALPHA = 5 * math.pi / 6


def _network(points, max_range=1.0):
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points(points, power_model=power_model)


class TestSingleNode:
    def test_isolated_node_becomes_boundary_node(self):
        network = _network([Point(0, 0), Point(10, 10)])
        state = run_cbtc_for_node(network, 0, ALPHA)
        assert state.neighbors == {}
        assert state.used_max_power
        assert state.is_boundary
        assert state.final_power == pytest.approx(network.power_model.max_power)

    def test_invalid_alpha_rejected(self):
        network = _network([Point(0, 0)])
        with pytest.raises(ValueError):
            run_cbtc_for_node(network, 0, 0.0)

    def test_stops_at_minimal_power_with_surrounding_neighbors(self):
        # A centre node surrounded by three close nodes 2*pi/3 apart and one
        # far node: the far node must not be discovered because coverage is
        # complete at the close nodes' power.
        centre = Point(0, 0)
        close = [translate_polar(centre, angle, 0.2) for angle in (0.0, 2 * math.pi / 3, 4 * math.pi / 3)]
        far = translate_polar(centre, 1.0, 0.9)
        network = _network([centre] + close + [far])
        state = run_cbtc_for_node(network, 0, ALPHA)
        assert set(state.neighbor_ids) == {1, 2, 3}
        assert state.final_power == pytest.approx(network.power_model.required_power(0.2))
        assert not state.is_boundary
        assert not state.has_gap()

    def test_grows_until_gap_closed(self):
        # Three neighbours: two close ones covering only part of the circle
        # and a far one that is needed to close the remaining alpha-gap
        # (directions 0, pi/2 and 4.0 leave no gap larger than 5*pi/6).
        centre = Point(0, 0)
        near_a = translate_polar(centre, 0.0, 0.1)
        near_b = translate_polar(centre, math.pi / 2, 0.1)
        far = translate_polar(centre, 4.0, 0.8)
        network = _network([centre, near_a, near_b, far])
        state = run_cbtc_for_node(network, 0, ALPHA)
        assert 3 in state.neighbors
        assert state.final_power == pytest.approx(network.power_model.required_power(0.8))

    def test_boundary_node_with_one_sided_neighbors(self):
        # All other nodes lie in a narrow cone: the node can never close the
        # gap and must end up at maximum power as a boundary node.
        centre = Point(0, 0)
        others = [translate_polar(centre, 0.05 * i, 0.3 + 0.1 * i) for i in range(4)]
        network = _network([centre] + others)
        state = run_cbtc_for_node(network, 0, ALPHA)
        assert state.used_max_power
        assert state.is_boundary
        assert len(state.neighbors) == 4

    def test_discovery_power_tags_are_monotone_in_distance(self):
        centre = Point(0, 0)
        ring = [translate_polar(centre, i * math.pi / 3, 0.2 + 0.1 * i) for i in range(6)]
        network = _network([centre] + ring)
        state = run_cbtc_for_node(network, 0, math.pi / 3)
        records = sorted(state.neighbors.values(), key=lambda r: r.distance)
        tags = [r.discovery_power for r in records]
        assert tags == sorted(tags)
        for record in records:
            assert record.discovery_power >= record.required_power - 1e-9

    def test_initial_power_skips_lower_levels(self):
        centre = Point(0, 0)
        near = translate_polar(centre, 0.0, 0.1)
        far = translate_polar(centre, math.pi, 0.9)
        network = _network([centre, near, far])
        power_model = network.power_model
        state = run_cbtc_for_node(network, 0, ALPHA, initial_power=power_model.required_power(0.5))
        # Starting from a power that already covers 0.1, both nodes are found,
        # and the reported rounds only count levels at or above the start.
        assert set(state.neighbor_ids) == {1, 2}
        assert all(r.discovery_power >= power_model.required_power(0.5) - 1e-9 for r in state.neighbors.values())

    def test_directions_match_geometry(self):
        centre = Point(0, 0)
        east = Point(0.5, 0)
        north = Point(0, 0.5)
        network = _network([centre, east, north])
        state = run_cbtc_for_node(network, 0, ALPHA)
        assert state.neighbors[1].direction == pytest.approx(0.0)
        assert state.neighbors[2].direction == pytest.approx(math.pi / 2)


class TestSchedules:
    def test_geometric_schedule_overestimates_but_finds_same_neighbors_or_more(self):
        centre = Point(0, 0)
        ring = [translate_polar(centre, i * 2 * math.pi / 5, 0.3 + 0.05 * i) for i in range(5)]
        network = _network([centre] + ring)
        exhaustive = run_cbtc_for_node(network, 0, ALPHA)
        doubling = run_cbtc_for_node(network, 0, ALPHA, schedule=GeometricSchedule())
        assert set(exhaustive.neighbor_ids) <= set(doubling.neighbor_ids)
        assert doubling.final_power >= exhaustive.final_power - 1e-9

    def test_linear_schedule_with_few_steps_still_terminates(self):
        network = _network([Point(0, 0), Point(0.3, 0), Point(0, 0.4), Point(-0.5, -0.1)])
        state = run_cbtc_for_node(network, 0, ALPHA, schedule=LinearSchedule(steps=2))
        assert state.final_power <= network.power_model.max_power + 1e-9


class TestWholeNetwork:
    def test_run_cbtc_covers_every_alive_node(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        assert sorted(outcome.node_ids()) == small_random_network.node_ids

    def test_dead_nodes_excluded_and_not_discovered(self, small_random_network):
        small_random_network.node(3).crash()
        outcome = run_cbtc(small_random_network, ALPHA)
        assert 3 not in outcome.states
        for state in outcome:
            assert 3 not in state.neighbors

    def test_every_non_boundary_node_has_no_gap(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        for state in outcome:
            assert state.is_boundary or not state.has_gap()

    def test_neighbors_are_within_final_power(self, small_random_network):
        power_model = small_random_network.power_model
        outcome = run_cbtc(small_random_network, ALPHA)
        for state in outcome:
            for record in state.neighbors.values():
                assert record.required_power <= state.final_power + 1e-6
                assert power_model.can_reach(record.distance)

    def test_smaller_alpha_needs_no_less_power(self, small_random_network):
        wide = run_cbtc(small_random_network, 5 * math.pi / 6)
        narrow = run_cbtc(small_random_network, 2 * math.pi / 3)
        for node_id in wide.node_ids():
            assert narrow.state(node_id).final_power >= wide.state(node_id).final_power - 1e-9
