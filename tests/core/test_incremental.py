"""Tests for the incremental topology pipeline (repro.core.incremental).

The contract under test: ``update_topology`` / ``IncrementalTopologyBuilder``
produce results **byte-identical** (via ``repro.io`` serialization) to a
from-scratch ``build_topology`` after any sequence of moves, crashes,
recoveries and joins.
"""

import math
import random

import pytest

from repro.core.incremental import IncrementalTopologyBuilder
from repro.core.pipeline import OptimizationConfig, build_topology, update_topology
from repro.core.reconfiguration import ReconfigurationManager
from repro.geometry import Point
from repro.io.results import results_to_json
from repro.net.node import Node
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6

CONFIGS = [
    OptimizationConfig.none(),
    OptimizationConfig.shrink_only(),
    OptimizationConfig.all(),
]


def _drift_network(node_count=120, seed=3):
    side = 1500.0 * math.sqrt(node_count / 100.0)
    network = random_uniform_placement(
        PlacementConfig(node_count=node_count, width=side, height=side), seed=seed
    )
    return network, side


def _perturb(network, side, rng, movers=4):
    dirty = set()
    alive = [n.node_id for n in network.nodes if n.alive]
    for node_id in rng.sample(alive, min(movers, len(alive))):
        node = network.node(node_id)
        node.move_to(
            Point(
                min(max(node.position.x + rng.uniform(-80.0, 80.0), 0.0), side),
                min(max(node.position.y + rng.uniform(-80.0, 80.0), 0.0), side),
            )
        )
        dirty.add(node_id)
    return dirty


class TestUpdateTopologyEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_moves_splice_byte_identically(self, config):
        alpha = 2 * math.pi / 3 if config.asymmetric_removal else ALPHA
        network, side = _drift_network()
        rng = random.Random(0)
        result = update_topology(network, alpha, None, [], config=config)
        assert results_to_json(result) == results_to_json(
            build_topology(network, alpha, config=config)
        )
        for _ in range(5):
            dirty = _perturb(network, side, rng)
            result = update_topology(network, alpha, result, dirty, config=config)
            assert results_to_json(result) == results_to_json(
                build_topology(network, alpha, config=config)
            )

    def test_crash_recover_and_join_splice_byte_identically(self):
        network, side = _drift_network()
        rng = random.Random(1)
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.all())
        victim = network.node_ids[7]
        schedule = [
            lambda: (network.node(victim).crash(), {victim})[1],
            lambda: _perturb(network, side, rng),
            lambda: (network.node(victim).recover(), {victim})[1],
            lambda: (
                network.add_node(Node(node_id=9000, position=Point(side / 2, side / 2))),
                {9000},
            )[1],
            lambda: _perturb(network, side, rng) | {9000},
        ]
        for step in schedule:
            dirty = step()
            result = update_topology(
                network, ALPHA, result, dirty, config=OptimizationConfig.all()
            )
            assert results_to_json(result) == results_to_json(
                build_topology(network, ALPHA, config=OptimizationConfig.all())
            )

    def test_empty_dirty_set_returns_previous_result(self):
        network, _ = _drift_network(node_count=40)
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.none())
        again = update_topology(network, ALPHA, result, [], config=OptimizationConfig.none())
        assert again is result

    def test_builder_state_never_leaks_into_serialization(self):
        network, _ = _drift_network(node_count=30)
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.none())
        assert hasattr(result, "incremental_builder")
        assert "incremental_builder" not in results_to_json(result)

    def test_config_change_reprimes_with_full_build(self):
        network, _ = _drift_network(node_count=40)
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.none())
        builder = result.incremental_builder
        switched = update_topology(
            network, ALPHA, result, [], config=OptimizationConfig.shrink_only()
        )
        assert switched.incremental_builder is not builder
        assert results_to_json(switched) == results_to_json(
            build_topology(network, ALPHA, config=OptimizationConfig.shrink_only())
        )


class TestFallbacks:
    def test_spatial_index_disabled_falls_back_to_full_rebuild(self):
        network, side = _drift_network(node_count=40)
        network.use_spatial_index = False
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.none())
        builder = result.incremental_builder
        dirty = _perturb(network, side, random.Random(2))
        updated = update_topology(network, ALPHA, result, dirty, config=OptimizationConfig.none())
        assert builder.full_builds == 2
        assert builder.incremental_updates == 0
        assert results_to_json(updated) == results_to_json(
            build_topology(network, ALPHA, config=OptimizationConfig.none())
        )

    def test_large_dirty_region_falls_back_to_full_rebuild(self):
        network, side = _drift_network(node_count=40)
        result = update_topology(network, ALPHA, None, [], config=OptimizationConfig.none())
        builder = result.incremental_builder
        dirty = {node.node_id for node in network.nodes}
        for node_id in list(dirty):
            node = network.node(node_id)
            node.move_to(Point(node.position.x + 5.0, node.position.y))
        updated = update_topology(network, ALPHA, result, dirty, config=OptimizationConfig.none())
        assert builder.full_builds == 2
        assert results_to_json(updated) == results_to_json(
            build_topology(network, ALPHA, config=OptimizationConfig.none())
        )


class TestManagerDrivenBuilder:
    """The builder consuming reconfiguration-manager-maintained states."""

    def test_manager_outcome_splice_matches_full_build(self):
        network, side = _drift_network(node_count=150, seed=11)
        manager = ReconfigurationManager(network, ALPHA)
        builder = IncrementalTopologyBuilder(
            network, ALPHA, config=OptimizationConfig.shrink_only()
        )
        dirty = network.register_dirty_listener()
        builder.rebuild(outcome=manager.outcome)
        rng = random.Random(5)
        for _ in range(4):
            _perturb(network, side, rng, movers=6)
            manager.synchronize(max_iterations=40)
            result = builder.update(dirty | manager._touched, outcome=manager.outcome)
            manager._touched.clear()
            dirty.clear()
            full = build_topology(
                network,
                ALPHA,
                config=OptimizationConfig.shrink_only(),
                outcome=manager.outcome,
            )
            assert results_to_json(result) == results_to_json(full)
        assert builder.incremental_updates >= 1


class TestModeSwitching:
    def test_switching_outcome_modes_reprimes_instead_of_mixing(self):
        network, side = _drift_network(node_count=60)
        manager = ReconfigurationManager(network, ALPHA)
        builder = IncrementalTopologyBuilder(network, ALPHA, config=OptimizationConfig.none())
        builder.rebuild(outcome=manager.outcome)
        dirty = _perturb(network, side, random.Random(8))
        manager.synchronize()
        builder.update(dirty | manager._touched, outcome=manager.outcome)
        builds_before = builder.full_builds
        # Same builder, now without an external outcome: must re-prime (its
        # raw snapshot describes manager states, not self-run CBTC) and then
        # still match a from-scratch build.
        result = builder.update({network.node_ids[0]})
        assert builder.full_builds == builds_before + 1
        assert results_to_json(result) == results_to_json(
            build_topology(network, ALPHA, config=OptimizationConfig.none())
        )


class TestManagerHygiene:
    def test_counters_stay_monotone_across_builder_replacement(self):
        network, side = _drift_network(node_count=40)
        manager = ReconfigurationManager(network, ALPHA)
        manager.synchronize()
        manager.topology()
        _perturb(network, side, random.Random(3))
        manager.synchronize()
        manager.topology()
        builds = manager.topology_builds
        updates = manager.incremental_updates
        _perturb(network, side, random.Random(4))
        manager.synchronize()
        manager.topology(incremental=False)  # discards the builder
        assert manager.topology_builds == builds + 1
        assert manager.incremental_updates == updates

    def test_close_detaches_the_dirty_listener(self):
        network, side = _drift_network(node_count=20)
        manager = ReconfigurationManager(network, ALPHA)
        manager.close()
        _perturb(network, side, random.Random(5))
        assert manager._net_dirty == set()
        manager.close()  # idempotent
