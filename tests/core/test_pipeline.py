"""Tests for the build_topology pipeline and OptimizationConfig."""

import math

import pytest

from repro.core.analysis import preserves_connectivity
from repro.core.cbtc import run_cbtc
from repro.core.pipeline import OptimizationConfig, build_topology

ALPHA = 5 * math.pi / 6
ALPHA_NARROW = 2 * math.pi / 3


class TestOptimizationConfig:
    def test_factory_methods(self):
        assert OptimizationConfig.none() == OptimizationConfig()
        assert OptimizationConfig.all().shrink_back
        assert OptimizationConfig.all().asymmetric_removal
        assert OptimizationConfig.all().pairwise_removal
        assert OptimizationConfig.shrink_only() == OptimizationConfig(shrink_back=True)
        shrink_asym = OptimizationConfig.shrink_and_asymmetric()
        assert shrink_asym.shrink_back and shrink_asym.asymmetric_removal and not shrink_asym.pairwise_removal

    def test_describe(self):
        assert OptimizationConfig.none().describe() == "basic"
        assert OptimizationConfig.all().describe() == "shrink-back+asymmetric-removal+pairwise-removal"


class TestBuildTopology:
    def test_basic_equals_symmetric_closure_of_run_cbtc(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        from repro.core.topology import symmetric_closure_graph

        direct = symmetric_closure_graph(outcome, small_random_network)
        result = build_topology(small_random_network, ALPHA)
        assert set(map(frozenset, result.graph.edges)) == set(map(frozenset, direct.edges))

    def test_each_optimization_level_is_no_denser(self, small_random_network):
        basic = build_topology(small_random_network, ALPHA_NARROW, config=OptimizationConfig.none())
        op1 = build_topology(small_random_network, ALPHA_NARROW, config=OptimizationConfig.shrink_only())
        op12 = build_topology(small_random_network, ALPHA_NARROW, config=OptimizationConfig.shrink_and_asymmetric())
        all_ops = build_topology(small_random_network, ALPHA_NARROW, config=OptimizationConfig.all())
        assert basic.edge_count >= op1.edge_count >= op12.edge_count >= all_ops.edge_count
        assert basic.average_radius() >= op1.average_radius() - 1e-9
        assert op1.average_radius() >= op12.average_radius() - 1e-9

    def test_every_level_preserves_connectivity(self, small_random_network):
        reference = small_random_network.max_power_graph()
        for config in (
            OptimizationConfig.none(),
            OptimizationConfig.shrink_only(),
            OptimizationConfig.shrink_and_asymmetric(),
            OptimizationConfig.all(),
        ):
            for alpha in (ALPHA, ALPHA_NARROW):
                result = build_topology(small_random_network, alpha, config=config)
                assert preserves_connectivity(reference, result.graph), (config, alpha)

    def test_asymmetric_removal_silently_skipped_above_threshold(self, small_random_network):
        with_asym = build_topology(
            small_random_network, ALPHA, config=OptimizationConfig(shrink_back=True, asymmetric_removal=True)
        )
        without_asym = build_topology(
            small_random_network, ALPHA, config=OptimizationConfig(shrink_back=True, asymmetric_removal=False)
        )
        assert set(map(frozenset, with_asym.graph.edges)) == set(map(frozenset, without_asym.graph.edges))

    def test_reusing_precomputed_outcome_matches_fresh_run(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        reused = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all(), outcome=outcome)
        fresh = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all())
        assert set(map(frozenset, reused.graph.edges)) == set(map(frozenset, fresh.graph.edges))

    def test_label_mentions_alpha_and_optimizations(self, small_random_network):
        result = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all())
        assert "shrink-back" in result.label
        assert f"{ALPHA:.4f}" in result.label

    def test_node_power_is_consistent_with_radius(self, small_random_network):
        result = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all())
        power_model = small_random_network.power_model
        for node_id, radius in result.node_radius.items():
            assert result.node_power[node_id] == pytest.approx(power_model.required_power(radius))

    def test_pairwise_remove_all_mode(self, small_random_network):
        conservative = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all())
        aggressive = build_topology(
            small_random_network,
            ALPHA,
            config=OptimizationConfig(shrink_back=True, asymmetric_removal=True, pairwise_removal=True, pairwise_remove_all=True),
        )
        assert aggressive.edge_count <= conservative.edge_count
        assert preserves_connectivity(small_random_network.max_power_graph(), aggressive.graph)
