"""Tests for repro.core.state."""

import math

import pytest

from repro.core.state import CBTCOutcome, NeighborRecord, NodeState


def _record(neighbor, direction, distance=1.0, required=1.0, discovery=1.0):
    return NeighborRecord(
        neighbor=neighbor,
        direction=direction,
        required_power=required,
        discovery_power=discovery,
        distance=distance,
    )


class TestNodeState:
    def test_add_neighbor_keeps_earliest_discovery_tag(self):
        state = NodeState(node_id=0, alpha=math.pi)
        state.add_neighbor(_record(1, 0.0, discovery=4.0))
        state.add_neighbor(_record(1, 0.0, discovery=2.0))
        assert state.neighbors[1].discovery_power == 2.0
        state.add_neighbor(_record(1, 0.0, discovery=3.0))
        assert state.neighbors[1].discovery_power == 2.0

    def test_remove_neighbor(self):
        state = NodeState(node_id=0, alpha=math.pi)
        state.add_neighbor(_record(1, 0.0))
        removed = state.remove_neighbor(1)
        assert removed.neighbor == 1
        assert state.remove_neighbor(1) is None

    def test_gap_detection(self):
        state = NodeState(node_id=0, alpha=math.pi)
        assert state.has_gap()
        state.add_neighbor(_record(1, 0.0))
        assert state.has_gap()
        state.add_neighbor(_record(2, math.pi))
        assert not state.has_gap()
        assert state.largest_gap() == pytest.approx(math.pi)

    def test_boundary_requires_max_power_and_gap(self):
        state = NodeState(node_id=0, alpha=math.pi / 2)
        state.add_neighbor(_record(1, 0.0))
        state.used_max_power = True
        assert state.is_boundary
        state.add_neighbor(_record(2, math.pi / 2))
        state.add_neighbor(_record(3, math.pi))
        state.add_neighbor(_record(4, 3 * math.pi / 2))
        assert not state.is_boundary

    def test_growth_radius_and_power(self):
        state = NodeState(node_id=0, alpha=math.pi)
        assert state.growth_radius() == 0.0
        assert state.power_to_reach_all() == 0.0
        state.add_neighbor(_record(1, 0.0, distance=2.0, required=4.0))
        state.add_neighbor(_record(2, 1.0, distance=3.0, required=9.0))
        assert state.growth_radius() == pytest.approx(3.0)
        assert state.power_to_reach_all() == pytest.approx(9.0)

    def test_copy_is_independent(self):
        state = NodeState(node_id=0, alpha=math.pi)
        state.add_neighbor(_record(1, 0.0))
        clone = state.copy()
        clone.remove_neighbor(1)
        assert 1 in state.neighbors

    def test_directions_and_neighbor_ids(self):
        state = NodeState(node_id=0, alpha=math.pi)
        state.add_neighbor(_record(3, 1.0))
        state.add_neighbor(_record(1, 2.0))
        assert state.neighbor_ids == [1, 3]
        assert sorted(state.directions) == [1.0, 2.0]

    def test_record_for(self):
        state = NodeState(node_id=0, alpha=math.pi)
        state.add_neighbor(_record(5, 0.3))
        assert state.record_for(5).direction == 0.3
        with pytest.raises(KeyError):
            state.record_for(6)


class TestCBTCOutcome:
    def _outcome(self):
        outcome = CBTCOutcome(alpha=math.pi)
        for node_id in range(3):
            outcome.states[node_id] = NodeState(node_id=node_id, alpha=math.pi)
        outcome.states[0].add_neighbor(_record(1, 0.0))
        outcome.states[1].add_neighbor(_record(0, math.pi))
        outcome.states[2].used_max_power = True
        return outcome

    def test_iteration_and_len(self):
        outcome = self._outcome()
        assert len(outcome) == 3
        assert {state.node_id for state in outcome} == {0, 1, 2}

    def test_neighbor_pairs(self):
        outcome = self._outcome()
        assert set(outcome.neighbor_pairs()) == {(0, 1), (1, 0)}

    def test_boundary_nodes(self):
        outcome = self._outcome()
        assert outcome.boundary_nodes() == [2]

    def test_copy_is_deep(self):
        outcome = self._outcome()
        clone = outcome.copy()
        clone.state(0).remove_neighbor(1)
        assert 1 in outcome.state(0).neighbors
