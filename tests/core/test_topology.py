"""Tests for repro.core.topology (N_alpha, E_alpha, E^-_alpha construction)."""

import math

import pytest

from repro.core.cbtc import run_cbtc
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState
from repro.core.topology import (
    neighbor_digraph,
    per_node_radius,
    symmetric_closure_graph,
    symmetric_subset_graph,
    topology_from_outcome,
)
from repro.geometry import Point
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel

ALPHA = 5 * math.pi / 6


def _manual_outcome():
    """A hand-built outcome with one symmetric and one asymmetric relation."""
    outcome = CBTCOutcome(alpha=ALPHA)
    for node_id in range(3):
        outcome.states[node_id] = NodeState(node_id=node_id, alpha=ALPHA)

    def record(neighbor, distance):
        return NeighborRecord(
            neighbor=neighbor,
            direction=0.0,
            required_power=distance**2,
            discovery_power=distance**2,
            distance=distance,
        )

    # 0 <-> 1 symmetric; 2 -> 0 asymmetric.
    outcome.states[0].add_neighbor(record(1, 1.0))
    outcome.states[1].add_neighbor(record(0, 1.0))
    outcome.states[2].add_neighbor(record(0, 2.0))
    return outcome


def _matching_network():
    power_model = PowerModel(propagation=PathLossModel(), max_range=3.0)
    return Network.from_points([Point(0, 0), Point(1, 0), Point(-2, 0)], power_model=power_model)


class TestGraphConstruction:
    def test_neighbor_digraph_edges(self):
        digraph = neighbor_digraph(_manual_outcome())
        assert set(digraph.edges) == {(0, 1), (1, 0), (2, 0)}
        assert digraph.edges[2, 0]["length"] == pytest.approx(2.0)

    def test_symmetric_closure_includes_asymmetric_edge(self):
        graph = symmetric_closure_graph(_manual_outcome())
        assert set(map(tuple, map(sorted, graph.edges))) == {(0, 1), (0, 2)}

    def test_symmetric_subset_drops_asymmetric_edge(self):
        graph = symmetric_subset_graph(_manual_outcome())
        assert set(map(tuple, map(sorted, graph.edges))) == {(0, 1)}

    def test_all_nodes_present_even_if_isolated(self):
        closure = symmetric_closure_graph(_manual_outcome())
        subset = symmetric_subset_graph(_manual_outcome())
        assert set(closure.nodes) == {0, 1, 2}
        assert set(subset.nodes) == {0, 1, 2}

    def test_positions_attached_when_network_given(self):
        graph = symmetric_closure_graph(_manual_outcome(), _matching_network())
        assert graph.nodes[2]["pos"] == (-2.0, 0.0)


class TestTopologyResult:
    def test_per_node_radius(self):
        network = _matching_network()
        graph = symmetric_closure_graph(_manual_outcome(), network)
        radii = per_node_radius(graph, network)
        assert radii[0] == pytest.approx(2.0)  # farthest neighbour of 0 is node 2
        assert radii[1] == pytest.approx(1.0)
        assert radii[2] == pytest.approx(2.0)

    def test_topology_from_outcome_closure_metrics(self):
        network = _matching_network()
        result = topology_from_outcome(_manual_outcome(), network, symmetric="closure")
        assert result.edge_count == 2
        assert result.average_degree() == pytest.approx(4 / 3)
        assert result.average_radius() == pytest.approx((2.0 + 1.0 + 2.0) / 3)
        assert result.node_power[0] == pytest.approx(4.0)
        assert result.max_radius() == pytest.approx(2.0)
        assert result.total_power() == pytest.approx(4.0 + 1.0 + 4.0)
        assert result.degree_of(0) == 2

    def test_topology_from_outcome_subset(self):
        network = _matching_network()
        result = topology_from_outcome(_manual_outcome(), network, symmetric="subset")
        assert result.edge_count == 1
        assert result.node_radius[2] == 0.0

    def test_invalid_symmetric_mode_rejected(self):
        with pytest.raises(ValueError):
            topology_from_outcome(_manual_outcome(), _matching_network(), symmetric="bogus")

    def test_isolated_node_radius_zero(self):
        network = _matching_network()
        outcome = CBTCOutcome(alpha=ALPHA)
        for node_id in range(3):
            outcome.states[node_id] = NodeState(node_id=node_id, alpha=ALPHA)
        result = topology_from_outcome(outcome, network)
        assert result.average_radius() == 0.0
        assert result.average_degree() == 0.0


class TestAgainstRealRun:
    def test_closure_is_supergraph_of_subset(self, small_random_network):
        outcome = run_cbtc(small_random_network, 2 * math.pi / 3)
        closure = symmetric_closure_graph(outcome, small_random_network)
        subset = symmetric_subset_graph(outcome, small_random_network)
        assert set(subset.edges) <= set(closure.edges)

    def test_closure_is_subgraph_of_max_power_graph(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        closure = symmetric_closure_graph(outcome, small_random_network)
        reference = small_random_network.max_power_graph()
        for u, v in closure.edges:
            assert reference.has_edge(u, v)
