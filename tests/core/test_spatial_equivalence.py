"""Spatial-index equivalence tests.

The uniform-grid index must be a pure accelerator: every construction that
uses it (CBTC, the proximity-graph baselines, the reference graphs) has to
produce *identical* output — same edges, same float lengths, same per-node
radii/powers — as the brute-force scans it replaced.  These tests build twin
networks over the same positions, one with ``use_spatial_index=True`` and
one with ``False``, and compare outputs exactly (no tolerances).
"""

import math

import pytest

from repro.baselines import (
    euclidean_mst,
    gabriel_graph,
    relative_neighborhood_graph,
    theta_graph,
    yao_graph,
)
from repro.core.cbtc import run_cbtc
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.geometry import Point
from repro.graphs.builders import unit_disk_graph
from repro.net.network import Network
from repro.net.node import Node
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6

SEEDS = [0, 1, 2, 13]


def _twin_networks(seed, node_count=40):
    """Two networks over identical positions: index-backed and brute-force."""
    base = random_uniform_placement(PlacementConfig(node_count=node_count), seed=seed)
    positions = [node.position.as_tuple() for node in base.nodes]
    indexed = Network.from_positions(positions, power_model=base.power_model, use_spatial_index=True)
    brute = Network.from_positions(positions, power_model=base.power_model, use_spatial_index=False)
    return indexed, brute


def _edge_map(graph):
    return {
        (min(u, v), max(u, v)): data.get("length")
        for u, v, data in graph.edges(data=True)
    }


def _assert_identical_graphs(left, right):
    assert set(left.nodes) == set(right.nodes)
    assert _edge_map(left) == _edge_map(right)  # exact float equality


class TestCBTCEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_outcomes_identical_with_and_without_index(self, seed):
        indexed, brute = _twin_networks(seed)
        with_index = run_cbtc(indexed, ALPHA)
        without_index = run_cbtc(brute, ALPHA)
        assert with_index.node_ids() == without_index.node_ids()
        for node_id in with_index.node_ids():
            a = with_index.state(node_id)
            b = without_index.state(node_id)
            assert a.final_power == b.final_power
            assert a.used_max_power == b.used_max_power
            assert a.rounds == b.rounds
            assert set(a.neighbors) == set(b.neighbors)
            for neighbor, record in a.neighbors.items():
                other = b.neighbors[neighbor]
                assert record.direction == other.direction
                assert record.required_power == other.required_power
                assert record.discovery_power == other.discovery_power
                assert record.distance == other.distance

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_pipeline_topologies_identical(self, seed):
        indexed, brute = _twin_networks(seed)
        a = build_topology(indexed, ALPHA, config=OptimizationConfig.all())
        b = build_topology(brute, ALPHA, config=OptimizationConfig.all())
        _assert_identical_graphs(a.graph, b.graph)
        assert a.node_radius == b.node_radius
        assert a.node_power == b.node_power

    def test_equivalence_with_dead_nodes(self):
        indexed, brute = _twin_networks(5)
        for node_id in (3, 11, 17):
            indexed.node(node_id).crash()
            brute.node(node_id).crash()
        a = build_topology(indexed, ALPHA, config=OptimizationConfig.all())
        b = build_topology(brute, ALPHA, config=OptimizationConfig.all())
        _assert_identical_graphs(a.graph, b.graph)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("respect_max_range", [True, False])
    def test_gabriel(self, seed, respect_max_range):
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(
            gabriel_graph(indexed, respect_max_range=respect_max_range),
            gabriel_graph(brute, respect_max_range=respect_max_range),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("respect_max_range", [True, False])
    def test_rng(self, seed, respect_max_range):
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(
            relative_neighborhood_graph(indexed, respect_max_range=respect_max_range),
            relative_neighborhood_graph(brute, respect_max_range=respect_max_range),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mst_range_limited(self, seed):
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(
            euclidean_mst(indexed, respect_max_range=True),
            euclidean_mst(brute, respect_max_range=True),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mst_complete_via_delaunay_candidates(self, seed):
        # Random placements have distinct pairwise distances, so the
        # Euclidean MST is unique and the Delaunay-restricted Kruskal must
        # return exactly the brute-force tree.
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(
            euclidean_mst(indexed, respect_max_range=False),
            euclidean_mst(brute, respect_max_range=False),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_yao_and_theta(self, seed):
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(yao_graph(indexed, k=6), yao_graph(brute, k=6))
        _assert_identical_graphs(theta_graph(indexed, k=6), theta_graph(brute, k=6))

    def test_mst_with_near_coincident_points_stays_connected(self):
        # Qhull classifies points closer than its merge tolerance as
        # "coplanar" and omits them from the triangulation; the Delaunay
        # fast path must fall back to the dense edge set for such inputs.
        points = [Point(0.0, 0.0), Point(1e-14, 0.0), Point(1.0, 0.5), Point(0.5, 1.0), Point(0.3, 0.4)]
        indexed = Network.from_points(points, use_spatial_index=True)
        brute = Network.from_points(points, use_spatial_index=False)
        _assert_identical_graphs(
            euclidean_mst(indexed, respect_max_range=False),
            euclidean_mst(brute, respect_max_range=False),
        )

    def test_explicit_use_index_flag_overrides_network_default(self):
        indexed, _ = _twin_networks(3)
        _assert_identical_graphs(
            gabriel_graph(indexed, use_index=False),
            gabriel_graph(indexed, use_index=True),
        )


class TestNetworkQueryEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_max_power_graph(self, seed):
        indexed, brute = _twin_networks(seed)
        _assert_identical_graphs(indexed.max_power_graph(), brute.max_power_graph())

    @pytest.mark.parametrize("radius", [0.0, 120.0, 500.0, 900.0])
    def test_neighbors_within(self, radius):
        indexed, brute = _twin_networks(7)
        for node_id in indexed.node_ids:
            assert indexed.neighbors_within(node_id, radius) == brute.neighbors_within(node_id, radius)

    @pytest.mark.parametrize("radius", [130.0, 750.0])
    def test_unit_disk_graph_custom_radius(self, radius):
        indexed, brute = _twin_networks(9)
        _assert_identical_graphs(
            unit_disk_graph(indexed, radius), unit_disk_graph(brute, radius)
        )

    def test_receivers_of_broadcast(self):
        indexed, brute = _twin_networks(4)
        max_power = indexed.power_model.max_power
        for power in (0.0, max_power / 64, max_power / 4, max_power, 2 * max_power):
            for sender in indexed.node_ids[:10]:
                assert indexed.receivers_of_broadcast(sender, power) == brute.receivers_of_broadcast(
                    sender, power
                )


class TestIndexInvalidation:
    def test_move_updates_queries(self):
        network = Network.from_points([Point(0.0, 0.0), Point(0.5, 0.0), Point(10.0, 10.0)])
        assert network.neighbors_within(0, 1.0) == [1]
        network.node(1).move_to(Point(20.0, 20.0))
        assert network.neighbors_within(0, 1.0) == []

    def test_crash_and_recover_update_queries(self):
        network = Network.from_points([Point(0.0, 0.0), Point(0.5, 0.0)])
        assert network.neighbors_within(0, 1.0) == [1]
        network.node(1).crash()
        assert network.neighbors_within(0, 1.0) == []
        network.node(1).recover()
        assert network.neighbors_within(0, 1.0) == [1]

    def test_add_and_remove_node_update_queries(self):
        network = Network.from_points([Point(0.0, 0.0)])
        assert network.neighbors_within(0, 1.0) == []
        network.add_node(Node(node_id=5, position=Point(0.25, 0.0)))
        assert network.neighbors_within(0, 1.0) == [5]
        network.remove_node(5)
        assert network.neighbors_within(0, 1.0) == []

    def test_removed_node_no_longer_invalidates(self):
        network = Network.from_points([Point(0.0, 0.0), Point(0.5, 0.0)])
        removed = network.remove_node(1)
        network.spatial_index()
        # Mutating a removed node must not touch (or poison) the network.
        removed.move_to(Point(0.1, 0.1))
        assert network._spatial_index is not None
        assert network.neighbors_within(0, 1.0) == []

    def test_copy_preserves_flag_and_isolates_index(self):
        indexed, brute = _twin_networks(2, node_count=10)
        assert indexed.copy().use_spatial_index is True
        assert brute.copy().use_spatial_index is False
        duplicate = indexed.copy()
        duplicate.node(0).move_to(Point(-1e4, -1e4))
        assert indexed.neighbors_within(0, indexed.power_model.max_range) == \
            indexed.copy().neighbors_within(0, indexed.power_model.max_range)
