"""Tests for the three optimizations of Section 3."""

import math

import pytest

from repro.core.cbtc import run_cbtc
from repro.core.constants import PAIRWISE_ANGLE_THRESHOLD
from repro.core.optimizations import (
    asymmetric_edge_removal,
    edge_id,
    pairwise_edge_removal,
    redundant_edges,
    shrink_back,
    shrink_back_node,
)
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState
from repro.core.topology import symmetric_closure_graph
from repro.core.analysis import preserves_connectivity
from repro.geometry import Point
from repro.net.network import Network
from repro.radio import PathLossModel, PowerModel

ALPHA = 5 * math.pi / 6
ALPHA_NARROW = 2 * math.pi / 3


def _network(points, max_range=1.0):
    power_model = PowerModel(propagation=PathLossModel(), max_range=max_range)
    return Network.from_points(points, power_model=power_model)


def _record(neighbor, direction, distance, discovery=None):
    return NeighborRecord(
        neighbor=neighbor,
        direction=direction,
        required_power=distance**2,
        discovery_power=discovery if discovery is not None else distance**2,
        distance=distance,
    )


class TestShrinkBack:
    def test_boundary_node_sheds_far_neighbors_that_add_no_coverage(self):
        # A boundary node that discovered a far neighbour in exactly the same
        # direction as a close one can shrink back to the close one: the far
        # node contributes nothing to the cone coverage.
        state = NodeState(node_id=0, alpha=ALPHA, used_max_power=True)
        state.add_neighbor(_record(1, 0.0, 0.2, discovery=1.0))
        state.add_neighbor(_record(2, 0.0, 0.9, discovery=4.0))
        shrunk = shrink_back_node(state)
        assert set(shrunk.neighbor_ids) == {1}
        assert shrunk.final_power == pytest.approx(0.2**2)

    def test_boundary_node_keeps_far_neighbor_that_contributes_coverage(self):
        state = NodeState(node_id=0, alpha=ALPHA, used_max_power=True)
        state.add_neighbor(_record(1, 0.0, 0.2, discovery=1.0))
        state.add_neighbor(_record(2, math.pi, 0.9, discovery=4.0))
        shrunk = shrink_back_node(state)
        assert set(shrunk.neighbor_ids) == {1, 2}

    def test_non_boundary_nodes_unchanged(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        shrunk = shrink_back(outcome)
        for state in outcome:
            if not state.is_boundary:
                assert set(shrunk.state(state.node_id).neighbor_ids) == set(state.neighbor_ids)

    def test_shrink_back_never_increases_power(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        shrunk = shrink_back(outcome)
        for state in outcome:
            assert shrunk.state(state.node_id).power_to_reach_all() <= state.power_to_reach_all() + 1e-9

    def test_shrink_back_preserves_coverage(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        shrunk = shrink_back(outcome)
        for state in outcome:
            # The largest angular gap must not grow past alpha for nodes that
            # had no gap, and must not grow at all beyond its original value
            # for boundary nodes (coverage is preserved exactly).
            original_gap = state.largest_gap()
            new_gap = shrunk.state(state.node_id).largest_gap()
            assert new_gap <= max(original_gap, ALPHA) + 1e-9

    def test_shrink_back_does_not_break_connectivity(self, small_random_network):
        outcome = shrink_back(run_cbtc(small_random_network, ALPHA))
        reference = small_random_network.max_power_graph()
        controlled = symmetric_closure_graph(outcome, small_random_network)
        assert preserves_connectivity(reference, controlled)

    def test_empty_state_is_noop(self):
        state = NodeState(node_id=0, alpha=ALPHA)
        assert shrink_back_node(state) is state


class TestAsymmetricEdgeRemoval:
    def test_threshold_enforced(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        with pytest.raises(ValueError):
            asymmetric_edge_removal(outcome)
        # The same call with the threshold check disabled is allowed (used by
        # exploratory experiments).
        edges = asymmetric_edge_removal(outcome, enforce_threshold=False)
        assert isinstance(edges, list)

    def test_returns_only_mutual_edges(self):
        outcome = CBTCOutcome(alpha=ALPHA_NARROW)
        for node_id in range(3):
            outcome.states[node_id] = NodeState(node_id=node_id, alpha=ALPHA_NARROW)
        outcome.states[0].add_neighbor(_record(1, 0.0, 1.0))
        outcome.states[1].add_neighbor(_record(0, math.pi, 1.0))
        outcome.states[2].add_neighbor(_record(0, 0.0, 1.0))  # one-directional
        edges = asymmetric_edge_removal(outcome)
        assert edges == [(0, 1)]

    def test_subset_preserves_connectivity_at_two_thirds(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA_NARROW)
        reference = small_random_network.max_power_graph()
        from repro.core.topology import symmetric_subset_graph

        assert preserves_connectivity(reference, symmetric_subset_graph(outcome, small_random_network))


class TestEdgeIds:
    def test_edge_id_ordering_by_length_first(self):
        network = _network([Point(0, 0), Point(0.5, 0), Point(0, 0.9)], max_range=2.0)
        assert edge_id(network, 0, 1) < edge_id(network, 0, 2)

    def test_edge_id_tie_broken_by_node_ids(self):
        network = _network([Point(0, 0), Point(1, 0), Point(-1, 0)], max_range=2.0)
        # Both edges have length 1; the one with the smaller max endpoint wins.
        assert edge_id(network, 0, 1) < edge_id(network, 0, 2)

    def test_edge_id_symmetric_in_arguments(self):
        network = _network([Point(0, 0), Point(1, 0)], max_range=2.0)
        assert edge_id(network, 0, 1) == edge_id(network, 1, 0)


class TestPairwiseEdgeRemoval:
    def _triangle_network(self):
        # A tight triangle where the angle at node 0 between nodes 1 and 2 is
        # well below pi/3, making the longer of the two edges redundant.
        return _network([Point(0, 0), Point(1.0, 0.0), Point(0.95, 0.15)], max_range=2.0)

    def test_redundant_edge_detection(self):
        network = self._triangle_network()
        graph = network.max_power_graph()
        redundant = redundant_edges(graph, network)
        assert (0, 1) in redundant or (0, 2) in redundant
        # The shorter of the two edges from node 0 must never be redundant
        # purely because of the other (it has the smaller edge ID).
        shorter = (0, 1) if network.distance(0, 1) < network.distance(0, 2) else (0, 2)
        longer = (0, 2) if shorter == (0, 1) else (0, 1)
        assert longer in redundant

    def test_wide_angles_are_never_redundant(self):
        # With maximum range 1.5 only the two edges incident to node 0 exist,
        # and they subtend an angle close to pi at node 0 — far above pi/3 —
        # so neither is redundant.
        network = _network([Point(0, 0), Point(1, 0), Point(-1, 0.2)], max_range=1.5)
        graph = network.max_power_graph()
        assert graph.number_of_edges() == 2
        assert redundant_edges(graph, network) == set()

    def test_remove_all_redundant_preserves_connectivity(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        closure = symmetric_closure_graph(outcome, small_random_network)
        pruned = pairwise_edge_removal(closure, small_random_network, remove_all=True)
        assert preserves_connectivity(small_random_network.max_power_graph(), pruned)
        assert pruned.number_of_edges() <= closure.number_of_edges()

    def test_default_mode_only_removes_radius_reducing_edges(self, small_random_network):
        outcome = run_cbtc(small_random_network, ALPHA)
        closure = symmetric_closure_graph(outcome, small_random_network)
        conservative = pairwise_edge_removal(closure, small_random_network)
        aggressive = pairwise_edge_removal(closure, small_random_network, remove_all=True)
        assert aggressive.number_of_edges() <= conservative.number_of_edges() <= closure.number_of_edges()

    def test_custom_angle_threshold(self):
        network = self._triangle_network()
        graph = network.max_power_graph()
        # With a zero threshold nothing is redundant.
        assert redundant_edges(graph, network, angle_threshold=0.0) == set()
        # With a huge threshold, every node with two neighbours flags its longer edge.
        generous = redundant_edges(graph, network, angle_threshold=math.pi)
        assert len(generous) >= 1

    def test_pairwise_removal_on_graph_without_redundant_edges_is_identity(self):
        network = _network([Point(0, 0), Point(1, 0), Point(-1, 0.2)], max_range=1.5)
        graph = network.max_power_graph()
        pruned = pairwise_edge_removal(graph, network)
        assert set(pruned.edges) == set(graph.edges)

    def test_default_threshold_matches_paper_constant(self):
        assert PAIRWISE_ANGLE_THRESHOLD == pytest.approx(math.pi / 3)
