"""Tests for the Figure 2 and Figure 5 constructions."""

import math

import networkx as nx
import pytest

from repro.core.analysis import preserves_connectivity
from repro.core.cbtc import run_cbtc
from repro.core.counterexamples import asymmetry_example, disconnection_example
from repro.core.topology import symmetric_closure_graph


class TestAsymmetryExample:
    def test_construction_geometry(self):
        example = asymmetry_example()
        network = example.network
        radius = example.max_range
        # d(u0, v) is exactly R; u1, u2, u3 are strictly closer to u0 than R.
        assert network.distance(example.u0, example.v) == pytest.approx(radius)
        for name in ("u1", "u2", "u3"):
            assert network.distance(example.u0, example.names[name]) < radius
        # u1 and u2 are farther than R from v, as the paper's triangle argument shows.
        assert network.distance(example.v, example.names["u1"]) > radius
        assert network.distance(example.v, example.names["u2"]) > radius

    def test_alpha_lies_in_the_asymmetric_regime(self):
        example = asymmetry_example()
        assert 2 * math.pi / 3 < example.alpha <= 5 * math.pi / 6 + 1e-12

    def test_n_alpha_is_asymmetric(self):
        example = asymmetry_example()
        outcome = run_cbtc(example.network, example.alpha)
        # (v, u0) in N_alpha but (u0, v) not in N_alpha — Example 2.1.
        assert example.u0 in outcome.state(example.v).neighbors
        assert example.v not in outcome.state(example.u0).neighbors

    def test_u0_discovers_exactly_the_three_u_nodes(self):
        example = asymmetry_example()
        outcome = run_cbtc(example.network, example.alpha)
        expected = {example.names["u1"], example.names["u2"], example.names["u3"]}
        assert set(outcome.state(example.u0).neighbor_ids) == expected

    def test_v_is_a_boundary_node(self):
        example = asymmetry_example()
        outcome = run_cbtc(example.network, example.alpha)
        assert outcome.state(example.v).is_boundary

    def test_symmetric_closure_restores_connectivity(self):
        # This is exactly why the paper takes the symmetric closure: with the
        # closure the u0--v edge is present and the graph stays connected.
        example = asymmetry_example()
        outcome = run_cbtc(example.network, example.alpha)
        closure = symmetric_closure_graph(outcome, example.network)
        assert closure.has_edge(example.u0, example.v)
        assert preserves_connectivity(example.network.max_power_graph(), closure)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            asymmetry_example(epsilon=0.0)
        with pytest.raises(ValueError):
            asymmetry_example(epsilon=math.pi / 12)

    def test_scales_with_max_range(self):
        example = asymmetry_example(max_range=500.0)
        assert example.network.distance(example.u0, example.v) == pytest.approx(500.0)
        outcome = run_cbtc(example.network, example.alpha)
        assert example.v not in outcome.state(example.u0).neighbors


class TestDisconnectionExample:
    def test_gr_is_connected_with_a_single_bridge(self):
        example = disconnection_example()
        reference = example.network.max_power_graph()
        assert nx.is_connected(reference)
        u0, v0 = example.bridge
        cross_edges = [
            (u, v)
            for u, v in reference.edges
            if (u in example.u_cluster) != (v in example.u_cluster)
        ]
        assert cross_edges == [(u0, v0)] or cross_edges == [(v0, u0)]

    def test_g_alpha_is_disconnected_above_threshold(self):
        example = disconnection_example()
        assert example.alpha > 5 * math.pi / 6
        outcome = run_cbtc(example.network, example.alpha)
        controlled = symmetric_closure_graph(outcome, example.network)
        assert not nx.is_connected(controlled)
        assert not preserves_connectivity(example.network.max_power_graph(), controlled)

    def test_hubs_never_reach_each_other(self):
        example = disconnection_example()
        outcome = run_cbtc(example.network, example.alpha)
        u0, v0 = example.bridge
        assert v0 not in outcome.state(u0).neighbors
        assert u0 not in outcome.state(v0).neighbors
        # Both hubs stop strictly below the power needed for the bridge.
        bridge_power = example.network.required_power(u0, v0)
        assert outcome.state(u0).final_power < bridge_power
        assert outcome.state(v0).final_power < bridge_power

    def test_same_construction_is_connected_at_five_pi_sixths(self):
        # Re-running the identical node placement with alpha = 5*pi/6 keeps the
        # bridge: the tightness of the bound is exactly this contrast.
        example = disconnection_example()
        outcome = run_cbtc(example.network, 5 * math.pi / 6)
        controlled = symmetric_closure_graph(outcome, example.network)
        assert preserves_connectivity(example.network.max_power_graph(), controlled)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            disconnection_example(epsilon=0.0)
        with pytest.raises(ValueError):
            disconnection_example(epsilon=math.pi / 6)

    def test_scales_with_max_range(self):
        example = disconnection_example(max_range=500.0)
        outcome = run_cbtc(example.network, example.alpha)
        controlled = symmetric_closure_graph(outcome, example.network)
        assert not nx.is_connected(controlled)
