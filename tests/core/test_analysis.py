"""Tests for repro.core.analysis (theorem checkers and stretch metrics)."""

import math

import networkx as nx
import pytest

from repro.core.analysis import (
    connectivity_report,
    hop_stretch_factor,
    power_stretch_factor,
    preserves_connectivity,
    same_connectivity,
    verify_theorem_2_1,
    verify_theorem_3_1,
    verify_theorem_3_2,
    verify_theorem_3_6,
)
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.graphs.paths import power_spanner_bound
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6


class TestConnectivityComparison:
    def test_identical_graphs_preserve_connectivity(self):
        graph = nx.path_graph(5)
        assert preserves_connectivity(graph, graph)

    def test_spanning_subgraph_preserves_connectivity(self):
        reference = nx.complete_graph(5)
        candidate = nx.path_graph(5)
        assert preserves_connectivity(reference, candidate)

    def test_disconnecting_subgraph_detected(self):
        reference = nx.path_graph(4)
        candidate = nx.Graph()
        candidate.add_nodes_from(reference.nodes)
        candidate.add_edge(0, 1)
        assert not preserves_connectivity(reference, candidate)

    def test_different_node_sets_not_equivalent(self):
        a = nx.path_graph(3)
        b = nx.path_graph(4)
        assert not same_connectivity(a, b)

    def test_component_structure_comparison(self):
        reference = nx.Graph()
        reference.add_edges_from([(0, 1), (2, 3)])
        candidate = nx.Graph()
        candidate.add_nodes_from([0, 1, 2, 3])
        candidate.add_edges_from([(0, 1), (2, 3)])
        assert same_connectivity(reference, candidate)
        candidate.add_edge(1, 2)
        # Candidate connects a pair the reference keeps apart.
        assert not same_connectivity(reference, candidate)

    def test_connectivity_report_fields(self):
        reference = nx.cycle_graph(6)
        candidate = nx.path_graph(6)
        report = connectivity_report(reference, candidate)
        assert report.preserved
        assert report.reference_edges == 6
        assert report.candidate_edges == 5
        assert report.edge_reduction == pytest.approx(1 / 6)
        assert report.reference_components == report.candidate_components == 1


class TestTheoremCheckers:
    def test_theorem_2_1_on_random_networks(self):
        for seed in range(3):
            network = random_uniform_placement(PlacementConfig(node_count=25), seed=seed)
            assert verify_theorem_2_1(network, ALPHA)

    def test_theorem_3_1_on_random_networks(self):
        network = random_uniform_placement(PlacementConfig(node_count=25), seed=5)
        assert verify_theorem_3_1(network, ALPHA)

    def test_theorem_3_2_on_random_networks(self):
        network = random_uniform_placement(PlacementConfig(node_count=25), seed=6)
        assert verify_theorem_3_2(network, 2 * math.pi / 3)

    def test_theorem_3_6_on_random_networks(self):
        network = random_uniform_placement(PlacementConfig(node_count=25), seed=7)
        assert verify_theorem_3_6(network, ALPHA)


class TestStretchMetrics:
    def test_power_stretch_of_reference_graph_is_one(self, small_random_network):
        reference = small_random_network.max_power_graph()
        assert power_stretch_factor(small_random_network, reference) == pytest.approx(1.0)

    def test_power_stretch_of_controlled_graph_is_finite_and_bounded_below(self, small_random_network):
        result = build_topology(small_random_network, ALPHA, config=OptimizationConfig.all())
        stretch = power_stretch_factor(small_random_network, result.graph)
        assert math.isfinite(stretch)
        assert stretch >= 1.0

    def test_power_stretch_infinite_when_disconnected(self, small_random_network):
        broken = nx.Graph()
        broken.add_nodes_from(small_random_network.node_ids)
        assert power_stretch_factor(small_random_network, broken) == float("inf")

    def test_hop_stretch_at_least_one(self, small_random_network):
        result = build_topology(small_random_network, ALPHA)
        assert hop_stretch_factor(small_random_network, result.graph) >= 1.0

    def test_sampled_pairs_subset(self, small_random_network):
        result = build_topology(small_random_network, ALPHA)
        stretch = power_stretch_factor(small_random_network, result.graph, sample_pairs=[(0, 1), (2, 3)])
        assert stretch >= 1.0

    def test_power_spanner_bound_formula(self):
        assert power_spanner_bound(math.pi / 2) == pytest.approx(3.0 / math.sin(math.pi / 4))
        with pytest.raises(ValueError):
            power_spanner_bound(0.0)
