"""Tests for repro.core.reconfiguration."""

import math

import pytest

from repro.core.analysis import preserves_connectivity
from repro.core.cbtc import run_cbtc
from repro.core.pipeline import OptimizationConfig
from repro.core.reconfiguration import (
    AngleChangeEvent,
    JoinEvent,
    LeaveEvent,
    ReconfigurationManager,
    beacon_power_policy,
)
from repro.geometry import Point
from repro.net.node import Node
from repro.net.placement import PlacementConfig, random_uniform_placement

ALPHA = 5 * math.pi / 6


@pytest.fixture
def network():
    return random_uniform_placement(PlacementConfig(node_count=30), seed=12)


class TestBeaconPowerPolicy:
    def test_boundary_nodes_beacon_at_max_power(self, network):
        outcome = run_cbtc(network, ALPHA)
        powers = beacon_power_policy(outcome, network)
        for node_id in outcome.boundary_nodes():
            assert powers[node_id] == pytest.approx(network.power_model.max_power)

    def test_non_boundary_nodes_beacon_with_e_alpha_power(self, network):
        from repro.core.topology import symmetric_closure_graph

        outcome = run_cbtc(network, ALPHA)
        powers = beacon_power_policy(outcome, network)
        closure = symmetric_closure_graph(outcome, network)
        for state in outcome:
            if state.is_boundary:
                continue
            neighbors = list(closure.neighbors(state.node_id))
            if not neighbors:
                continue
            needed = max(network.required_power(state.node_id, other) for other in neighbors)
            assert powers[state.node_id] == pytest.approx(needed)


class TestEventRules:
    def test_leave_without_gap_is_local(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        # Find a node with a removable neighbour that does not open a gap.
        for state in manager.outcome:
            for neighbor in state.neighbor_ids:
                trial = state.copy()
                trial.remove_neighbor(neighbor)
                if not trial.has_gap():
                    before = manager.reruns
                    manager.apply_leave(LeaveEvent(observer=state.node_id, subject=neighbor))
                    assert manager.reruns == before
                    assert neighbor not in manager.outcome.state(state.node_id).neighbors
                    return
        pytest.skip("no removable neighbour found in this topology")

    def test_leave_with_gap_triggers_rerun(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        for state in manager.outcome:
            for neighbor in state.neighbor_ids:
                trial = state.copy()
                trial.remove_neighbor(neighbor)
                if trial.has_gap() and not state.used_max_power:
                    before = manager.reruns
                    manager.apply_leave(LeaveEvent(observer=state.node_id, subject=neighbor))
                    assert manager.reruns == before + 1
                    return
        pytest.skip("no gap-opening neighbour found in this topology")

    def test_join_adds_then_shrinks(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        observer = network.node_ids[0]
        manager.apply_join(
            JoinEvent(
                observer=observer,
                subject=999,
                direction=1.0,
                required_power=1.0,
                distance=1.0,
            )
        )
        # The newcomer is either kept or shrunk away, but the manager must have
        # processed the event and must not have lost cone coverage.
        state = manager.outcome.state(observer)
        assert manager.events_applied == 1
        assert state.largest_gap() <= max(ALPHA, run_cbtc(network, ALPHA).state(observer).largest_gap()) + 1e-9

    def test_angle_change_updates_direction(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        observer = None
        subject = None
        for state in manager.outcome:
            if state.neighbor_ids:
                observer = state.node_id
                subject = state.neighbor_ids[0]
                break
        new_direction = (manager.outcome.state(observer).neighbors[subject].direction + 0.01) % (2 * math.pi)
        manager.apply_angle_change(
            AngleChangeEvent(
                observer=observer,
                subject=subject,
                new_direction=new_direction,
                required_power=manager.outcome.state(observer).neighbors[subject].required_power,
                distance=manager.outcome.state(observer).neighbors[subject].distance,
            )
        )
        if subject in manager.outcome.state(observer).neighbors:
            assert manager.outcome.state(observer).neighbors[subject].direction == pytest.approx(new_direction)

    def test_unknown_event_type_rejected(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        with pytest.raises(TypeError):
            manager.apply(object())


class TestSynchronize:
    def test_synchronize_reaches_a_fixpoint_without_changes(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        # The very first synchronization may process a handful of join events
        # (nodes whose beacons reach non-neighbours), but it must settle: a
        # second call on the unchanged network detects nothing.
        manager.synchronize()
        assert manager.synchronize() == 0

    def test_node_failure_preserves_connectivity(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        network.node(network.node_ids[5]).crash()
        network.node(network.node_ids[17]).crash()
        manager.synchronize()
        topology = manager.topology()
        assert preserves_connectivity(network.max_power_graph(), topology.graph)
        assert network.node_ids[5] not in topology.graph or topology.graph.degree[network.node_ids[5]] == 0

    def test_node_movement_preserves_connectivity(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        moved = network.node(network.node_ids[3])
        moved.move_to(Point(moved.position.x + 400.0, moved.position.y))
        manager.synchronize()
        assert preserves_connectivity(network.max_power_graph(), manager.topology().graph)

    def test_new_node_joins_and_is_connected(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        newcomer = Node(node_id=1000, position=Point(750.0, 750.0))
        network.add_node(newcomer)
        manager.synchronize()
        topology = manager.topology()
        assert 1000 in topology.graph
        assert preserves_connectivity(network.max_power_graph(), topology.graph)

    def test_repeated_synchronize_is_stable(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        moved = network.node(network.node_ids[8])
        moved.move_to(Point(100.0, 100.0))
        manager.synchronize()
        events_after_first = manager.events_applied
        manager.synchronize()
        assert manager.events_applied == events_after_first


class TestTopologyMemoization:
    """Satellite regression: no rebuild when synchronize applied zero events."""

    @pytest.fixture
    def network(self):
        return random_uniform_placement(PlacementConfig(node_count=30), seed=9)

    def test_clean_synchronize_reuses_memoized_topology(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        manager.synchronize()
        first = manager.topology()
        builds_after_first = manager.topology_builds
        # Nothing moved, nothing crashed: synchronize applies zero events and
        # topology() must hand back the same object without any pipeline work.
        for _ in range(3):
            assert manager.synchronize() == 0
            assert manager.topology() is first
        assert manager.topology_builds == builds_after_first
        assert manager.memo_hits == 3

    def test_full_rebuild_path_is_also_memoized(self, network, monkeypatch):
        import repro.core.reconfiguration as reconfiguration_module

        calls = {"count": 0}
        real_build = reconfiguration_module.build_topology

        def counting_build(*args, **kwargs):
            calls["count"] += 1
            return real_build(*args, **kwargs)

        monkeypatch.setattr(reconfiguration_module, "build_topology", counting_build)
        manager = ReconfigurationManager(network, ALPHA)
        manager.synchronize()
        first = manager.topology(incremental=False)
        assert calls["count"] == 1
        manager.synchronize()
        assert manager.topology(incremental=False) is first
        assert calls["count"] == 1  # zero events => no build_topology call

    def test_any_node_change_invalidates_the_memo(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        manager.synchronize()
        first = manager.topology()
        network.node(network.node_ids[0]).move_to(Point(10.0, 10.0))
        manager.synchronize()
        assert manager.topology() is not first

    def test_config_change_invalidates_the_memo(self, network):
        manager = ReconfigurationManager(network, ALPHA)
        manager.synchronize()
        basic = manager.topology()
        shrunk = manager.topology(config=OptimizationConfig.shrink_only())
        assert shrunk is not basic

    def test_incremental_and_full_topologies_are_byte_identical(self, network):
        from repro.io.results import results_to_json

        incremental_manager = ReconfigurationManager(network, ALPHA)
        full_manager = ReconfigurationManager(network, ALPHA)
        for step in range(3):
            moved = network.node(network.node_ids[step])
            moved.move_to(Point(200.0 + 40 * step, 300.0))
            incremental_manager.synchronize()
            full_manager.synchronize(accelerated=False)
            a = incremental_manager.topology(config=OptimizationConfig.shrink_only())
            b = full_manager.topology(
                config=OptimizationConfig.shrink_only(), incremental=False
            )
            assert results_to_json(a) == results_to_json(b)
