"""Tests for the distributed CBTC protocol (repro.core.protocol)."""

import math

import pytest

from repro.core.cbtc import run_cbtc
from repro.core.protocol import ACK, CBTCProtocol, HELLO, run_distributed_cbtc
from repro.core.analysis import preserves_connectivity
from repro.core.topology import symmetric_closure_graph
from repro.net.placement import PlacementConfig, random_uniform_placement
from repro.radio.power import GeometricSchedule, LinearSchedule
from repro.sim.channel import DuplicatingChannel

ALPHA = 5 * math.pi / 6


@pytest.fixture
def network():
    return random_uniform_placement(PlacementConfig(node_count=25), seed=3)


class TestProtocolRun:
    def test_terminates_and_every_node_finishes(self, network):
        result = run_distributed_cbtc(network, ALPHA)
        assert result.engine.pending_events() == 0
        assert all(protocol.finished for protocol in result.protocols.values())

    def test_matches_centralized_computation_with_same_schedule(self, network):
        schedule = GeometricSchedule()
        distributed = run_distributed_cbtc(network, ALPHA, schedule=schedule)
        centralized = run_cbtc(network, ALPHA, schedule=schedule)
        for node_id in centralized.node_ids():
            assert set(distributed.outcome.state(node_id).neighbor_ids) == set(
                centralized.state(node_id).neighbor_ids
            ), node_id

    def test_preserves_connectivity(self, network):
        result = run_distributed_cbtc(network, ALPHA)
        controlled = symmetric_closure_graph(result.outcome, network)
        assert preserves_connectivity(network.max_power_graph(), controlled)

    def test_message_kinds_traced(self, network):
        result = run_distributed_cbtc(network, ALPHA)
        counts = result.trace.count_by_kind()
        assert counts.get(HELLO, 0) > 0
        assert counts.get(ACK, 0) > 0

    def test_hello_rounds_match_power_levels_used(self, network):
        result = run_distributed_cbtc(network, ALPHA)
        levels = GeometricSchedule()(network.power_model)
        for node_id, rounds in result.hello_rounds().items():
            assert 1 <= rounds <= len(levels)

    def test_coarser_schedule_uses_fewer_rounds(self, network):
        fine = run_distributed_cbtc(network, ALPHA, schedule=LinearSchedule(steps=32), round_timeout=2.5)
        coarse = run_distributed_cbtc(network, ALPHA, schedule=LinearSchedule(steps=4), round_timeout=2.5)
        assert sum(coarse.hello_rounds().values()) < sum(fine.hello_rounds().values())

    def test_duplicating_channel_handled(self, network):
        reliable = run_distributed_cbtc(network, ALPHA)
        duplicated = run_distributed_cbtc(
            network, ALPHA, channel=DuplicatingChannel(duplicate_probability=0.5, base_delay=1.0, seed=5)
        )
        for node_id in reliable.outcome.node_ids():
            assert set(duplicated.outcome.state(node_id).neighbor_ids) == set(
                reliable.outcome.state(node_id).neighbor_ids
            )

    def test_dead_nodes_do_not_participate(self, network):
        network.node(0).crash()
        result = run_distributed_cbtc(network, ALPHA)
        assert 0 not in result.outcome.states
        for state in result.outcome:
            assert 0 not in state.neighbors

    def test_asymmetric_exclusions_reported(self, network):
        result = run_distributed_cbtc(network, 2 * math.pi / 3)
        exclusions = result.asymmetric_exclusions()
        assert set(exclusions) == set(result.outcome.node_ids())
        # Every excluded neighbour must be a node that discovered us but that
        # we did not discover (the definition of an asymmetric edge).
        for node_id, removed in exclusions.items():
            for other in removed:
                assert node_id in result.outcome.state(other).neighbors or True  # other answered our Hello

    def test_total_messages_positive(self, network):
        result = run_distributed_cbtc(network, ALPHA)
        assert result.total_messages() > len(network)


class TestProtocolUnit:
    def test_requires_power_levels(self):
        with pytest.raises(ValueError):
            CBTCProtocol(0, ALPHA, [])

    def test_state_tracks_alpha(self):
        protocol = CBTCProtocol(0, ALPHA, [1.0, 2.0])
        assert protocol.state.alpha == ALPHA
        assert protocol.level_index == 0
        assert not protocol.finished
