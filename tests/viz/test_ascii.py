"""Tests for the ASCII visualization helpers."""

import math

import pytest

from repro.core.pipeline import OptimizationConfig, build_topology
from repro.viz import ascii_topology, degree_profile_text, edge_list_text


class TestAsciiTopology:
    def test_dimensions(self, small_random_network):
        graph = small_random_network.max_power_graph()
        art = ascii_topology(graph, small_random_network, width=40, height=12)
        lines = art.split("\n")
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_every_node_is_drawn(self, small_random_network):
        graph = small_random_network.max_power_graph()
        art = ascii_topology(graph, small_random_network, width=60, height=24)
        assert art.count("*") <= len(small_random_network)
        assert art.count("*") >= 1

    def test_show_ids_uses_digits(self, square_network):
        graph = square_network.max_power_graph()
        art = ascii_topology(graph, square_network, width=10, height=5, show_ids=True)
        for digit in "0123":
            assert digit in art

    def test_sparser_graph_draws_fewer_edge_cells(self, small_random_network):
        dense = small_random_network.max_power_graph()
        sparse = build_topology(
            small_random_network, 5 * math.pi / 6, config=OptimizationConfig.all()
        ).graph
        dense_art = ascii_topology(dense, small_random_network)
        sparse_art = ascii_topology(sparse, small_random_network)
        assert sparse_art.count(".") < dense_art.count(".")

    def test_too_small_raster_rejected(self, square_network):
        with pytest.raises(ValueError):
            ascii_topology(square_network.max_power_graph(), square_network, width=1, height=1)


class TestTextSummaries:
    def test_edge_list_text_sorted_and_complete(self, square_network):
        graph = square_network.max_power_graph()
        text = edge_list_text(graph)
        lines = text.split("\n")
        assert len(lines) == graph.number_of_edges()
        assert lines == sorted(lines)
        assert "[1.0]" in lines[0]

    def test_edge_list_without_lengths(self):
        import networkx as nx

        graph = nx.path_graph(3)
        text = edge_list_text(graph)
        assert text.splitlines() == ["0 -- 1", "1 -- 2"]

    def test_degree_profile(self, square_network):
        graph = square_network.max_power_graph()
        text = degree_profile_text(graph)
        assert "degree     2: #### (4)" in text

    def test_degree_profile_empty_graph(self):
        import networkx as nx

        assert degree_profile_text(nx.Graph()) == "(empty graph)"

    def test_degree_profile_buckets(self, small_random_network):
        graph = small_random_network.max_power_graph()
        text = degree_profile_text(graph, bucket_width=5)
        assert "-" in text
