"""Tests for graph and result serialization (repro.io)."""

import math

import pytest

from repro.core.pipeline import build_topology
from repro.experiments.table1 import run_table1
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    results_from_json,
    results_to_json,
    write_edge_list,
    write_json,
)
from repro.net.placement import PlacementConfig


class TestGraphSerialization:
    def test_roundtrip_preserves_structure(self, small_random_network, tmp_path):
        graph = build_topology(small_random_network, 5 * math.pi / 6).graph
        path = tmp_path / "topology.json"
        write_edge_list(graph, path)
        restored = read_edge_list(path)
        assert set(restored.nodes) == set(graph.nodes)
        assert set(map(frozenset, restored.edges)) == set(map(frozenset, graph.edges))

    def test_roundtrip_preserves_attributes(self, square_network):
        graph = square_network.max_power_graph()
        payload = graph_to_dict(graph)
        restored = graph_from_dict(payload)
        assert restored.nodes[0]["pos"] == (0.0, 0.0)
        assert restored.edges[0, 1]["length"] == pytest.approx(1.0)

    def test_missing_attributes_tolerated(self):
        payload = {"nodes": [{"id": 0}, {"id": 1}], "edges": [{"u": 0, "v": 1}]}
        graph = graph_from_dict(payload)
        assert graph.has_edge(0, 1)
        assert "pos" not in graph.nodes[0]


class TestResultSerialization:
    def test_dataclass_tree_to_json(self):
        result = run_table1(network_count=1, config=PlacementConfig(node_count=20))
        payload = results_from_json(results_to_json(result))
        assert payload["network_count"] == 1
        assert len(payload["rows"]) == len(result.rows)
        assert payload["rows"][0]["key"] == result.rows[0].key

    def test_write_and_read_json_file(self, tmp_path):
        result = run_table1(network_count=1, config=PlacementConfig(node_count=15))
        path = tmp_path / "table1.json"
        write_json(result, path)
        payload = read_json(path)
        assert payload["node_count"] == 15

    def test_special_float_values_survive(self):
        payload = results_from_json(results_to_json({"nan": float("nan"), "inf": float("inf")}))
        assert payload["nan"] == "nan"
        assert payload["inf"] == "inf"

    def test_negative_infinity_round_trips_as_string(self):
        payload = results_from_json(results_to_json({"ninf": float("-inf")}))
        assert payload["ninf"] == "-inf"

    def test_special_floats_survive_inside_containers(self):
        data = {
            "values": [1.5, float("nan"), float("inf"), float("-inf")],
            "nested": {"tuple": (float("nan"), 2.0)},
        }
        payload = results_from_json(results_to_json(data))
        assert payload["values"] == [1.5, "nan", "inf", "-inf"]
        assert payload["nested"]["tuple"] == ["nan", 2.0]

    def test_tuples_and_sets_become_lists(self):
        payload = results_from_json(results_to_json({"tuple": (1, 2, 3), "set": {7}}))
        assert payload["tuple"] == [1, 2, 3]
        assert payload["set"] == [7]

    def test_file_round_trip_of_special_floats(self, tmp_path):
        path = tmp_path / "special.json"
        write_json({"radius": float("inf"), "degree": float("nan")}, path)
        payload = read_json(path)
        assert payload["radius"] == "inf"
        assert payload["degree"] == "nan"

    def test_non_serializable_objects_are_replaced_by_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        payload = results_from_json(results_to_json({"thing": Opaque()}))
        assert payload["thing"] == "<opaque>"


class TestScenarioResultSerialization:
    """The scenario-result dataclasses must survive the results codec."""

    def _run(self):
        from repro.scenarios.spec import PlacementSpec, ScenarioSpec
        from repro.scenarios.runner import run_scenario

        spec = ScenarioSpec(
            name="io-round-trip",
            placement=PlacementSpec(node_count=10),
            epochs=2,
            steps_per_epoch=1,
            alpha=5 * math.pi / 6,
        )
        return run_scenario(spec, seed=0)

    def test_scenario_result_round_trips(self, tmp_path):
        result = self._run()
        path = tmp_path / "scenario.json"
        write_json(result, path)
        payload = read_json(path)
        assert payload["scenario"] == "io-round-trip"
        assert payload["seed"] == 0
        assert len(payload["epochs"]) == 2
        first = payload["epochs"][0]
        assert first["epoch"] == 1
        assert first["alive_nodes"] == 10
        assert isinstance(first["connectivity_preserved"], bool)
        assert isinstance(first["average_degree"], float)
        summary = payload["summary"]
        assert summary["epochs"] == 2
        assert 0.0 <= summary["preserved_fraction"] <= 1.0

    def test_scenario_result_json_is_stable(self):
        # The parallel runner's byte-identity guarantee rests on the codec
        # being a pure function of the result value.
        result = self._run()
        assert results_to_json(result) == results_to_json(result)

    def test_infinite_battery_capacity_survives_in_epoch_payloads(self, tmp_path):
        from repro.scenarios.spec import EnergySpec

        # EnergySpec holds inf capacity by default; serializing a spec-like
        # dataclass tree must encode it as the documented "inf" string.
        payload = results_from_json(results_to_json(EnergySpec()))
        assert payload["capacity"] == "inf"


class TestCanonicalJson:
    def test_compact_single_line(self):
        from repro.io.results import canonical_json

        payload = canonical_json({"b": [1, 2], "a": {"y": 1.5, "x": None}})
        assert payload == '{"a":{"x":null,"y":1.5},"b":[1,2]}'
        assert "\n" not in payload

    def test_matches_results_to_json_structure(self):
        import json as json_module

        from repro.io.results import canonical_json, results_to_json

        value = {"z": {3, 1, 2}, "alpha": float("inf"), "t": (1, "two")}
        assert json_module.loads(canonical_json(value)) == json_module.loads(
            results_to_json(value)
        )

    def test_key_order_insensitive(self):
        from repro.io.results import canonical_json

        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})
