"""Named constants from the paper's analysis.

* ``ALPHA_CONNECTIVITY_THRESHOLD`` — 5*pi/6, the tight bound of Theorems 2.1
  and 2.4: CBTC(alpha) preserves connectivity iff ``alpha <= 5*pi/6``.
* ``ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD`` — 2*pi/3, the bound of Theorem 3.2
  below which the asymmetric-edge-removal optimization is sound.
* ``PAIRWISE_ANGLE_THRESHOLD`` — pi/3, the angular threshold in the
  definition of a redundant edge (Definition 3.5): if two neighbours of
  ``u`` subtend an angle smaller than pi/3 at ``u``, the farther of the two
  edges is redundant.
"""

import math

ALPHA_CONNECTIVITY_THRESHOLD = 5.0 * math.pi / 6.0
ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD = 2.0 * math.pi / 3.0
PAIRWISE_ANGLE_THRESHOLD = math.pi / 3.0

__all__ = [
    "ALPHA_CONNECTIVITY_THRESHOLD",
    "ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD",
    "PAIRWISE_ANGLE_THRESHOLD",
]
