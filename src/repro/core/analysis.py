"""Executable checks of the paper's theorems and quality metrics.

These helpers verify, on concrete networks, the properties the paper proves:

* :func:`preserves_connectivity` — whether a controlled graph has exactly the
  same connected pairs as the reference graph ``G_R`` (the conclusion of
  Theorem 2.1 and of the optimization theorems);
* :func:`verify_theorem_2_1` / :func:`verify_theorem_3_6` — one-call checks
  used by the property-based test-suite and the ablation benchmarks;
* :func:`power_stretch_factor` — the competitive-power metric discussed in
  the introduction: how much more power the best route in the controlled
  graph needs compared with the best route in ``G_R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, Optional, Tuple

import networkx as nx

from repro.net.network import Network
from repro.core.cbtc import run_cbtc
from repro.core.optimizations import pairwise_edge_removal, shrink_back
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.core.topology import symmetric_closure_graph


def same_connectivity(reference: nx.Graph, candidate: nx.Graph) -> bool:
    """Whether two graphs on the same node set connect exactly the same pairs."""
    if set(reference.nodes) != set(candidate.nodes):
        return False
    reference_components = {node: i for i, comp in enumerate(nx.connected_components(reference)) for node in comp}
    candidate_components = {node: i for i, comp in enumerate(nx.connected_components(candidate)) for node in comp}
    # Two partitions are equal iff every pair of nodes is together in one
    # exactly when it is together in the other; comparing the partition block
    # of each node against a canonical representative does this in O(n).
    reference_blocks: Dict[int, set] = {}
    candidate_blocks: Dict[int, set] = {}
    for node, block in reference_components.items():
        reference_blocks.setdefault(block, set()).add(node)
    for node, block in candidate_components.items():
        candidate_blocks.setdefault(block, set()).add(node)
    return sorted(map(frozenset, reference_blocks.values())) == sorted(map(frozenset, candidate_blocks.values()))


def preserves_connectivity(reference: nx.Graph, candidate: nx.Graph) -> bool:
    """Whether ``candidate`` preserves the connectivity of ``reference``.

    The candidate must be a subgraph of the reference in terms of node set
    and must connect every pair of nodes that the reference connects.  (The
    converse direction is automatic for subgraphs; we check partitions for
    robustness against non-subgraph inputs.)
    """
    return same_connectivity(reference, candidate)


def _partition_labels(items, edges) -> Dict:
    """Each item mapped to the smallest member of its connected block."""
    forest = nx.utils.UnionFind(items)
    for u, v in edges:
        forest.union(u, v)
    labels: Dict = {}
    for block in forest.to_sets():
        representative = min(block)
        for item in block:
            labels[item] = representative
    return labels


def preserves_max_power_connectivity(network: "Network", candidate: nx.Graph) -> bool:
    """Same boolean as ``preserves_connectivity(network.max_power_graph(), g)``
    without materializing ``G_R`` as a graph object.

    ``G_R``'s components are computed with a union-find straight off the
    spatial index's ``pairs_within(max_range)`` enumeration (the identical
    edge set ``max_power_graph`` would build), and the candidate's off its
    edge list.  The scenario runner calls this once per epoch, where
    building a throwaway ``networkx`` reference graph with tens of
    thousands of edges dominated the measurement phase at n >= 2000.
    """
    alive = {node.node_id for node in network.alive_nodes()}
    if set(candidate.nodes) != alive:
        return False
    if not network.use_spatial_index:
        return preserves_connectivity(network.max_power_graph(), candidate)
    reference_pairs = network.spatial_index().pairs_within(network.power_model.max_range)
    reference = _partition_labels(alive, ((u, v) for u, v, _ in reference_pairs))
    return reference == _partition_labels(alive, candidate.edges)


@dataclass(frozen=True)
class ConnectivityReport:
    """Summary of a connectivity-preservation check."""

    preserved: bool
    reference_components: int
    candidate_components: int
    reference_edges: int
    candidate_edges: int

    @property
    def edge_reduction(self) -> float:
        """Fraction of reference edges removed by topology control."""
        if self.reference_edges == 0:
            return 0.0
        return 1.0 - self.candidate_edges / self.reference_edges


def connectivity_report(reference: nx.Graph, candidate: nx.Graph) -> ConnectivityReport:
    """Build a :class:`ConnectivityReport` comparing two graphs."""
    return ConnectivityReport(
        preserved=preserves_connectivity(reference, candidate),
        reference_components=nx.number_connected_components(reference),
        candidate_components=nx.number_connected_components(candidate),
        reference_edges=reference.number_of_edges(),
        candidate_edges=candidate.number_of_edges(),
    )


def verify_theorem_2_1(network: Network, alpha: float) -> bool:
    """Check Theorem 2.1 on one network: ``G_alpha`` preserves ``G_R`` connectivity.

    Valid to expect ``True`` only for ``alpha <= 5*pi/6``; for larger alpha
    the check may legitimately fail (Theorem 2.4).
    """
    reference = network.max_power_graph()
    outcome = run_cbtc(network, alpha)
    candidate = symmetric_closure_graph(outcome, network)
    return preserves_connectivity(reference, candidate)


def verify_theorem_3_1(network: Network, alpha: float) -> bool:
    """Check Theorem 3.1: shrink-back still preserves connectivity."""
    reference = network.max_power_graph()
    outcome = shrink_back(run_cbtc(network, alpha))
    candidate = symmetric_closure_graph(outcome, network)
    return preserves_connectivity(reference, candidate)


def verify_theorem_3_2(network: Network, alpha: float) -> bool:
    """Check Theorem 3.2: for ``alpha <= 2*pi/3`` the symmetric subset suffices."""
    reference = network.max_power_graph()
    result = build_topology(network, alpha, config=OptimizationConfig(shrink_back=False, asymmetric_removal=True))
    return preserves_connectivity(reference, result.graph)


def verify_theorem_3_6(network: Network, alpha: float, *, remove_all: bool = True) -> bool:
    """Check Theorem 3.6: removing (all) redundant edges preserves connectivity."""
    reference = network.max_power_graph()
    outcome = run_cbtc(network, alpha)
    closure = symmetric_closure_graph(outcome, network)
    pruned = pairwise_edge_removal(closure, network, remove_all=remove_all)
    return preserves_connectivity(reference, pruned)


def _path_power_cost(graph: nx.Graph, network: Network, power_exponent: float) -> nx.Graph:
    weighted = nx.Graph()
    weighted.add_nodes_from(graph.nodes)
    for u, v in graph.edges:
        weighted.add_edge(u, v, power=network.distance(u, v) ** power_exponent)
    return weighted


def power_stretch_factor(
    network: Network,
    candidate: nx.Graph,
    *,
    power_exponent: float = 2.0,
    sample_pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> float:
    """Maximum ratio of best-route power in ``candidate`` vs. in ``G_R``.

    The route power of a path is the sum over its hops of ``d(u, v)**n``
    (transmission-power-only cost with path-loss exponent ``n``), matching
    the competitiveness discussion in the paper's introduction.  Returns
    ``float('inf')`` if some pair connected in ``G_R`` is disconnected in the
    candidate.  By default every connected pair is evaluated; pass
    ``sample_pairs`` to restrict the computation on large networks.
    """
    reference = network.max_power_graph()
    ref_weighted = _path_power_cost(reference, network, power_exponent)
    cand_weighted = _path_power_cost(candidate, network, power_exponent)

    if sample_pairs is None:
        sample_pairs = combinations(sorted(reference.nodes), 2)

    worst = 1.0
    ref_lengths = dict(nx.all_pairs_dijkstra_path_length(ref_weighted, weight="power"))
    cand_lengths = dict(nx.all_pairs_dijkstra_path_length(cand_weighted, weight="power"))
    for u, v in sample_pairs:
        ref_cost = ref_lengths.get(u, {}).get(v)
        if ref_cost is None:
            continue
        cand_cost = cand_lengths.get(u, {}).get(v)
        if cand_cost is None:
            return float("inf")
        if ref_cost == 0.0:
            continue
        worst = max(worst, cand_cost / ref_cost)
    return worst


def hop_stretch_factor(network: Network, candidate: nx.Graph) -> float:
    """Maximum ratio of hop-count shortest paths in ``candidate`` vs. ``G_R``."""
    reference = network.max_power_graph()
    ref_lengths = dict(nx.all_pairs_shortest_path_length(reference))
    cand_lengths = dict(nx.all_pairs_shortest_path_length(candidate))
    worst = 1.0
    for u, targets in ref_lengths.items():
        for v, ref_hops in targets.items():
            if u == v or ref_hops == 0:
                continue
            cand_hops = cand_lengths.get(u, {}).get(v)
            if cand_hops is None:
                return float("inf")
            worst = max(worst, cand_hops / ref_hops)
    return worst
