"""Per-node state produced by running CBTC(alpha).

The algorithm's output at node ``u`` is the set ``N_alpha(u)`` of discovered
neighbours, each tagged (as required by the shrink-back optimization and the
reconfiguration rules) with the power level at which it was first
discovered, plus the direction from which its acknowledgement arrived and
the power ``u`` needs to reach it.  :class:`NodeState` holds that
information; :class:`CBTCOutcome` is the collection of node states for a
whole network together with the parameters of the run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.geometry.angles import has_gap_greater_than, max_angular_gap
from repro.net.node import NodeId


@dataclass(frozen=True)
class NeighborRecord:
    """One discovered neighbour of a node.

    Attributes
    ----------
    neighbor:
        ID of the discovered neighbour ``v``.
    direction:
        Angle at which ``v``'s acknowledgement arrived, in ``[0, 2*pi)``.
    required_power:
        Minimum power the discovering node needs to reach ``v``.
    discovery_power:
        Power level in use when ``v`` was first discovered (the "tag" of the
        shrink-back optimization); at least ``required_power``.
    distance:
        Euclidean distance to ``v``.  The distributed protocol derives it
        from power estimates; the centralized computation uses ground truth.
    """

    neighbor: NodeId
    direction: float
    required_power: float
    discovery_power: float
    distance: float


@dataclass
class NodeState:
    """The result of CBTC(alpha) at one node."""

    node_id: NodeId
    alpha: float
    neighbors: Dict[NodeId, NeighborRecord] = field(default_factory=dict)
    final_power: float = 0.0
    used_max_power: bool = False
    rounds: int = 0

    def add_neighbor(self, record: NeighborRecord) -> None:
        """Record a discovered neighbour, keeping the earliest discovery tag."""
        existing = self.neighbors.get(record.neighbor)
        if existing is None or record.discovery_power < existing.discovery_power:
            self.neighbors[record.neighbor] = record

    def remove_neighbor(self, neighbor: NodeId) -> Optional[NeighborRecord]:
        """Drop a neighbour (used by shrink-back and reconfiguration)."""
        return self.neighbors.pop(neighbor, None)

    @property
    def neighbor_ids(self) -> List[NodeId]:
        """IDs of discovered neighbours, sorted."""
        return sorted(self.neighbors)

    @property
    def directions(self) -> List[float]:
        """Directions of all discovered neighbours."""
        return [record.direction for record in self.neighbors.values()]

    @property
    def is_boundary(self) -> bool:
        """A boundary node still has an alpha-gap after reaching maximum power."""
        return self.used_max_power and self.has_gap()

    def has_gap(self, alpha: Optional[float] = None) -> bool:
        """Whether the discovered directions leave a cone of degree alpha empty."""
        return has_gap_greater_than(self.directions, self.alpha if alpha is None else alpha)

    def largest_gap(self) -> float:
        """The largest angular gap among discovered directions."""
        return max_angular_gap(self.directions)

    def growth_radius(self) -> float:
        """The paper's ``rad^-_{u,alpha}``: distance of the farthest discovered neighbour."""
        if not self.neighbors:
            return 0.0
        return max(record.distance for record in self.neighbors.values())

    def power_to_reach_all(self) -> float:
        """Power needed to reach every node in ``N_alpha(u)`` (= ``p(rad^-_{u,alpha})``)."""
        if not self.neighbors:
            return 0.0
        return max(record.required_power for record in self.neighbors.values())

    def record_for(self, neighbor: NodeId) -> NeighborRecord:
        """The record for a specific neighbour."""
        return self.neighbors[neighbor]

    def copy(self) -> "NodeState":
        """Deep copy (records are immutable, the mapping is copied)."""
        duplicate = NodeState(
            node_id=self.node_id,
            alpha=self.alpha,
            neighbors=dict(self.neighbors),
            final_power=self.final_power,
            used_max_power=self.used_max_power,
            rounds=self.rounds,
        )
        return duplicate


@dataclass
class CBTCOutcome:
    """CBTC results for every node of a network."""

    alpha: float
    states: Dict[NodeId, NodeState] = field(default_factory=dict)

    def __iter__(self) -> Iterator[NodeState]:
        return iter(self.states.values())

    def __len__(self) -> int:
        return len(self.states)

    def state(self, node_id: NodeId) -> NodeState:
        """State of a specific node."""
        return self.states[node_id]

    def node_ids(self) -> List[NodeId]:
        """All node IDs, sorted."""
        return sorted(self.states)

    def neighbor_pairs(self) -> List[tuple]:
        """The relation ``N_alpha`` as a list of ordered pairs ``(u, v)``."""
        pairs = []
        for state in self.states.values():
            for neighbor in state.neighbor_ids:
                pairs.append((state.node_id, neighbor))
        return pairs

    def boundary_nodes(self) -> List[NodeId]:
        """IDs of boundary nodes (still have an alpha-gap at maximum power)."""
        return [state.node_id for state in self.states.values() if state.is_boundary]

    def copy(self) -> "CBTCOutcome":
        """Deep copy of all node states."""
        return CBTCOutcome(
            alpha=self.alpha,
            states={node_id: state.copy() for node_id, state in self.states.items()},
        )
