"""The basic cone-based topology control algorithm, CBTC(alpha).

This module implements the growing phase of Figure 1 of the paper as a
centralized, per-node computation.  "Centralized" here refers only to how the
computation is *executed* (a loop over nodes with access to ground-truth
distances), not to the information each node uses: the computation at node
``u`` consumes exactly what the distributed protocol would learn — which
nodes acknowledge a broadcast at each power level, the direction each
acknowledgement arrives from, and the power required to reach each
discovered node.  The message-passing version that actually exchanges Hello
and Ack messages over the simulator lives in :mod:`repro.core.protocol`; the
two produce identical neighbour sets for the same power schedule (this is
covered by an integration test).

Algorithm (per node ``u``)::

    N_u <- {};  D_u <- {};  p_u <- p0
    while p_u < P and gap_alpha(D_u):
        p_u <- Increase(p_u)
        bcast(u, p_u, "Hello") and gather Acks
        N_u <- N_u + {v : v discovered};  D_u <- D_u + {dir_u(v)}

The power schedule provides the sequence ``p0 < Increase(p0) < ... <= P``.
By default the *exhaustive* schedule is used: it visits exactly the power
levels at which new neighbours appear, so the resulting per-node power equals
the idealized ``p(rad^-_{u,alpha})`` used in the paper's analysis and Table 1
(a doubling schedule over-shoots by up to the growth factor).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.geometry.angles import max_angular_gap_of_sorted
from repro.net.network import Network
from repro.net.node import Node, NodeId
from repro.radio.power import ExhaustiveSchedule, PowerSchedule
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState


def _candidate_neighbors(network: Network, node: Node) -> List[Node]:
    """Nodes that could ever be discovered by ``node`` (within maximum range).

    Delegates to :meth:`Network.neighbors_within`, which answers from the
    cached spatial index (falling back to a linear scan when indexing is
    disabled); either way the result is ID-sorted and uses the repo-wide
    ``<= max_range + 1e-12`` tolerance.
    """
    max_range = network.power_model.max_range
    return [network.node(other_id) for other_id in network.neighbors_within(node.node_id, max_range)]


def _sorted_candidates(network: Network, node: Node) -> List[Tuple[float, Node, float]]:
    """``(required_power, node, distance)`` for each candidate, sorted.

    The growing phase visits strictly increasing power levels, so with
    candidates pre-sorted by required power (ties broken by node ID for
    determinism) each level consumes a contiguous slice instead of
    rescanning the whole candidate set.
    """
    power_model = network.power_model
    candidates = []
    if network.use_spatial_index:
        # The index already computed each candidate's distance (with the
        # same math.hypot call Node.distance_to makes); reuse it.
        for other_id, dist in network.spatial_index().neighbors_with_distances(
            node.position, power_model.max_range, exclude=node.node_id
        ):
            candidates.append((power_model.required_power(dist), network.node(other_id), dist))
    else:
        for other in _candidate_neighbors(network, node):
            dist = node.distance_to(other)
            candidates.append((power_model.required_power(dist), other, dist))
    candidates.sort(key=lambda item: (item[0], item[1].node_id))
    return candidates


def _patch_sorted_candidates(network: Network, adjacency: dict, dirty) -> Optional[dict]:
    """Splice a dirty candidate-list cache back to freshness, in place.

    The nodes whose candidate lists may have changed are the dirty nodes
    themselves, everyone who previously had a dirty node in range (read off
    the stale adjacency — it lists exactly the nodes within range of the
    dirty node's old position) and everyone within range of a dirty node's
    new position (an index query).  Each affected list is rebuilt from the
    spatial index with the same floats and the same ``(required_power,
    node_id)`` sort the full enumeration uses, so the patched cache is
    indistinguishable from a rebuilt one (property-tested).  Returns ``None``
    when the affected region covers most of the network and a full rebuild
    is cheaper.
    """
    power_model = network.power_model
    index = network.spatial_index()
    max_range = power_model.max_range
    affected = set()
    for d in dirty:
        affected.add(d)
        old = adjacency.get(d)
        if old:
            affected.update(other.node_id for _, other, _ in old)
        if d in index and d in network:
            affected.update(
                index.neighbors_within(network.node(d).position, max_range, exclude=d)
            )
    if 2 * len(affected) >= max(len(adjacency), 1):
        return None
    required_power = power_model.required_power
    for a in affected:
        if a not in network or not network.node(a).alive:
            adjacency.pop(a, None)
            continue
        node = network.node(a)
        items = [
            (required_power(dist), network.node(other_id), dist)
            for other_id, dist in index.neighbors_with_distances(
                node.position, max_range, exclude=a
            )
        ]
        items.sort(key=lambda item: (item[0], item[1].node_id))
        adjacency[a] = items
    return adjacency


def _all_sorted_candidates(network: Network) -> dict:
    """Per-node sorted candidate lists for every alive node, in one index pass.

    A single ``pairs_within(max_range)`` enumeration computes each pairwise
    distance (and its required power) once and credits it to both endpoints,
    halving the distance work of querying per node.  The result is memoized
    in the network's derived cache, so repeated CBTC runs over an unchanged
    network — Table 1 evaluates four optimization configs per network,
    sweeps run many alphas — skip the enumeration entirely.  When only a few
    nodes changed since the cache was stored (epoch-to-epoch mobility), the
    entry is spliced per region by :func:`_patch_sorted_candidates` instead
    of being recomputed wholesale.
    """
    power_model = network.power_model
    cache = network.derived_cache
    cache_key = ("cbtc_sorted_candidates", power_model)
    entry = cache.entry(cache_key)
    if entry is not None:
        adjacency, dirty = entry
        if not dirty:
            return adjacency
        patched = _patch_sorted_candidates(network, adjacency, dirty)
        if patched is not None:
            cache.put(cache_key, patched)
            return patched
    required_power = power_model.required_power
    alive = [node for node in network.nodes if node.alive]
    nodes_by_id = {node.node_id: node for node in alive}
    adjacency = {node.node_id: [] for node in alive}
    for u, v, dist in network.spatial_index().pairs_within(power_model.max_range):
        required = required_power(dist)
        adjacency[u].append((required, nodes_by_id[v], dist))
        adjacency[v].append((required, nodes_by_id[u], dist))
    for items in adjacency.values():
        items.sort(key=lambda item: (item[0], item[1].node_id))
    cache[cache_key] = adjacency
    return adjacency


def _schedule_for_node(
    network: Network,
    candidates: List[Tuple[float, Node, float]],
    schedule: Optional[PowerSchedule],
) -> List[float]:
    """Concrete power levels for one node's growing phase."""
    power_model = network.power_model
    if schedule is not None:
        return schedule(power_model)
    exhaustive = ExhaustiveSchedule(raw_levels=tuple(required for required, _, _ in candidates))
    return exhaustive(power_model)


def run_cbtc_for_node(
    network: Network,
    node_id: NodeId,
    alpha: float,
    *,
    schedule: Optional[PowerSchedule] = None,
    initial_power: float = 0.0,
    _candidates: Optional[List[Tuple[float, Node, float]]] = None,
) -> NodeState:
    """Run the growing phase of CBTC(alpha) at a single node.

    Parameters
    ----------
    network:
        The physical network (positions + power model).
    node_id:
        The node at which to run the algorithm.
    alpha:
        The cone angle parameter.
    schedule:
        Power-level schedule (the ``Increase`` function).  ``None`` selects
        the exhaustive schedule of the node's candidate-neighbour power
        levels, which yields the idealized minimum growth power.
    initial_power:
        Lower bound on the starting power; levels below it are skipped.  The
        reconfiguration rules use this to restart the growing phase from
        ``p(rad^-_{u,alpha})`` instead of from ``p0``.

    Returns
    -------
    NodeState
        Discovered neighbours (with discovery-power tags), the final power,
        and whether the node ended as a boundary node.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    node = network.node(node_id)
    state = NodeState(node_id=node_id, alpha=alpha)
    power_model = network.power_model
    candidates = _sorted_candidates(network, node) if _candidates is None else _candidates
    levels = [level for level in _schedule_for_node(network, candidates, schedule) if level >= initial_power]
    if not levels:
        levels = [power_model.max_power]

    final_power = initial_power
    next_candidate = 0
    # Discovered directions, kept sorted incrementally so the per-level gap
    # test is a linear scan instead of a fresh sort (directions from
    # ``direction_to`` are already in [0, 2*pi), so no normalization needed).
    directions: List[float] = []
    gap_open: Optional[bool] = None

    for level in levels:
        state.rounds += 1
        final_power = level
        # Power levels are strictly increasing, so the acceptance threshold
        # is monotone and each candidate is examined exactly once.
        threshold = level * (1 + 1e-12)
        discovered_this_level = False
        while next_candidate < len(candidates) and candidates[next_candidate][0] <= threshold:
            required, other, distance = candidates[next_candidate]
            next_candidate += 1
            direction = node.direction_to(other)
            state.add_neighbor(
                NeighborRecord(
                    neighbor=other.node_id,
                    direction=direction,
                    required_power=required,
                    discovery_power=level,
                    distance=distance,
                )
            )
            bisect.insort(directions, direction)
            discovered_this_level = True
        # The gap can only change when a direction was added.
        if gap_open is None or discovered_this_level:
            gap_open = max_angular_gap_of_sorted(directions) > alpha + 1e-12
        if not gap_open:
            break

    state.final_power = final_power
    state.used_max_power = (
        abs(final_power - power_model.max_power) <= 1e-9 * max(1.0, power_model.max_power)
    )
    return state


def run_cbtc(
    network: Network,
    alpha: float,
    *,
    schedule: Optional[PowerSchedule] = None,
) -> CBTCOutcome:
    """Run CBTC(alpha) at every alive node of the network.

    Returns a :class:`CBTCOutcome` containing one :class:`NodeState` per
    alive node.  The neighbour relation it induces is the paper's
    ``N_alpha``; use :mod:`repro.core.topology` to build the graphs
    ``G_alpha`` (symmetric closure) and ``G^-_alpha`` (symmetric subset), and
    :mod:`repro.core.optimizations` to apply the optimizations.
    """
    outcome = CBTCOutcome(alpha=alpha)
    all_candidates = _all_sorted_candidates(network) if network.use_spatial_index else None
    for node in network.nodes:
        if not node.alive:
            continue
        outcome.states[node.node_id] = run_cbtc_for_node(
            network,
            node.node_id,
            alpha,
            schedule=schedule,
            _candidates=None if all_candidates is None else all_candidates[node.node_id],
        )
    return outcome
