"""The basic cone-based topology control algorithm, CBTC(alpha).

This module implements the growing phase of Figure 1 of the paper as a
centralized, per-node computation.  "Centralized" here refers only to how the
computation is *executed* (a loop over nodes with access to ground-truth
distances), not to the information each node uses: the computation at node
``u`` consumes exactly what the distributed protocol would learn — which
nodes acknowledge a broadcast at each power level, the direction each
acknowledgement arrives from, and the power required to reach each
discovered node.  The message-passing version that actually exchanges Hello
and Ack messages over the simulator lives in :mod:`repro.core.protocol`; the
two produce identical neighbour sets for the same power schedule (this is
covered by an integration test).

Algorithm (per node ``u``)::

    N_u <- {};  D_u <- {};  p_u <- p0
    while p_u < P and gap_alpha(D_u):
        p_u <- Increase(p_u)
        bcast(u, p_u, "Hello") and gather Acks
        N_u <- N_u + {v : v discovered};  D_u <- D_u + {dir_u(v)}

The power schedule provides the sequence ``p0 < Increase(p0) < ... <= P``.
By default the *exhaustive* schedule is used: it visits exactly the power
levels at which new neighbours appear, so the resulting per-node power equals
the idealized ``p(rad^-_{u,alpha})`` used in the paper's analysis and Table 1
(a doubling schedule over-shoots by up to the growth factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.network import Network
from repro.net.node import Node, NodeId
from repro.radio.power import ExhaustiveSchedule, PowerSchedule
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState


def _candidate_neighbors(network: Network, node: Node) -> List[Node]:
    """Nodes that could ever be discovered by ``node`` (within maximum range)."""
    max_range = network.power_model.max_range
    return [
        other
        for other in network.nodes
        if other.node_id != node.node_id and other.alive and node.distance_to(other) <= max_range + 1e-12
    ]


def _schedule_for_node(network: Network, node: Node, schedule: Optional[PowerSchedule]) -> List[float]:
    """Concrete power levels for one node's growing phase."""
    power_model = network.power_model
    if schedule is not None:
        return schedule(power_model)
    distances = [node.distance_to(other) for other in _candidate_neighbors(network, node)]
    exhaustive = ExhaustiveSchedule(raw_levels=tuple(power_model.required_power(d) for d in distances))
    return exhaustive(power_model)


def run_cbtc_for_node(
    network: Network,
    node_id: NodeId,
    alpha: float,
    *,
    schedule: Optional[PowerSchedule] = None,
    initial_power: float = 0.0,
) -> NodeState:
    """Run the growing phase of CBTC(alpha) at a single node.

    Parameters
    ----------
    network:
        The physical network (positions + power model).
    node_id:
        The node at which to run the algorithm.
    alpha:
        The cone angle parameter.
    schedule:
        Power-level schedule (the ``Increase`` function).  ``None`` selects
        the exhaustive schedule of the node's candidate-neighbour power
        levels, which yields the idealized minimum growth power.
    initial_power:
        Lower bound on the starting power; levels below it are skipped.  The
        reconfiguration rules use this to restart the growing phase from
        ``p(rad^-_{u,alpha})`` instead of from ``p0``.

    Returns
    -------
    NodeState
        Discovered neighbours (with discovery-power tags), the final power,
        and whether the node ended as a boundary node.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    node = network.node(node_id)
    state = NodeState(node_id=node_id, alpha=alpha)
    power_model = network.power_model
    candidates = _candidate_neighbors(network, node)
    levels = [level for level in _schedule_for_node(network, node, schedule) if level >= initial_power]
    if not levels:
        levels = [power_model.max_power]

    discovered: Dict[NodeId, NeighborRecord] = {}
    final_power = initial_power
    used_max = False

    for level in levels:
        state.rounds += 1
        final_power = level
        for other in candidates:
            if other.node_id in discovered:
                continue
            distance = node.distance_to(other)
            required = power_model.required_power(distance)
            if required <= level * (1 + 1e-12):
                record = NeighborRecord(
                    neighbor=other.node_id,
                    direction=node.direction_to(other),
                    required_power=required,
                    discovery_power=level,
                    distance=distance,
                )
                discovered[other.node_id] = record
                state.add_neighbor(record)
        if not state.has_gap():
            break
    else:
        used_max = abs(final_power - power_model.max_power) <= 1e-9 * max(1.0, power_model.max_power)

    # If the loop exhausted every level, the node transmitted at maximum power.
    if abs(final_power - power_model.max_power) <= 1e-9 * max(1.0, power_model.max_power):
        used_max = True

    state.final_power = final_power
    state.used_max_power = used_max
    return state


def run_cbtc(
    network: Network,
    alpha: float,
    *,
    schedule: Optional[PowerSchedule] = None,
) -> CBTCOutcome:
    """Run CBTC(alpha) at every alive node of the network.

    Returns a :class:`CBTCOutcome` containing one :class:`NodeState` per
    alive node.  The neighbour relation it induces is the paper's
    ``N_alpha``; use :mod:`repro.core.topology` to build the graphs
    ``G_alpha`` (symmetric closure) and ``G^-_alpha`` (symmetric subset), and
    :mod:`repro.core.optimizations` to apply the optimizations.
    """
    outcome = CBTCOutcome(alpha=alpha)
    for node in network.nodes:
        if not node.alive:
            continue
        outcome.states[node.node_id] = run_cbtc_for_node(network, node.node_id, alpha, schedule=schedule)
    return outcome
