"""Building topology graphs from CBTC outcomes.

The paper distinguishes several graphs over the node set ``V``:

* ``N_alpha`` — the (directed) neighbour relation: ``(u, v)`` iff ``v`` is in
  ``u``'s final discovered set.  Not symmetric in general (Example 2.1).
* ``E_alpha`` / ``G_alpha`` — the *symmetric closure*: ``(u, v)`` iff
  ``(u, v)`` or ``(v, u)`` is in ``N_alpha``.  Preserves connectivity for
  ``alpha <= 5*pi/6`` (Theorem 2.1).
* ``E^-_alpha`` / ``G^-_alpha`` — the largest symmetric *subset*: ``(u, v)``
  iff both ``(u, v)`` and ``(v, u)`` are in ``N_alpha``.  Preserves
  connectivity for ``alpha <= 2*pi/3`` (Theorem 3.2 — asymmetric edge
  removal).

:class:`TopologyResult` packages a final undirected graph with the per-node
transmission radius and power it implies (the power each node needs to reach
all of its neighbours in that graph), which is precisely the quantity
averaged in the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.net.network import Network
from repro.net.node import NodeId
from repro.core.state import CBTCOutcome


def neighbor_digraph(outcome: CBTCOutcome, network: Optional[Network] = None) -> nx.DiGraph:
    """The directed neighbour relation ``N_alpha`` as a :class:`networkx.DiGraph`.

    Edge attributes: ``length`` (distance), ``required_power`` and
    ``discovery_power``.  Node attribute ``pos`` is attached when a network
    is supplied.
    """
    digraph = nx.DiGraph()
    for state in outcome:
        digraph.add_node(state.node_id)
    if network is not None:
        for node_id in digraph.nodes:
            digraph.nodes[node_id]["pos"] = network.node(node_id).position.as_tuple()
    for state in outcome:
        # Sorted so edge insertion order (which leaks into nx iteration
        # order downstream) never depends on discovery history.
        for _, record in sorted(state.neighbors.items()):
            digraph.add_edge(
                state.node_id,
                record.neighbor,
                length=record.distance,
                required_power=record.required_power,
                discovery_power=record.discovery_power,
            )
    return digraph


def _undirected_from_pairs(
    outcome: CBTCOutcome,
    pairs: List[Tuple[NodeId, NodeId]],
    network: Optional[Network],
) -> nx.Graph:
    graph = nx.Graph()
    for state in outcome:
        graph.add_node(state.node_id)
    if network is not None:
        for node_id in graph.nodes:
            graph.nodes[node_id]["pos"] = network.node(node_id).position.as_tuple()
    for u, v in pairs:
        length = _edge_length(outcome, u, v)
        graph.add_edge(u, v, length=length)
    return graph


def edge_length_from_outcome(outcome: CBTCOutcome, u: NodeId, v: NodeId) -> float:
    """The distance recorded for edge ``(u, v)``, read canonically.

    Both endpoints' records normally agree bit-for-bit (``hypot`` is
    symmetric), but under reconfiguration each side's record may be stale by
    up to the refresh tolerance.  Preferring the smaller endpoint's record
    makes the stored edge length independent of state iteration order, which
    the incremental pipeline's byte-identity contract relies on.
    """
    a, b = (u, v) if u < v else (v, u)
    state_a = outcome.states.get(a)
    if state_a is not None and b in state_a.neighbors:
        return state_a.neighbors[b].distance
    state_b = outcome.states.get(b)
    if state_b is not None and a in state_b.neighbors:
        return state_b.neighbors[a].distance
    raise KeyError(f"no neighbour record for edge ({u}, {v})")


_edge_length = edge_length_from_outcome


def symmetric_closure_graph(outcome: CBTCOutcome, network: Optional[Network] = None) -> nx.Graph:
    """``G_alpha``: the symmetric closure of ``N_alpha`` (the paper's ``E_alpha``)."""
    pairs = []
    for state in outcome:
        for neighbor in state.neighbor_ids:
            pairs.append((state.node_id, neighbor))
    return _undirected_from_pairs(outcome, pairs, network)


def symmetric_subset_graph(outcome: CBTCOutcome, network: Optional[Network] = None) -> nx.Graph:
    """``G^-_alpha``: the largest symmetric subset of ``N_alpha`` (``E^-_alpha``)."""
    pairs = []
    for state in outcome:
        for neighbor in state.neighbor_ids:
            other = outcome.states.get(neighbor)
            if other is not None and state.node_id in other.neighbors:
                pairs.append((state.node_id, neighbor))
    return _undirected_from_pairs(outcome, pairs, network)


@dataclass
class TopologyResult:
    """A final controlled topology together with its per-node cost.

    Attributes
    ----------
    graph:
        The undirected communication graph the algorithm settled on.
    alpha:
        The cone angle used.
    label:
        Human-readable description of which variant/optimizations produced it.
    outcome:
        The underlying per-node CBTC states (after any shrink-back).
    node_radius:
        For each node, the distance to its farthest neighbour in ``graph`` —
        the transmission radius the node must sustain to keep all its edges
        (the paper's per-node "radius").
    node_power:
        The power corresponding to ``node_radius`` under the network's power
        model.
    """

    graph: nx.Graph
    alpha: float
    label: str
    outcome: CBTCOutcome
    node_radius: Dict[NodeId, float] = field(default_factory=dict)
    node_power: Dict[NodeId, float] = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        """Number of nodes in the final graph."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of edges in the final graph."""
        return self.graph.number_of_edges()

    def average_degree(self) -> float:
        """Average node degree of the final graph."""
        n = self.graph.number_of_nodes()
        if n == 0:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / n

    def average_radius(self) -> float:
        """Average per-node transmission radius (the paper's "Average radius")."""
        if not self.node_radius:
            return 0.0
        # Summed in node-id order: float addition is not associative, and the
        # dict's insertion order differs between incremental and full builds.
        return sum(radius for _, radius in sorted(self.node_radius.items())) / len(self.node_radius)

    def max_radius(self) -> float:
        """Largest per-node transmission radius."""
        if not self.node_radius:
            return 0.0
        return max(self.node_radius.values())

    def total_power(self) -> float:
        """Sum of per-node transmission powers (an aggregate energy proxy)."""
        return sum(power for _, power in sorted(self.node_power.items()))

    def degree_of(self, node_id: NodeId) -> int:
        """Degree of one node in the final graph."""
        return self.graph.degree[node_id]


def per_node_radius(graph: nx.Graph, network: Network) -> Dict[NodeId, float]:
    """Distance to the farthest graph neighbour, per node (0 for isolated nodes).

    Prefers the ``length`` attribute stored on edges (the same floats the
    network would recompute from positions) and only falls back to geometry
    for graphs built without it.
    """
    radius: Dict[NodeId, float] = {}
    for node_id, adjacency in graph.adj.items():
        best = 0.0
        for other, data in adjacency.items():
            length = data["length"] if "length" in data else network.distance(node_id, other)
            if length > best:
                best = length
        radius[node_id] = best
    return radius


def topology_from_outcome(
    outcome: CBTCOutcome,
    network: Network,
    *,
    symmetric: str = "closure",
    label: Optional[str] = None,
) -> TopologyResult:
    """Build a :class:`TopologyResult` from a CBTC outcome.

    ``symmetric`` selects between the symmetric ``"closure"`` (``E_alpha``)
    and the symmetric ``"subset"`` (``E^-_alpha``, i.e. asymmetric edge
    removal already applied).
    """
    if symmetric == "closure":
        graph = symmetric_closure_graph(outcome, network)
        default_label = "G_alpha (symmetric closure)"
    elif symmetric == "subset":
        graph = symmetric_subset_graph(outcome, network)
        default_label = "G^-_alpha (symmetric subset)"
    else:
        raise ValueError("symmetric must be 'closure' or 'subset'")
    radius = per_node_radius(graph, network)
    power = {node_id: network.power_model.required_power(r) for node_id, r in radius.items()}
    return TopologyResult(
        graph=graph,
        alpha=outcome.alpha,
        label=label if label is not None else default_label,
        outcome=outcome,
        node_radius=radius,
        node_power=power,
    )
