"""The three optimizations of Section 3.

* **Shrink-back** (Section 3.1, Theorem 3.1): boundary nodes — those that
  reached maximum power and still have an alpha-gap — walk their discovered
  neighbours back from the highest discovery-power tag, dropping whole power
  levels as long as the cone coverage ``cover_alpha`` is unchanged.  Nodes
  that terminated without a gap are untouched (removing anything would
  shrink their coverage).
* **Asymmetric edge removal** (Section 3.2, Theorem 3.2): for
  ``alpha <= 2*pi/3`` connectivity survives keeping only the edges present
  in *both* directions of ``N_alpha`` (the graph ``G^-_alpha``).
* **Pairwise edge removal** (Section 3.3, Theorem 3.6): an edge ``(u, v)``
  is *redundant* if ``u`` has another neighbour ``w`` with
  ``angle(v, u, w) < pi/3`` and ``eid(u, w) < eid(u, v)``, where edge IDs
  order edges lexicographically by (length, larger endpoint ID, smaller
  endpoint ID).  All redundant edges can be removed while preserving
  connectivity; following the paper, only redundant edges longer than the
  longest non-redundant edge incident to one of their endpoints are actually
  dropped, since shorter ones do not reduce anybody's transmission radius.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.geometry.angles import TWO_PI, angular_gaps_of_sorted, arcs_equal, cover
from repro.net.network import Network
from repro.net.node import NodeId
from repro.core.constants import (
    ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD,
    PAIRWISE_ANGLE_THRESHOLD,
)
from repro.core.state import CBTCOutcome, NodeState


# --------------------------------------------------------------------------- #
# Shrink-back (op1)
# --------------------------------------------------------------------------- #
def _coverage_matches(
    kept_directions: List[float],
    original_arcs: List[Tuple[float, float]],
    original_is_full_circle: bool,
    alpha: float,
) -> bool:
    """Whether ``cover(kept_directions)`` equals the original coverage.

    Equivalent to ``arcs_equal(cover(kept_directions, alpha), original_arcs)``
    but with a gap-based fast path for the overwhelmingly common case where
    the original coverage is the full circle (every non-boundary node): the
    prefix covers the full circle iff its largest angular gap is at most
    ``alpha`` (+ the 1e-12 tolerance ``cover`` uses), and it can only *look*
    fully covered to ``arcs_equal``'s 1e-9 arc tolerance when exactly one
    gap exceeds ``alpha`` by less than ~2e-9 — only that rare corner pays
    for a real arc merge.
    """
    if not original_is_full_circle:
        return arcs_equal(cover(kept_directions, alpha, normalized=True), original_arcs)
    gaps = angular_gaps_of_sorted(sorted(kept_directions))
    if max(gaps) <= alpha + 1e-12:
        return True
    oversized = [gap for gap in gaps if gap > alpha]
    if len(oversized) != 1 or oversized[0] - alpha > 2.5e-9:
        # cover() would produce one arc per oversized gap; more than one arc,
        # or a single uncovered span wider than arcs_equal's tolerance, can
        # never compare equal to the full circle.
        return False
    return arcs_equal(cover(kept_directions, alpha, normalized=True), original_arcs)


def shrink_back_node(state: NodeState) -> NodeState:
    """Apply the shrink-back operation to a single node's state.

    Neighbours are grouped by their discovery-power tag; starting from the
    highest tag, whole groups are removed as long as the alpha-coverage of
    the remaining directions equals the original coverage.  The node's final
    power is reduced to the highest surviving tag (or the power needed to
    reach the farthest surviving neighbour, whichever is larger).
    """
    if not state.neighbors:
        return state
    original_directions = state.directions
    # The reference coverage is the same for every candidate prefix; compute
    # its merged arcs once instead of once per keep_count.  Directions stored
    # in neighbour records come from Point.angle_to, hence are normalized.
    original_arcs = cover(original_directions, state.alpha, normalized=True)
    # ``cover`` returns this exact literal for fully covered circles, so the
    # comparison is an exact one (no tolerance games).
    original_is_full_circle = original_arcs == [(0.0, TWO_PI)]
    levels = sorted({record.discovery_power for record in state.neighbors.values()})
    # Try to keep only the neighbours discovered at the first i levels, for the
    # smallest i that preserves coverage.
    for keep_count in range(1, len(levels) + 1):
        # Discovery tags are exactly the level values, so the prefix set
        # membership test reduces to a threshold comparison.
        level_threshold = levels[keep_count - 1]
        kept_records = [
            record for record in state.neighbors.values() if record.discovery_power <= level_threshold
        ]
        kept_directions = [record.direction for record in kept_records]
        if _coverage_matches(kept_directions, original_arcs, original_is_full_circle, state.alpha):
            shrunk = NodeState(
                node_id=state.node_id,
                alpha=state.alpha,
                final_power=max(
                    max(record.required_power for record in kept_records),
                    0.0,
                ),
                used_max_power=state.used_max_power,
                rounds=state.rounds,
            )
            for record in kept_records:
                shrunk.add_neighbor(record)
            return shrunk
    return state


def shrink_back(outcome: CBTCOutcome) -> CBTCOutcome:
    """Apply shrink-back to every node of an outcome (returns a new outcome).

    Non-boundary nodes are left untouched automatically: dropping their
    highest power level would reopen an alpha-gap and change the coverage.
    """
    shrunk = CBTCOutcome(alpha=outcome.alpha)
    for state in outcome:
        shrunk.states[state.node_id] = shrink_back_node(state.copy())
    return shrunk


# --------------------------------------------------------------------------- #
# Asymmetric edge removal (op2)
# --------------------------------------------------------------------------- #
def asymmetric_edge_removal(outcome: CBTCOutcome, *, enforce_threshold: bool = True) -> List[Tuple[NodeId, NodeId]]:
    """The edge set ``E^-_alpha`` (both directions present in ``N_alpha``).

    Raises ``ValueError`` when ``alpha > 2*pi/3`` and ``enforce_threshold``
    is left on, because Theorem 3.2 only guarantees connectivity below that
    threshold (and Example 2.1 shows it genuinely fails above it).
    """
    if enforce_threshold and outcome.alpha > ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD + 1e-12:
        raise ValueError(
            "asymmetric edge removal requires alpha <= 2*pi/3 "
            f"(got alpha = {outcome.alpha:.6f})"
        )
    edges: List[Tuple[NodeId, NodeId]] = []
    for state in outcome:
        for neighbor in state.neighbor_ids:
            if neighbor <= state.node_id:
                continue
            other = outcome.states.get(neighbor)
            if other is not None and state.node_id in other.neighbors:
                edges.append((state.node_id, neighbor))
    return edges


# --------------------------------------------------------------------------- #
# Pairwise edge removal (op3)
# --------------------------------------------------------------------------- #
def edge_id(network: Network, u: NodeId, v: NodeId) -> Tuple[float, NodeId, NodeId]:
    """The paper's edge ID ``eid(u, v) = (d(u, v), max(ID), min(ID))``.

    Edge IDs compare lexicographically and are unique because node IDs are
    unique, giving a strict total order on edges even when distances tie.
    """
    return (network.distance(u, v), max(u, v), min(u, v))


def redundant_edges_from_node(
    graph: nx.Graph,
    network: Network,
    u: NodeId,
    *,
    angle_threshold: float = PAIRWISE_ANGLE_THRESHOLD,
) -> Set[Tuple[NodeId, NodeId]]:
    """Edges witnessed redundant by node ``u``'s scan (Definition 3.5).

    One node's contribution to :func:`redundant_edges`: the edges ``(u, v)``
    for which some other neighbour ``w`` of ``u`` satisfies
    ``angle(v, u, w) < pi/3`` and ``eid(u, w) < eid(u, v)``.  The scan
    depends only on ``u``'s adjacency and the current positions of ``u`` and
    its neighbours, which is the locality the incremental pipeline exploits:
    after a mobility/churn delta it rescans only the nodes whose inputs
    changed.  Returned edges are normalized as ``(min, max)`` pairs.
    """
    node_of = network.node
    redundant: Set[Tuple[NodeId, NodeId]] = set()
    neighbors = list(graph.neighbors(u))
    if len(neighbors) < 2:
        return redundant
    u_node = node_of(u)
    directions = {v: u_node.direction_to(node_of(v)) for v in neighbors}
    ids = {v: (u_node.distance_to(node_of(v)), max(u, v), min(u, v)) for v in neighbors}
    # Visiting neighbours in increasing edge-ID order means only the
    # already-seen ones can witness redundancy (eid(u, w) < eid(u, v)),
    # halving the scan.  Edge IDs are a strict total order, so this is
    # exactly Definition 3.5.
    seen: List[NodeId] = []
    for v in sorted(neighbors, key=ids.__getitem__):
        direction_v = directions[v]
        for w in seen:
            # angle_difference inlined: directions are already in [0, 2*pi).
            diff = abs(direction_v - directions[w])
            if diff > math.pi:
                diff = TWO_PI - diff
            if diff < angle_threshold:
                redundant.add((min(u, v), max(u, v)))
                break
        seen.append(v)
    return redundant


def redundant_edges(
    graph: nx.Graph,
    network: Network,
    *,
    angle_threshold: float = PAIRWISE_ANGLE_THRESHOLD,
) -> Set[Tuple[NodeId, NodeId]]:
    """All redundant edges of ``graph`` per Definition 3.5.

    An edge ``(u, v)`` is redundant if some other neighbour ``w`` of ``u``
    satisfies ``angle(v, u, w) < pi/3`` and ``eid(u, w) < eid(u, v)``.
    Returned edges are normalized as ``(min, max)`` pairs.
    """
    redundant: Set[Tuple[NodeId, NodeId]] = set()
    for u in graph.nodes:
        redundant |= redundant_edges_from_node(
            graph, network, u, angle_threshold=angle_threshold
        )
    return redundant


def pairwise_edge_removal(
    graph: nx.Graph,
    network: Network,
    *,
    remove_all: bool = False,
    angle_threshold: float = PAIRWISE_ANGLE_THRESHOLD,
) -> nx.Graph:
    """Apply pairwise edge removal to ``graph`` (returns a new graph).

    With ``remove_all=False`` (the paper's choice) a redundant edge is only
    dropped when it is longer than the longest non-redundant edge incident to
    at least one of its endpoints, because only then does the removal lower a
    node's transmission radius.  With ``remove_all=True`` every redundant
    edge is dropped (Theorem 3.6 guarantees this still preserves
    connectivity; it minimizes degree rather than power).
    """
    redundant = redundant_edges(graph, network, angle_threshold=angle_threshold)
    result = graph.copy()
    if not redundant:
        return result

    if remove_all:
        result.remove_edges_from(redundant)
        return result

    # Longest non-redundant edge length per node.  Edge lengths are stored on
    # the graph (same floats the network would recompute).
    longest_non_redundant: Dict[NodeId, float] = {node: 0.0 for node in graph.nodes}
    for u, v, data in graph.edges(data=True):
        key = (min(u, v), max(u, v))
        if key in redundant:
            continue
        length = data["length"] if "length" in data else network.distance(u, v)
        longest_non_redundant[u] = max(longest_non_redundant[u], length)
        longest_non_redundant[v] = max(longest_non_redundant[v], length)

    to_remove = []
    for u, v in redundant:
        data = graph[u][v]
        length = data["length"] if "length" in data else network.distance(u, v)
        if length > longest_non_redundant[u] or length > longest_non_redundant[v]:
            to_remove.append((u, v))
    result.remove_edges_from(to_remove)
    return result
