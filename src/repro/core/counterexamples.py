"""Constructions from the paper's proofs (Figures 2 and 5).

Two analytic node placements are reproduced exactly:

* :func:`asymmetry_example` — Example 2.1 / Figure 2: for
  ``2*pi/3 < alpha <= 5*pi/6`` the relation ``N_alpha`` is not symmetric
  (``(v, u0)`` is in ``N_alpha`` but ``(u0, v)`` is not), which is why
  ``G_alpha`` must take the symmetric *closure*.
* :func:`disconnection_example` — Theorem 2.4 / Figure 5: for
  ``alpha = 5*pi/6 + epsilon`` there is a connected ``G_R`` whose ``G_alpha``
  is disconnected, proving the 5*pi/6 bound is tight.

Both return small dataclasses exposing the constructed network, the angle
used and the node IDs with the paper's names, so tests and benchmarks can
assert the claimed properties directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.geometry import Point, translate_polar
from repro.net.network import Network
from repro.net.node import NodeId
from repro.radio import PathLossModel, PowerModel
from repro.core.constants import (
    ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD,
    ALPHA_CONNECTIVITY_THRESHOLD,
)


@dataclass(frozen=True)
class AsymmetryExample:
    """The Figure 2 construction showing ``N_alpha`` is not symmetric."""

    network: Network
    alpha: float
    epsilon: float
    max_range: float
    names: Dict[str, NodeId]

    @property
    def u0(self) -> NodeId:
        """The node whose edge towards ``v`` is one-directional."""
        return self.names["u0"]

    @property
    def v(self) -> NodeId:
        """The far node that still discovers ``u0``."""
        return self.names["v"]


def asymmetry_example(*, epsilon: float = math.pi / 24.0, max_range: float = 1.0) -> AsymmetryExample:
    """Build Example 2.1 (Figure 2).

    Five nodes ``u0, u1, u2, u3, v`` with ``d(u0, v) = R``:

    * ``u1`` and ``u2`` sit at angle ``pi/3 + epsilon`` on either side of the
      ray ``u0 -> v`` with the triangle angles of the paper (the angle at
      ``v`` is ``pi/3 - epsilon``), which makes them closer to ``u0`` than
      ``R`` but farther than ``R`` from ``v``;
    * ``u3`` sits diametrically opposite ``v`` at distance ``R/2``.

    For any ``alpha`` with ``2*pi/3 < alpha <= 5*pi/6`` (i.e.
    ``alpha = 2*pi/3 + 2*epsilon`` with ``0 < epsilon < pi/12``), node ``u0``
    terminates CBTC(alpha) without discovering ``v`` while ``v`` (a boundary
    node) discovers ``u0``; hence ``(v, u0)`` is in ``N_alpha`` but
    ``(u0, v)`` is not.
    """
    if not 0.0 < epsilon < math.pi / 12.0:
        raise ValueError("epsilon must lie strictly between 0 and pi/12")
    radius = max_range
    alpha = ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD + 2.0 * epsilon

    u0 = Point(0.0, 0.0)
    v = Point(radius, 0.0)
    # In triangle (u0, v, u_i): angle at u0 is pi/3 + epsilon, angle at v is
    # pi/3 - epsilon, so the angle at u_i is pi/3 and the law of sines gives
    # d(u0, u_i) = R * sin(pi/3 - epsilon) / sin(pi/3).
    arm = radius * math.sin(math.pi / 3.0 - epsilon) / math.sin(math.pi / 3.0)
    u1 = translate_polar(u0, math.pi / 3.0 + epsilon, arm)
    u2 = translate_polar(u0, -(math.pi / 3.0 + epsilon), arm)
    u3 = translate_polar(u0, math.pi, radius / 2.0)

    power_model = PowerModel(propagation=PathLossModel(), max_range=radius)
    network = Network.from_points([u0, u1, u2, u3, v], power_model=power_model)
    names = {"u0": 0, "u1": 1, "u2": 2, "u3": 3, "v": 4}
    return AsymmetryExample(
        network=network,
        alpha=alpha,
        epsilon=epsilon,
        max_range=radius,
        names=names,
    )


@dataclass(frozen=True)
class DisconnectionExample:
    """The Figure 5 construction: ``G_R`` connected but ``G_alpha`` disconnected."""

    network: Network
    alpha: float
    epsilon: float
    max_range: float
    names: Dict[str, NodeId]

    @property
    def u_cluster(self) -> list:
        """Node IDs of the u-cluster."""
        return [self.names[name] for name in ("u0", "u1", "u2", "u3")]

    @property
    def v_cluster(self) -> list:
        """Node IDs of the v-cluster."""
        return [self.names[name] for name in ("v0", "v1", "v2", "v3")]

    @property
    def bridge(self) -> tuple:
        """The unique ``G_R`` edge between the clusters, ``(u0, v0)``."""
        return (self.names["u0"], self.names["v0"])


def disconnection_example(*, epsilon: float = math.pi / 36.0, max_range: float = 1.0) -> DisconnectionExample:
    """Build the Theorem 2.4 / Figure 5 construction for ``alpha = 5*pi/6 + epsilon``.

    Eight nodes form two clusters whose only ``G_R`` edge is ``(u0, v0)`` at
    distance exactly ``R``.  Each cluster gives its hub (``u0`` resp. ``v0``)
    three closer neighbours whose directions leave no gap larger than
    ``alpha``, so the hubs stop growing before reaching each other and the
    bridge edge is absent from ``G_alpha``: the controlled graph is
    disconnected even though ``G_R`` is connected.

    The v-cluster is the point reflection of the u-cluster through the
    midpoint of ``u0 v0``, exactly as in the paper's figure.
    """
    if not 0.0 < epsilon <= math.pi / 12.0:
        raise ValueError("epsilon must lie in (0, pi/12]")
    radius = max_range
    alpha = ALPHA_CONNECTIVITY_THRESHOLD + epsilon

    u0 = Point(0.0, 0.0)
    v0 = Point(radius, 0.0)

    # u1: perpendicular to the bridge, very close to u0 (its exact distance is
    # irrelevant to the angles; it must be small enough that the mirrored node
    # v3 stays out of range of u1).
    close = radius / 100.0
    u1 = translate_polar(u0, math.pi / 2.0, close)

    # u2: swept counterclockwise from u0->u1 by exactly min(alpha, pi) = alpha,
    # at distance R/2.  Its angle from the bridge direction exceeds pi/2, so it
    # is out of range of v0 no matter its distance from u0.
    u2 = translate_polar(u0, math.pi / 2.0 + alpha, radius / 2.0)

    # u3: on the horizontal line through s' (the lower intersection of the two
    # radius-R circles, at angle -pi/3 from u0), slightly to the left of s', so
    # that the angle u3-u0-u1 is strictly between 5*pi/6 and alpha.  Moving
    # left shrinks d(u0, u3) below R and pushes d(v0, u3) above R.
    gamma = epsilon / 2.0
    u3_direction = -(math.pi / 3.0 + gamma)
    # Intersect the ray at angle u3_direction with the line y = -sqrt(3)/2 * R.
    u3_distance = (math.sqrt(3.0) / 2.0) * radius / math.sin(math.pi / 3.0 + gamma)
    u3 = translate_polar(u0, u3_direction, u3_distance)

    def mirror(point: Point) -> Point:
        """Point reflection through the midpoint of u0 v0."""
        return Point(radius - point.x, -point.y)

    v1 = mirror(u1)
    v2 = mirror(u2)
    v3 = mirror(u3)

    power_model = PowerModel(propagation=PathLossModel(), max_range=radius)
    network = Network.from_points([u0, u1, u2, u3, v0, v1, v2, v3], power_model=power_model)
    names = {"u0": 0, "u1": 1, "u2": 2, "u3": 3, "v0": 4, "v1": 5, "v2": 6, "v3": 7}
    return DisconnectionExample(
        network=network,
        alpha=alpha,
        epsilon=epsilon,
        max_range=radius,
        names=names,
    )
