"""The distributed CBTC protocol, running on the discrete-event simulator.

This is the message-passing realization of Figure 1 of the paper.  Each node
runs a :class:`CBTCProtocol` process:

1. broadcast a ``Hello`` message at the current power level (the message
   carries the transmission power, as the paper requires);
2. every receiver answers with an ``Ack`` sent with just enough power to
   reach back (receivers can estimate that power from the transmission and
   reception powers) and echoing the Hello's power level;
3. after a per-level timeout the node checks the ``gap_alpha`` test over the
   directions of the acknowledgements received so far; if a gap remains and
   the maximum power has not been reached, it advances to the next power
   level and repeats;
4. when the node terminates, if asymmetric-edge-removal support is enabled
   it notifies every node it acknowledged but did not itself discover, so
   that the other side can exclude the asymmetric edge when constructing
   ``E^-_alpha`` (Section 3.2).

:func:`run_distributed_cbtc` wires one protocol per node into a
:class:`~repro.sim.engine.SimulationEngine`, runs it to quiescence, and
repackages the per-node results as a :class:`~repro.core.state.CBTCOutcome`
so that all the graph-construction and optimization machinery written for
the centralized computation applies unchanged.  With a reliable channel and
the same power schedule the distributed protocol discovers exactly the same
neighbour sets as :func:`repro.core.cbtc.run_cbtc` (verified by an
integration test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.net.network import Network
from repro.net.node import NodeId
from repro.radio.power import GeometricSchedule, PowerSchedule
from repro.sim.channel import Channel
from repro.sim.engine import SimulationEngine
from repro.sim.messages import Message
from repro.sim.process import DeliveryInfo, NodeProcess, ProtocolContext
from repro.sim.trace import MessageTrace
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState

HELLO = "hello"
ACK = "ack"
REMOVE = "remove"

_ROUND_TIMER = "cbtc-round"


class CBTCProtocol(NodeProcess):
    """Per-node distributed CBTC(alpha) process."""

    def __init__(
        self,
        node_id: NodeId,
        alpha: float,
        power_levels: List[float],
        *,
        round_timeout: float = 2.5,
        notify_asymmetric: bool = True,
    ) -> None:
        super().__init__(node_id)
        if not power_levels:
            raise ValueError("the protocol needs at least one power level")
        self.alpha = alpha
        self.power_levels = list(power_levels)
        self.round_timeout = round_timeout
        self.notify_asymmetric = notify_asymmetric
        self.level_index = 0
        self.state = NodeState(node_id=node_id, alpha=alpha)
        self.acked: Set[NodeId] = set()
        self.asymmetric_removed: Set[NodeId] = set()
        self.hello_broadcasts = 0

    # ------------------------------------------------------------------ #
    # Protocol steps
    # ------------------------------------------------------------------ #
    def on_start(self, ctx: ProtocolContext) -> None:
        self._broadcast_hello(ctx)

    def _current_power(self) -> float:
        return self.power_levels[self.level_index]

    def _broadcast_hello(self, ctx: ProtocolContext) -> None:
        power = self._current_power()
        self.state.rounds += 1
        self.hello_broadcasts += 1
        ctx.bcast(power, Message(HELLO, {"power": power}))
        ctx.set_timer(self.round_timeout, (_ROUND_TIMER, self.level_index))

    def on_message(self, ctx: ProtocolContext, message: Message, info: DeliveryInfo) -> None:
        if message.kind == HELLO:
            self._handle_hello(ctx, message, info)
        elif message.kind == ACK:
            self._handle_ack(ctx, message, info)
        elif message.kind == REMOVE:
            self.asymmetric_removed.add(info.sender)

    def _handle_hello(self, ctx: ProtocolContext, message: Message, info: DeliveryInfo) -> None:
        self.acked.add(info.sender)
        reply = Message(ACK, {"hello_power": message.get("power", info.transmit_power)})
        ctx.send(info.required_power, reply, info.sender)

    def _handle_ack(self, ctx: ProtocolContext, message: Message, info: DeliveryInfo) -> None:
        discovery_power = message.get("hello_power", self._current_power())
        record = NeighborRecord(
            neighbor=info.sender,
            direction=info.direction,
            required_power=info.required_power,
            discovery_power=discovery_power,
            distance=ctx.power_model.propagation.range_for_power(info.required_power),
        )
        self.state.add_neighbor(record)

    def on_timer(self, ctx: ProtocolContext, tag: Any) -> None:
        if not isinstance(tag, tuple) or tag[0] != _ROUND_TIMER:
            return
        if self.finished or tag[1] != self.level_index:
            return
        at_last_level = self.level_index >= len(self.power_levels) - 1
        if not self.state.has_gap() or at_last_level:
            self._finish(ctx)
            return
        self.level_index += 1
        self._broadcast_hello(ctx)

    def _finish(self, ctx: ProtocolContext) -> None:
        self.finish()
        self.state.final_power = self._current_power()
        self.state.used_max_power = self.level_index >= len(self.power_levels) - 1
        if self.notify_asymmetric:
            for node in sorted(self.acked - set(self.state.neighbors)):
                # Tell nodes we answered but never discovered that, from our
                # side, the edge is asymmetric (Section 3.2).  The notification
                # must reach them, so it is sent with the power estimated when
                # their Hello arrived; we re-estimate conservatively with our
                # final power if no estimate is available.
                ctx.send(self.state.final_power, Message(REMOVE, {}), node)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def neighbors_excluding_asymmetric(self) -> Dict[NodeId, NeighborRecord]:
        """Discovered neighbours minus those that asked to be removed."""
        return {
            node: record
            for node, record in self.state.neighbors.items()
            if node not in self.asymmetric_removed
        }


@dataclass
class DistributedRunResult:
    """Everything a distributed CBTC run produces."""

    outcome: CBTCOutcome
    engine: SimulationEngine
    protocols: Dict[NodeId, CBTCProtocol] = field(default_factory=dict)

    @property
    def trace(self) -> MessageTrace:
        """The message trace of the run."""
        return self.engine.trace

    def total_messages(self) -> int:
        """Total number of transmissions during the run."""
        return len(self.engine.trace)

    def hello_rounds(self) -> Dict[NodeId, int]:
        """Number of Hello broadcasts each node made (its growth rounds)."""
        return {node_id: protocol.hello_broadcasts for node_id, protocol in self.protocols.items()}

    def asymmetric_exclusions(self) -> Dict[NodeId, Set[NodeId]]:
        """Per node, the neighbours excluded via remove notifications."""
        return {node_id: set(protocol.asymmetric_removed) for node_id, protocol in self.protocols.items()}


def run_distributed_cbtc(
    network: Network,
    alpha: float,
    *,
    schedule: Optional[PowerSchedule] = None,
    channel: Optional[Channel] = None,
    round_timeout: float = 2.5,
    notify_asymmetric: bool = True,
    max_events: int = 2_000_000,
) -> DistributedRunResult:
    """Run the distributed CBTC protocol on every alive node of ``network``.

    Parameters mirror :func:`repro.core.cbtc.run_cbtc`; in addition a
    ``channel`` may inject loss or duplication (defaults to the reliable
    unit-delay channel) and ``round_timeout`` controls how long a node waits
    for acknowledgements at each power level (it must exceed one
    request/response round trip of the channel).
    """
    schedule = schedule if schedule is not None else GeometricSchedule()
    levels = schedule(network.power_model)
    engine = SimulationEngine(network, channel=channel)
    protocols: Dict[NodeId, CBTCProtocol] = {}
    for node in network.nodes:
        if not node.alive:
            continue
        protocol = CBTCProtocol(
            node.node_id,
            alpha,
            levels,
            round_timeout=round_timeout,
            notify_asymmetric=notify_asymmetric,
        )
        protocols[node.node_id] = protocol
        engine.register(node.node_id, protocol)
    engine.run_to_completion(max_events=max_events)

    outcome = CBTCOutcome(alpha=alpha)
    for node_id, protocol in protocols.items():
        outcome.states[node_id] = protocol.state
    return DistributedRunResult(outcome=outcome, engine=engine, protocols=protocols)
