"""The paper's contribution: the cone-based topology control algorithm (CBTC).

This package implements:

* the basic CBTC(alpha) algorithm (Section 2) as a centralized, per-node
  computation over a :class:`~repro.net.network.Network`
  (:func:`run_cbtc`), and as a distributed protocol running on the
  discrete-event simulator (:class:`CBTCProtocol`);
* construction of the neighbour relation ``N_alpha``, its symmetric closure
  ``E_alpha`` (the graph ``G_alpha``), the largest symmetric subset
  ``E^-_alpha`` and the non-redundant subset used by pairwise edge removal;
* the three optimizations of Section 3 — shrink-back, asymmetric edge
  removal and pairwise edge removal — each preserving connectivity;
* the counterexample constructions behind Figure 2 (asymmetry of
  ``N_alpha``) and Figure 5 / Theorem 2.4 (disconnection for
  ``alpha > 5*pi/6``);
* the reconfiguration machinery of Section 4 (join / leave / angle-change
  events driven by the Neighbor Discovery Protocol);
* analysis helpers that check the paper's theorems on concrete networks
  (connectivity preservation, the redundant-edge theorem, power stretch).

The one-call entry point most users want is :func:`build_topology`, which
runs CBTC with a chosen set of optimizations and returns a
:class:`TopologyResult` with the final graph and per-node power assignment.
"""

from repro.core.constants import (
    ALPHA_CONNECTIVITY_THRESHOLD,
    ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD,
    PAIRWISE_ANGLE_THRESHOLD,
)
from repro.core.state import NeighborRecord, NodeState, CBTCOutcome
from repro.core.cbtc import run_cbtc, run_cbtc_for_node
from repro.core.topology import (
    TopologyResult,
    neighbor_digraph,
    symmetric_closure_graph,
    symmetric_subset_graph,
    topology_from_outcome,
)
from repro.core.optimizations import (
    shrink_back,
    shrink_back_node,
    asymmetric_edge_removal,
    pairwise_edge_removal,
    redundant_edges,
    edge_id,
)
from repro.core.pipeline import build_topology, update_topology, OptimizationConfig
from repro.core.incremental import IncrementalTopologyBuilder
from repro.core.counterexamples import (
    asymmetry_example,
    disconnection_example,
    AsymmetryExample,
    DisconnectionExample,
)
from repro.core.analysis import (
    preserves_connectivity,
    preserves_max_power_connectivity,
    connectivity_report,
    ConnectivityReport,
    power_stretch_factor,
    verify_theorem_2_1,
    verify_theorem_3_6,
)
from repro.core.protocol import CBTCProtocol, run_distributed_cbtc, DistributedRunResult
from repro.core.reconfiguration import (
    ReconfigurationManager,
    JoinEvent,
    LeaveEvent,
    AngleChangeEvent,
)

__all__ = [
    "ALPHA_CONNECTIVITY_THRESHOLD",
    "ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD",
    "PAIRWISE_ANGLE_THRESHOLD",
    "NeighborRecord",
    "NodeState",
    "CBTCOutcome",
    "run_cbtc",
    "run_cbtc_for_node",
    "TopologyResult",
    "neighbor_digraph",
    "symmetric_closure_graph",
    "symmetric_subset_graph",
    "topology_from_outcome",
    "shrink_back",
    "shrink_back_node",
    "asymmetric_edge_removal",
    "pairwise_edge_removal",
    "redundant_edges",
    "edge_id",
    "build_topology",
    "update_topology",
    "IncrementalTopologyBuilder",
    "OptimizationConfig",
    "asymmetry_example",
    "disconnection_example",
    "AsymmetryExample",
    "DisconnectionExample",
    "preserves_connectivity",
    "preserves_max_power_connectivity",
    "connectivity_report",
    "ConnectivityReport",
    "power_stretch_factor",
    "verify_theorem_2_1",
    "verify_theorem_3_6",
    "CBTCProtocol",
    "run_distributed_cbtc",
    "DistributedRunResult",
    "ReconfigurationManager",
    "JoinEvent",
    "LeaveEvent",
    "AngleChangeEvent",
]
