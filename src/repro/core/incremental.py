"""Incremental epoch-to-epoch topology construction.

The paper's reconfiguration protocol (Section 5) is explicitly local: a
join, leave or angle change only perturbs nodes within radio range of the
event.  :func:`~repro.core.pipeline.build_topology` throws that locality
away — every epoch it re-runs CBTC at all nodes, re-applies the
optimizations everywhere and rebuilds the graph from scratch.
:class:`IncrementalTopologyBuilder` keeps the previous
:class:`~repro.core.topology.TopologyResult` plus the intermediate pipeline
state alive and, given the set of *dirty* nodes (moved, crashed, recovered,
joined, or with a rewritten CBTC state), recomputes each stage only inside
the affected region:

* **CBTC** (when the builder recomputes states itself): dirty nodes plus
  every *witness* — any node within maximum range of a dirty node's old or
  new position, found through the spatial index — re-run the growing phase;
  everyone else's state is provably unchanged.
* **Shrink-back** is a pure per-node function of the raw state, so it is
  re-applied to dirty states only.
* **Symmetric closure/subset graph**: only edges incident to a dirty state
  can appear, disappear or change length; they are spliced into the
  previous graph (``pos`` attributes are refreshed for every moved node).
* **Pairwise edge removal**: a node's redundancy scan depends on its
  adjacency and its neighbours' positions, so scans are redone for the
  dirty region plus its graph neighbourhood (``A1``); the
  longest-non-redundant-edge table additionally depends on incident
  redundancy flags, widening to ``A2 = A1 ∪ N(A1)``; removal decisions are
  re-evaluated for edges incident to ``A2``.
* **Radius/power** are re-derived for nodes whose final incident edge set
  changed.

Correctness contract: after every update the returned result is
**byte-identical** — through :func:`repro.io.results.results_to_json` —
to a from-scratch ``build_topology(network, alpha, config=config,
outcome=outcome)``.  This is enforced by ``tests/core/test_incremental.py``
and by the scenario-level equivalence battery.

Full-rebuild fallback: the builder falls back to a from-scratch build when
(a) it has no previous result, (b) the dirty region covers most of the
network (splicing would cost more than rebuilding), or (c) the network has
its spatial index disabled (witness discovery needs it).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.cbtc import _all_sorted_candidates, run_cbtc, run_cbtc_for_node
from repro.core.constants import (
    ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD,
    PAIRWISE_ANGLE_THRESHOLD,
)
from repro.core.optimizations import redundant_edges_from_node, shrink_back_node
from repro.core.state import CBTCOutcome, NodeState
from repro.core.topology import (
    TopologyResult,
    edge_length_from_outcome,
    per_node_radius,
    symmetric_closure_graph,
    symmetric_subset_graph,
)
from repro.net.network import Network
from repro.net.node import NodeId
from repro.obs.metrics import COUNT_BUCKETS, Histogram
from repro.obs.trace import get_tracer
from repro.radio.power import PowerSchedule

Edge = Tuple[NodeId, NodeId]

#: When the dirty region reaches this fraction of the node set, splicing is
#: abandoned for a from-scratch rebuild (the full-rebuild fallback).  The
#: threshold is deliberately high: splicing into live structures measures
#: several times cheaper than rebuilding the graph and every per-node table
#: from scratch even when two thirds of the nodes are dirty.
FULL_REBUILD_FRACTION = 0.8


def _norm(u: NodeId, v: NodeId) -> Edge:
    return (u, v) if u < v else (v, u)


class IncrementalTopologyBuilder:
    """Maintains a topology across epochs, splicing in per-epoch deltas.

    Parameters mirror :func:`~repro.core.pipeline.build_topology`; one
    builder serves one ``(network, alpha, config, schedule)`` combination.
    Call :meth:`rebuild` to prime (or re-prime) the caches with a full
    build, then :meth:`update` with each epoch's dirty-node set.  In both
    calls ``outcome`` may supply externally maintained CBTC states (the
    reconfiguration manager's); without it the builder runs/reruns CBTC
    itself, confining reruns to dirty nodes and their in-range witnesses.
    """

    def __init__(
        self,
        network: Network,
        alpha: float,
        *,
        config: Optional["OptimizationConfig"] = None,
        schedule: Optional[PowerSchedule] = None,
    ) -> None:
        from repro.core.pipeline import OptimizationConfig

        self.network = network
        self.alpha = alpha
        self.config = config if config is not None else OptimizationConfig.none()
        self.schedule = schedule
        self.full_builds = 0
        self.incremental_updates = 0
        # Telemetry only (metrics op): how often splicing was abandoned for a
        # from-scratch rebuild, and how large the per-epoch dirty sets ran.
        self.fallbacks = 0
        self.dirty_size_hist = Histogram(COUNT_BUCKETS)
        self._result: Optional[TopologyResult] = None
        self._raw: Optional[CBTCOutcome] = None
        self._working: Optional[CBTCOutcome] = None
        self._in_neighbors: Dict[NodeId, Set[NodeId]] = {}
        self._base = None  # nx.Graph before pairwise removal
        self._closure_mode = True
        self._redundant_from: Dict[NodeId, Set[Edge]] = {}
        self._redundant_count: Dict[Edge, int] = {}
        self._longest: Dict[NodeId, float] = {}
        self._removed: Set[Edge] = set()
        self._radius: Dict[NodeId, float] = {}
        self._power: Dict[NodeId, float] = {}
        self._positions: Dict[NodeId, object] = {}
        # Whether this builder's states come from an externally maintained
        # outcome (reconfiguration manager) or from its own CBTC runs.  The
        # two must not mix: _raw is only maintained on the self-run path, so
        # switching modes silently would splice stale states.  A mode switch
        # forces a re-priming rebuild instead.
        self._external_outcome: Optional[bool] = None

    def matches(self, network: Network, alpha: float, config, schedule=None) -> bool:
        """Whether this builder serves the given pipeline parameters."""
        return (
            self.network is network
            and self.alpha == alpha
            and self.config == config
            and self.schedule == schedule
        )

    # ------------------------------------------------------------------ #
    # Full rebuild (priming + fallback)
    # ------------------------------------------------------------------ #
    def rebuild(self, outcome: Optional[CBTCOutcome] = None) -> TopologyResult:
        """Run the full pipeline and (re)prime every incremental cache.

        Stage for stage this follows ``build_topology`` exactly; the only
        difference is that the intermediates (working outcome, base graph,
        per-node redundancy contributions, longest-non-redundant table,
        removal set, radius/power maps) are retained for later splicing.
        """
        with get_tracer().span("topology.rebuild"):
            return self._rebuild(outcome)

    def _rebuild(self, outcome: Optional[CBTCOutcome] = None) -> TopologyResult:
        self.full_builds += 1
        self._external_outcome = outcome is not None
        network, alpha, config = self.network, self.alpha, self.config
        raw = outcome if outcome is not None else run_cbtc(network, alpha, schedule=self.schedule)
        self._raw = raw.copy()
        if config.shrink_back:
            working = CBTCOutcome(alpha=raw.alpha)
            for state in raw:
                working.states[state.node_id] = shrink_back_node(state.copy())
        else:
            working = CBTCOutcome(
                alpha=raw.alpha,
                states={node_id: state.copy() for node_id, state in raw.states.items()},
            )
        self._working = working

        apply_asymmetric = (
            config.asymmetric_removal and alpha <= ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD + 1e-12
        )
        self._closure_mode = not apply_asymmetric
        base = (
            symmetric_closure_graph(working, network)
            if self._closure_mode
            else symmetric_subset_graph(working, network)
        )
        self._base = base

        self._in_neighbors = {}
        for state in working:
            for neighbor in state.neighbors:
                self._in_neighbors.setdefault(neighbor, set()).add(state.node_id)

        self._redundant_from = {}
        self._redundant_count = {}
        self._longest = {}
        self._removed = set()
        if config.pairwise_removal:
            for u in base.nodes:
                contribution = redundant_edges_from_node(
                    base, network, u, angle_threshold=PAIRWISE_ANGLE_THRESHOLD
                )
                self._redundant_from[u] = contribution
                for edge in contribution:
                    self._redundant_count[edge] = self._redundant_count.get(edge, 0) + 1
            for u in base.nodes:
                self._longest[u] = self._longest_non_redundant(u)
            for u, v, data in base.edges(data=True):
                edge = _norm(u, v)
                if self._redundant_count.get(edge, 0) <= 0:
                    continue
                if config.pairwise_remove_all or self._edge_removable(edge, data["length"]):
                    self._removed.add(edge)

        final = base.copy()
        if self._removed:
            final.remove_edges_from(self._removed)
        self._radius = per_node_radius(final, network)
        required_power = network.power_model.required_power
        self._power = {node_id: required_power(r) for node_id, r in self._radius.items()}
        self._positions = {node.node_id: node.position for node in network.nodes}
        self._result = self._materialize(final)
        return self._result

    # ------------------------------------------------------------------ #
    # Incremental update
    # ------------------------------------------------------------------ #
    def update(
        self, dirty: Iterable[NodeId], outcome: Optional[CBTCOutcome] = None
    ) -> TopologyResult:
        """Splice an epoch delta into the previous result.

        ``dirty`` must contain every node whose position or liveness changed
        since the last build *and* (when ``outcome`` is supplied) every node
        whose CBTC state was rewritten.  Over-approximation is safe;
        omission is not.  Returns the result for the network's current
        state, byte-identical to a from-scratch build.
        """
        with get_tracer().span("topology.update"):
            return self._update(dirty, outcome)

    def _update(
        self, dirty: Iterable[NodeId], outcome: Optional[CBTCOutcome] = None
    ) -> TopologyResult:
        if self._result is None or self._external_outcome != (outcome is not None):
            # First build, or the caller switched between supplying external
            # states and letting the builder run CBTC itself — the cached
            # raw/working snapshots describe the other mode, so re-prime.
            return self.rebuild(outcome=outcome)
        dirty = set(dirty)
        if not dirty:
            return self._result
        self.dirty_size_hist.observe(len(dirty))
        network, config = self.network, self.config
        if outcome is None:
            if not network.use_spatial_index:
                self.fallbacks += 1
                return self.rebuild()
            expanded = self._recompute_cbtc(dirty)
            if expanded is None:
                self.fallbacks += 1
                return self.rebuild()
            dirty = expanded
            outcome = self._raw
        population = max(len(outcome.states), len(self._working.states), 1)
        if len(dirty) >= FULL_REBUILD_FRACTION * population:
            self.fallbacks += 1
            return self.rebuild(outcome=outcome if outcome is not self._raw else None)

        self.incremental_updates += 1
        base = self._base
        working = self._working

        # ---- classify the dirty set ---------------------------------- #
        state_dirty = []
        new_states: Dict[NodeId, Optional[NodeState]] = {}
        for d in sorted(dirty):
            new_raw = outcome.states.get(d)
            old_working = working.states.get(d)
            if new_raw is None and old_working is None:
                continue  # position-only dirt on a node outside the topology
            state_dirty.append(d)
            if new_raw is None:
                new_states[d] = None
            else:
                copy = new_raw.copy()
                new_states[d] = shrink_back_node(copy) if config.shrink_back else copy

        # ---- pass 1: strip old incident edges and in-neighbor links --- #
        touched_edges: Set[Edge] = set()
        for d in state_dirty:
            if d in base:
                for p in list(base.adj[d]):
                    touched_edges.add(_norm(d, p))
                    base.remove_edge(d, p)
            old_working = working.states.get(d)
            if old_working is not None:
                for neighbor in old_working.neighbors:
                    listers = self._in_neighbors.get(neighbor)
                    if listers is not None:
                        listers.discard(d)
                        if not listers:
                            del self._in_neighbors[neighbor]

        # ---- pass 2: swap states, node membership, in-neighbor adds --- #
        for d in state_dirty:
            state = new_states[d]
            if state is None:
                working.states.pop(d, None)
                if d in base:
                    base.remove_node(d)  # isolated after pass 1
            else:
                working.states[d] = state
                if d not in base:
                    base.add_node(d)
                for neighbor in state.neighbors:
                    self._in_neighbors.setdefault(neighbor, set()).add(d)

        # ---- pass 3: re-derive incident edges of the dirty region ----- #
        empty: Set[NodeId] = set()
        for d in state_dirty:
            state = working.states.get(d)
            outs = set(state.neighbors) if state is not None else empty
            ins = self._in_neighbors.get(d, empty)
            partners = (outs | ins) if self._closure_mode else (outs & ins)
            partners.discard(d)
            for p in partners:
                length = edge_length_from_outcome(working, d, p)
                data = base.get_edge_data(d, p)
                if data is None or data["length"] != length:
                    base.add_edge(d, p, length=length)
                    touched_edges.add(_norm(d, p))

        # ``pos`` attributes track current geometry for every state node
        # (stale-edge endpoints without a state carry no ``pos``, exactly as
        # a from-scratch build leaves them).
        for d in dirty:
            if d in base and d in working.states and d in network:
                base.nodes[d]["pos"] = network.node(d).position.as_tuple()

        # ---- pairwise edge removal, scoped --------------------------- #
        flipped_edges: Set[Edge] = set()
        stale_removed = {edge for edge in touched_edges if not base.has_edge(*edge)}
        self._removed -= stale_removed
        if config.pairwise_removal:
            moved_in_base = {d for d in dirty if d in base}
            a1 = set(state_dirty) | moved_in_base
            for edge in touched_edges:
                a1.update(edge)
            for d in moved_in_base:
                a1.update(base.adj[d])
            a1 &= set(base.nodes) | set(self._redundant_from)
            for u in sorted(a1):
                old = self._redundant_from.get(u, set())
                new = (
                    redundant_edges_from_node(
                        base, network, u, angle_threshold=PAIRWISE_ANGLE_THRESHOLD
                    )
                    if u in base
                    else set()
                )
                for edge in old - new:
                    count = self._redundant_count.get(edge, 0) - 1
                    if count <= 0:
                        self._redundant_count.pop(edge, None)
                    else:
                        self._redundant_count[edge] = count
                for edge in new - old:
                    self._redundant_count[edge] = self._redundant_count.get(edge, 0) + 1
                if u in base:
                    self._redundant_from[u] = new
                else:
                    self._redundant_from.pop(u, None)
            a2 = set(a1)
            for u in a1:
                if u in base:
                    a2.update(base.adj[u])
            decide: Set[Edge] = set()
            for u in a2:
                if u not in base:
                    self._longest.pop(u, None)
                    continue
                self._longest[u] = self._longest_non_redundant(u)
                for v in base.adj[u]:
                    decide.add(_norm(u, v))
            for edge in decide:
                u, v = edge
                length = base[u][v]["length"]
                if self._redundant_count.get(edge, 0) > 0 and (
                    config.pairwise_remove_all or self._edge_removable(edge, length)
                ):
                    if edge not in self._removed:
                        self._removed.add(edge)
                        flipped_edges.add(edge)
                elif edge in self._removed:
                    self._removed.discard(edge)
                    flipped_edges.add(edge)

        # ---- radius / power, scoped ---------------------------------- #
        radius_dirty = set(state_dirty)
        for edge in touched_edges | flipped_edges:
            radius_dirty.update(edge)
        required_power = network.power_model.required_power
        for u in radius_dirty:
            if u not in base:
                self._radius.pop(u, None)
                self._power.pop(u, None)
                continue
            best = 0.0
            for v, data in base.adj[u].items():
                if _norm(u, v) in self._removed:
                    continue
                length = data["length"]
                if length > best:
                    best = length
            self._radius[u] = best
            self._power[u] = required_power(best)

        # ---- bookkeeping + materialization --------------------------- #
        for d in dirty:
            if d in network:
                self._positions[d] = network.node(d).position
            else:
                self._positions.pop(d, None)
        final = base.copy()
        if self._removed:
            final.remove_edges_from(self._removed)
        self._result = self._materialize(final)
        return self._result

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _longest_non_redundant(self, u: NodeId) -> float:
        """Longest incident edge of ``u`` not marked redundant (0.0 if none)."""
        best = 0.0
        counts = self._redundant_count
        for v, data in self._base.adj[u].items():
            if counts.get(_norm(u, v), 0) > 0:
                continue
            length = data["length"]
            if length > best:
                best = length
        return best

    def _edge_removable(self, edge: Edge, length: float) -> bool:
        """The paper's removal rule: only drop edges that lower a radius."""
        u, v = edge
        return length > self._longest[u] or length > self._longest[v]

    def _recompute_cbtc(self, dirty: Set[NodeId]) -> Optional[Set[NodeId]]:
        """Re-run the growing phase for dirty nodes and their witnesses.

        Witnesses are found through the spatial index at maximum power: any
        node whose candidate set changed must be within maximum range of a
        dirty node's old or new position.  Updates ``self._raw`` in place
        and returns the expanded dirty set, or ``None`` to request a full
        rebuild (region too large).
        """
        network = self.network
        index = network.spatial_index()
        max_range = network.power_model.max_range
        affected = set()
        for d in dirty:
            affected.add(d)
            old_position = self._positions.get(d)
            if old_position is not None:
                affected.update(index.neighbors_within(old_position, max_range))
            if d in network and network.node(d).alive:
                affected.update(
                    index.neighbors_within(network.node(d).position, max_range, exclude=d)
                )
        if len(affected) >= FULL_REBUILD_FRACTION * max(len(self._raw.states), 1):
            return None
        all_candidates = _all_sorted_candidates(network)
        for a in sorted(affected):
            if a in network and network.node(a).alive:
                self._raw.states[a] = run_cbtc_for_node(
                    network,
                    a,
                    self.alpha,
                    schedule=self.schedule,
                    _candidates=all_candidates[a],
                )
            else:
                self._raw.states.pop(a, None)
        return affected | dirty

    def _materialize(self, final) -> TopologyResult:
        alpha, config = self.alpha, self.config
        label = f"CBTC(alpha={alpha:.4f}) [{config.describe()}]"
        return TopologyResult(
            graph=final,
            alpha=alpha,
            label=label,
            outcome=CBTCOutcome(alpha=self._working.alpha, states=dict(self._working.states)),
            node_radius=dict(self._radius),
            node_power=dict(self._power),
        )
