"""Reconfiguration under mobility, failures and joins (Section 4).

The paper's reconfiguration algorithm reacts to the three events produced by
the Neighbor Discovery Protocol:

* ``leave_u(v)`` — drop ``v`` from ``N_u``; if dropping ``dir_u(v)`` opens an
  alpha-gap, re-run CBTC(alpha) at ``u`` starting from power
  ``p(rad^-_{u,alpha})`` (not from ``p0``);
* ``join_u(v)`` — record ``v``'s direction and required power, then shrink
  back (drop the farthest neighbours as long as coverage is unchanged);
* ``angle_change_u(v)`` — update the direction; re-run CBTC if a gap
  appeared, otherwise try to shrink back.

``ReconfigurationManager`` maintains the per-node CBTC states across such
events and can *synchronize* against the network's current ground truth: it
derives the events a beaconing NDP would deliver (using the paper's beacon
power policy) and applies them until no further events are generated.  After
synchronization the invariant behind Theorem 2.1 holds again for the new
node positions — every node either has no alpha-gap or transmits at maximum
power — so the reconstructed ``G_alpha`` preserves the connectivity of the
new ``G_R``.

``beacon_power_policy`` implements the power rules of Section 4: beacons use
``p(rad_{u,alpha})`` (the power needed to reach every neighbour in
``E_alpha``), and nodes that shrank back as boundary nodes must keep
beaconing with the power the *basic* algorithm computed (maximum power), or
two re-approaching partitions could never hear each other.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.angles import angle_difference
from repro.net.network import Network
from repro.net.node import NodeId
from repro.core.cbtc import run_cbtc, run_cbtc_for_node
from repro.core.optimizations import shrink_back_node
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState
from repro.core.topology import TopologyResult
from repro.obs.metrics import COUNT_BUCKETS, Histogram


@dataclass(frozen=True)
class JoinEvent:
    """``join_u(v)``: node ``observer`` hears node ``subject`` for the first time."""

    observer: NodeId
    subject: NodeId
    direction: float
    required_power: float
    distance: float


@dataclass(frozen=True)
class LeaveEvent:
    """``leave_u(v)``: node ``observer`` stops hearing node ``subject``."""

    observer: NodeId
    subject: NodeId


@dataclass(frozen=True)
class AngleChangeEvent:
    """``angle_change_u(v)``: the direction of ``subject`` seen by ``observer`` moved."""

    observer: NodeId
    subject: NodeId
    new_direction: float
    required_power: float
    distance: float


ReconfigurationEvent = object  # union of the three event dataclasses


@dataclass
class _SyncScratch:
    """Loop-invariant geometry shared by the iterations of one synchronize.

    ``reach[u][v]`` holds the distance for every alive in-range pair (both
    directions); ``sorted_reach[u]`` the same partners as parallel
    distance-sorted lists (for beacon-prefix queries); ``directions`` is a
    lazily filled ``direction(u, v)`` memo.
    """

    reach: Dict[NodeId, Dict[NodeId, float]]
    sorted_reach: Dict[NodeId, Tuple[List[float], List[NodeId]]]
    directions: Dict[Tuple[NodeId, NodeId], float] = field(default_factory=dict)


def beacon_power_policy(
    outcome: CBTCOutcome,
    network: Network,
    *,
    distances: Optional[Dict[NodeId, Dict[NodeId, float]]] = None,
) -> Dict[NodeId, float]:
    """Beacon power per node, following Section 4 of the paper.

    Every node beacons with the power needed to reach all of its ``E_alpha``
    neighbours; nodes that are boundary nodes of the *basic* algorithm beacon
    with maximum power regardless of any shrink-back, so that temporarily
    partitioned components can rediscover each other.

    The ``E_alpha`` adjacency (the symmetric closure of the neighbour
    relation) is accumulated directly from the per-node records rather than
    through a ``networkx`` graph — this runs once per synchronization
    iteration and once per epoch for battery accounting, so the constant
    factor matters at scale.  ``distances`` optionally supplies precomputed
    pairwise distances (the synchronizer's in-range scratch); missing pairs
    fall back to the geometric computation, so the values are identical to
    the historic graph-based version either way.
    """
    closure: Dict[NodeId, Set[NodeId]] = {state.node_id: set() for state in outcome}
    for state in outcome:
        for neighbor in state.neighbors:
            closure[state.node_id].add(neighbor)
            closure.setdefault(neighbor, set()).add(state.node_id)
    powers: Dict[NodeId, float] = {}
    max_power = network.power_model.max_power
    empty: Dict[NodeId, float] = {}
    for state in outcome:
        node_id = state.node_id
        neighbors = closure[node_id]
        if neighbors:
            if distances is not None:
                known = distances.get(node_id, empty)
                radius = max(
                    known.get(other) or network.distance(node_id, other)
                    for other in neighbors
                )
            else:
                radius = max(network.distance(node_id, other) for other in neighbors)
            power = network.power_model.required_power(radius)
        else:
            power = 0.0
        if state.is_boundary or state.used_max_power and state.has_gap():
            power = max_power
        powers[node_id] = power
    return powers


class ReconfigurationManager:
    """Maintains per-node CBTC state across joins, leaves and movement."""

    def __init__(
        self,
        network: Network,
        alpha: float,
        *,
        outcome: Optional[CBTCOutcome] = None,
        angle_threshold: float = 0.05,
    ) -> None:
        self.network = network
        self.alpha = alpha
        self.angle_threshold = angle_threshold
        self.outcome = outcome.copy() if outcome is not None else run_cbtc(network, alpha)
        self.events_applied = 0
        self.reruns = 0
        self.memo_hits = 0
        # Nodes each observer has heard from (the NDP's memory).  A join is
        # only generated for nodes *not* in this set; without it, a newcomer
        # that shrink-back immediately discards would be re-detected forever.
        # After the initial CBTC run a node has heard from its discovered
        # neighbours and from every node that discovered it (it answered
        # their Hello messages), so both directions seed the memory.
        self._known: Dict[NodeId, Set[NodeId]] = {
            state.node_id: set(state.neighbor_ids) for state in self.outcome
        }
        for state in self.outcome:
            for neighbor in state.neighbor_ids:
                self._known.setdefault(neighbor, set()).add(state.node_id)
        # Dirty bookkeeping for the incremental topology pipeline: every
        # node whose CBTC state this manager rewrites lands in ``_touched``,
        # and the network feeds every geometric change (move/crash/recover/
        # add/remove) into the registered listener.  ``topology()`` consumes
        # both sets; while they stay empty the memoized result is returned
        # untouched.
        self._touched: Set[NodeId] = set()
        self._net_dirty: Set[NodeId] = network.register_dirty_listener()
        self._builder = None
        self._full_builds = 0
        self._retired_incremental_updates = 0
        self._retired_fallbacks = 0
        self._retired_dirty_hist = Histogram(COUNT_BUCKETS)
        self._last_result: Optional[TopologyResult] = None
        self._last_config: Optional[OptimizationConfig] = None

    def close(self) -> None:
        """Detach this manager from its network's dirty-notification feed.

        Managers normally live as long as their network, but code that
        creates several managers over one long-lived network (comparing
        alphas or configs on the same placement) should close the retired
        ones — otherwise every node change keeps feeding their abandoned
        listener sets.  Safe to call more than once; the manager remains
        usable afterwards except that ``topology()`` can no longer observe
        geometric changes automatically.
        """
        self.network.unregister_dirty_listener(self._net_dirty)

    def _retire_builder(self) -> None:
        """Fold the current builder's work counters into the manager's own,
        so ``topology_builds``/``incremental_updates`` stay monotone across
        builder replacements (config changes, incremental=False switches)."""
        if self._builder is not None:
            self._full_builds += self._builder.full_builds
            self._retired_incremental_updates += self._builder.incremental_updates
            self._retired_fallbacks += self._builder.fallbacks
            self._retired_dirty_hist.merge(self._builder.dirty_size_hist)
            self._builder = None

    # ------------------------------------------------------------------ #
    # Event application (the paper's three rules)
    # ------------------------------------------------------------------ #
    def _state(self, node_id: NodeId) -> NodeState:
        if node_id not in self.outcome.states:
            self.outcome.states[node_id] = NodeState(node_id=node_id, alpha=self.alpha)
            self._touched.add(node_id)
        if node_id not in self._known:
            self._known[node_id] = set(self.outcome.states[node_id].neighbor_ids)
        return self.outcome.states[node_id]

    def _rerun(self, node_id: NodeId, *, from_power: float) -> None:
        """Re-run the growing phase at ``node_id`` starting from ``from_power``."""
        self.reruns += 1
        self._touched.add(node_id)
        self.outcome.states[node_id] = run_cbtc_for_node(
            self.network,
            node_id,
            self.alpha,
            initial_power=from_power,
        )
        self._known.setdefault(node_id, set()).update(self.outcome.states[node_id].neighbor_ids)

    def apply_leave(self, event: LeaveEvent) -> None:
        """Apply a leave event per the paper's rule."""
        self.events_applied += 1
        self._touched.add(event.observer)
        state = self._state(event.observer)
        self._known[event.observer].discard(event.subject)
        previous_power = state.power_to_reach_all()
        state.remove_neighbor(event.subject)
        if state.has_gap():
            self._rerun(event.observer, from_power=previous_power)

    def apply_join(self, event: JoinEvent) -> None:
        """Apply a join event: record the newcomer, then shrink back."""
        self.events_applied += 1
        self._touched.add(event.observer)
        state = self._state(event.observer)
        self._known[event.observer].add(event.subject)
        state.add_neighbor(
            NeighborRecord(
                neighbor=event.subject,
                direction=event.direction,
                required_power=event.required_power,
                discovery_power=event.required_power,
                distance=event.distance,
            )
        )
        self.outcome.states[event.observer] = shrink_back_node(state)

    def apply_angle_change(self, event: AngleChangeEvent) -> None:
        """Apply an angle-change event: update the direction, re-run or shrink."""
        self.events_applied += 1
        self._touched.add(event.observer)
        state = self._state(event.observer)
        old = state.neighbors.get(event.subject)
        previous_power = state.power_to_reach_all()
        discovery = old.discovery_power if old is not None else event.required_power
        state.neighbors[event.subject] = NeighborRecord(
            neighbor=event.subject,
            direction=event.new_direction,
            required_power=event.required_power,
            discovery_power=discovery,
            distance=event.distance,
        )
        if state.has_gap() and not state.used_max_power:
            self._rerun(event.observer, from_power=previous_power)
        else:
            self.outcome.states[event.observer] = shrink_back_node(state)

    def apply(self, event: ReconfigurationEvent) -> None:
        """Dispatch an event to the appropriate rule."""
        if isinstance(event, LeaveEvent):
            self.apply_leave(event)
        elif isinstance(event, JoinEvent):
            self.apply_join(event)
        elif isinstance(event, AngleChangeEvent):
            self.apply_angle_change(event)
        else:
            raise TypeError(f"unknown reconfiguration event {event!r}")

    # ------------------------------------------------------------------ #
    # Centralized synchronization against ground truth
    # ------------------------------------------------------------------ #
    def _build_sync_scratch(self) -> Optional["_SyncScratch"]:
        """Precompute geometry shared by every iteration of one synchronize.

        Node positions are static *within* a synchronize call — only states
        and NDP memory evolve as events are applied — so the alive in-range
        pair set, the pairwise distances and the pairwise directions are all
        loop invariants.  One ``pairs_within(max_range)`` enumeration (the
        same memoized pair set the epoch's measurement phase reuses) feeds
        every iteration's forget/leave/angle/join checks, replacing what
        used to be an O(n^2) rescan per iteration.  The tolerance contract
        matches ``can_reach`` exactly (``d <= R + 1e-12``), so every derived
        event is identical to the historic per-pair recomputation.
        """
        network = self.network
        if not network.use_spatial_index:
            return None
        reach: Dict[NodeId, Dict[NodeId, float]] = {}
        for u, v, dist in network.spatial_index().pairs_within(network.power_model.max_range):
            reach.setdefault(u, {})[v] = dist
            reach.setdefault(v, {})[u] = dist
        sorted_reach: Dict[NodeId, Tuple[List[float], List[NodeId]]] = {}
        for u, partners in reach.items():
            ordered = sorted((dist, other) for other, dist in partners.items())
            sorted_reach[u] = ([dist for dist, _ in ordered], [other for _, other in ordered])
        return _SyncScratch(reach=reach, sorted_reach=sorted_reach)

    def _joins_by_observer(
        self,
        beacon_powers: Dict[NodeId, float],
        alive: Set[NodeId],
        scratch: Optional["_SyncScratch"],
    ) -> Dict[NodeId, List[JoinEvent]]:
        """Join events per observer, computed subject-first.

        Historically every observer scanned every beaconing subject — an
        O(n^2) pass per synchronization iteration that dominated epoch time
        at n >= 1000.  Inverting the loop makes it output-sensitive: a
        subject's beacon only reaches nodes within ``range_for_power`` of
        its beacon power, a distance-sorted prefix of the precomputed
        in-range lists.  The exact reception predicate (``reaches_with`` on
        the scalar distance) is then applied unchanged, and subjects are
        visited in ``beacon_powers`` order, so each observer's join list is
        identical — events, floats and order — to the historic scan.
        """
        network = self.network
        power_model = network.power_model
        joins: Dict[NodeId, List[JoinEvent]] = {}
        states = self.outcome.states
        known_of = self._known
        ordered_alive = sorted(alive) if scratch is None else None
        for subject, beacon_power in beacon_powers.items():
            if subject not in alive:
                continue
            if scratch is not None:
                distances, partners = scratch.sorted_reach.get(subject, ([], []))
                # Over-approximate the reception radius, then filter with the
                # exact predicate so results match the linear scan bit for
                # bit (same trick as Network.receivers_of_broadcast).
                bound = power_model.range_for_power(beacon_power * (1.0 + 1e-9)) + 1e-9
                cutoff = bisect.bisect_right(distances, bound)
                candidates = partners[:cutoff]
                candidate_distances = distances
            else:
                candidates = ordered_alive
                candidate_distances = None
            for i, observer in enumerate(candidates):
                if observer == subject or observer not in alive:
                    continue
                state = states.get(observer)
                if state is None:
                    continue
                known = known_of.get(observer)
                if known is None:
                    known = known_of.setdefault(observer, set(state.neighbor_ids))
                if subject in known:
                    continue
                distance = (
                    candidate_distances[i]
                    if candidate_distances is not None
                    else network.distance(observer, subject)
                )
                if power_model.can_reach(distance) and power_model.reaches_with(
                    beacon_power, distance
                ):
                    joins.setdefault(observer, []).append(
                        JoinEvent(
                            observer=observer,
                            subject=subject,
                            direction=self._direction(observer, subject, scratch),
                            required_power=power_model.required_power(distance),
                            distance=distance,
                        )
                    )
        return joins

    def _direction(
        self, u: NodeId, v: NodeId, scratch: Optional["_SyncScratch"]
    ) -> float:
        """``direction(u, v)``, memoized per synchronize call (static geometry)."""
        if scratch is None:
            return self.network.direction(u, v)
        key = (u, v)
        cached = scratch.directions.get(key)
        if cached is None:
            cached = self.network.direction(u, v)
            scratch.directions[key] = cached
        return cached

    def _detect_events(
        self, scratch: Optional["_SyncScratch"] = None
    ) -> List[ReconfigurationEvent]:
        """Derive the events a beaconing NDP would deliver in the current geometry."""
        events: List[ReconfigurationEvent] = []
        network = self.network
        power_model = network.power_model
        beacon_powers = beacon_power_policy(
            self.outcome, network, distances=scratch.reach if scratch is not None else None
        )
        alive: Set[NodeId] = {node.node_id for node in network.nodes if node.alive}
        joins_by_observer = self._joins_by_observer(beacon_powers, alive, scratch)
        empty: Dict[NodeId, float] = {}

        for state in list(self.outcome):
            observer = state.node_id
            if observer not in alive:
                continue
            in_range = scratch.reach.get(observer, empty) if scratch is not None else None
            known = self._known.get(observer)
            if known is None:
                known = self._known.setdefault(observer, set(state.neighbor_ids))
            # Forget heard-from nodes that are gone or out of range, so that a
            # node which moves away and later returns produces a fresh join.
            for other_id in list(known):
                if other_id in state.neighbors:
                    continue
                if in_range is not None:
                    gone = other_id not in in_range
                else:
                    gone = other_id not in alive or not power_model.can_reach(
                        network.distance(observer, other_id)
                    )
                if gone:
                    known.discard(other_id)
            # Leaves: recorded neighbours that died or moved out of maximum range.
            for neighbor_id in state.neighbor_ids:
                if in_range is not None:
                    distance = in_range.get(neighbor_id)
                else:
                    distance = (
                        network.distance(observer, neighbor_id)
                        if neighbor_id in alive
                        else None
                    )
                    if distance is not None and not power_model.can_reach(distance):
                        distance = None
                if distance is None:
                    events.append(LeaveEvent(observer=observer, subject=neighbor_id))
                    continue
                # The neighbour is still reachable: silently refresh its
                # distance/power bookkeeping and emit an angle-change event
                # when its direction moved beyond the detection threshold.
                current_direction = self._direction(observer, neighbor_id, scratch)
                recorded = state.neighbors[neighbor_id]
                if angle_difference(current_direction, recorded.direction) > self.angle_threshold:
                    events.append(
                        AngleChangeEvent(
                            observer=observer,
                            subject=neighbor_id,
                            new_direction=current_direction,
                            required_power=power_model.required_power(distance),
                            distance=distance,
                        )
                    )
                elif abs(distance - recorded.distance) > 1e-9:
                    # A silent distance refresh still rewrites the record, so
                    # the incremental topology pipeline must see this node as
                    # touched even though no event is emitted.
                    self._touched.add(observer)
                    state.neighbors[neighbor_id] = NeighborRecord(
                        neighbor=neighbor_id,
                        direction=recorded.direction,
                        required_power=power_model.required_power(distance),
                        discovery_power=recorded.discovery_power,
                        distance=distance,
                    )
            # Joins: nodes whose beacon reaches the observer but that the
            # observer has not heard from (precomputed subject-first; see
            # _joins_by_observer).
            events.extend(joins_by_observer.get(observer, ()))
        return events

    def synchronize(self, *, max_iterations: int = 20, accelerated: bool = True) -> int:
        """Apply detected events until quiescence; return iterations used.

        Dead nodes' states are dropped first (they no longer participate).
        Raises ``RuntimeError`` if the loop does not stabilize within
        ``max_iterations`` — with a finite node set and monotone power levels
        this indicates a bug rather than a legitimate oscillation.

        ``accelerated=True`` (the default) shares one spatial-index geometry
        pass across all detection iterations (:meth:`_build_sync_scratch`);
        ``accelerated=False`` recomputes every pairwise distance per
        iteration — the historic O(n^2) path, kept both as the reference the
        equivalence battery compares against and as the baseline the
        incremental benchmarks measure speedups over.  Both derive the exact
        same events in the same order.
        """
        alive = {node.node_id for node in self.network.nodes if node.alive}
        for node_id in list(self.outcome.states):
            if node_id not in alive:
                del self.outcome.states[node_id]
                self._known.pop(node_id, None)
                self._touched.add(node_id)
        for node_id in sorted(alive):
            if node_id not in self.outcome.states:
                # A brand-new (or recovered) node runs the full growing phase,
                # exactly as the paper prescribes for nodes joining the network.
                self._rerun(node_id, from_power=0.0)

        # Geometry is static for the whole synchronize call, so the in-range
        # pair set, distances and directions are computed once and shared by
        # every detection iteration (see _build_sync_scratch).
        scratch = self._build_sync_scratch() if accelerated else None
        for iteration in range(1, max_iterations + 1):
            events = self._detect_events(scratch)
            if not events:
                return iteration - 1
            for event in events:
                self.apply(event)
        raise RuntimeError("reconfiguration did not stabilize within the iteration budget")

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def topology_builds(self) -> int:
        """How many full pipeline builds ``topology()`` has performed (monotone)."""
        return self._full_builds + (self._builder.full_builds if self._builder else 0)

    @property
    def incremental_updates(self) -> int:
        """How many incremental splices ``topology()`` has performed (monotone)."""
        return self._retired_incremental_updates + (
            self._builder.incremental_updates if self._builder else 0
        )

    @property
    def rebuild_fallbacks(self) -> int:
        """How often splicing was abandoned for a full rebuild (monotone)."""
        return self._retired_fallbacks + (self._builder.fallbacks if self._builder else 0)

    def dirty_size_histogram(self) -> Histogram:
        """Merged per-update dirty-set-size distribution (telemetry only)."""
        merged = Histogram(COUNT_BUCKETS)
        merged.merge(self._retired_dirty_hist)
        if self._builder is not None:
            merged.merge(self._builder.dirty_size_hist)
        return merged

    def topology(
        self,
        *,
        config: Optional[OptimizationConfig] = None,
        incremental: bool = True,
    ) -> TopologyResult:
        """Build the current controlled topology from the maintained states.

        The result is memoized on a clean/dirty flag: when no event has been
        applied and no node has moved, crashed, recovered, joined or left
        since the last call (and the optimization config is unchanged), the
        previous :class:`TopologyResult` is returned untouched — no pipeline
        work at all.  Otherwise, with ``incremental=True`` (the default) the
        dirty node set is spliced into the previous result through
        :class:`~repro.core.incremental.IncrementalTopologyBuilder`;
        ``incremental=False`` forces the historic from-scratch
        :func:`~repro.core.pipeline.build_topology` (both produce
        byte-identical results — test-enforced).
        """
        config = config if config is not None else OptimizationConfig.none()
        dirty = self._touched | self._net_dirty
        if (
            self._last_result is not None
            and not dirty
            and config == self._last_config
        ):
            self.memo_hits += 1
            return self._last_result
        if incremental:
            if self._builder is None or not self._builder.matches(
                self.network, self.alpha, config
            ):
                from repro.core.incremental import IncrementalTopologyBuilder

                self._retire_builder()
                self._builder = IncrementalTopologyBuilder(
                    self.network, self.alpha, config=config
                )
                result = self._builder.rebuild(outcome=self.outcome)
            else:
                result = self._builder.update(dirty, outcome=self.outcome)
        else:
            self._retire_builder()
            self._full_builds += 1
            result = build_topology(
                self.network,
                self.alpha,
                config=config,
                outcome=self.outcome,
            )
        self._touched.clear()
        self._net_dirty.clear()
        self._last_result = result
        self._last_config = config
        return result
