"""Reconfiguration under mobility, failures and joins (Section 4).

The paper's reconfiguration algorithm reacts to the three events produced by
the Neighbor Discovery Protocol:

* ``leave_u(v)`` — drop ``v`` from ``N_u``; if dropping ``dir_u(v)`` opens an
  alpha-gap, re-run CBTC(alpha) at ``u`` starting from power
  ``p(rad^-_{u,alpha})`` (not from ``p0``);
* ``join_u(v)`` — record ``v``'s direction and required power, then shrink
  back (drop the farthest neighbours as long as coverage is unchanged);
* ``angle_change_u(v)`` — update the direction; re-run CBTC if a gap
  appeared, otherwise try to shrink back.

``ReconfigurationManager`` maintains the per-node CBTC states across such
events and can *synchronize* against the network's current ground truth: it
derives the events a beaconing NDP would deliver (using the paper's beacon
power policy) and applies them until no further events are generated.  After
synchronization the invariant behind Theorem 2.1 holds again for the new
node positions — every node either has no alpha-gap or transmits at maximum
power — so the reconstructed ``G_alpha`` preserves the connectivity of the
new ``G_R``.

``beacon_power_policy`` implements the power rules of Section 4: beacons use
``p(rad_{u,alpha})`` (the power needed to reach every neighbour in
``E_alpha``), and nodes that shrank back as boundary nodes must keep
beaconing with the power the *basic* algorithm computed (maximum power), or
two re-approaching partitions could never hear each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.angles import angle_difference
from repro.net.network import Network
from repro.net.node import NodeId
from repro.core.cbtc import run_cbtc, run_cbtc_for_node
from repro.core.optimizations import shrink_back_node
from repro.core.pipeline import OptimizationConfig, build_topology
from repro.core.state import CBTCOutcome, NeighborRecord, NodeState
from repro.core.topology import TopologyResult, symmetric_closure_graph


@dataclass(frozen=True)
class JoinEvent:
    """``join_u(v)``: node ``observer`` hears node ``subject`` for the first time."""

    observer: NodeId
    subject: NodeId
    direction: float
    required_power: float
    distance: float


@dataclass(frozen=True)
class LeaveEvent:
    """``leave_u(v)``: node ``observer`` stops hearing node ``subject``."""

    observer: NodeId
    subject: NodeId


@dataclass(frozen=True)
class AngleChangeEvent:
    """``angle_change_u(v)``: the direction of ``subject`` seen by ``observer`` moved."""

    observer: NodeId
    subject: NodeId
    new_direction: float
    required_power: float
    distance: float


ReconfigurationEvent = object  # union of the three event dataclasses


def beacon_power_policy(outcome: CBTCOutcome, network: Network) -> Dict[NodeId, float]:
    """Beacon power per node, following Section 4 of the paper.

    Every node beacons with the power needed to reach all of its ``E_alpha``
    neighbours; nodes that are boundary nodes of the *basic* algorithm beacon
    with maximum power regardless of any shrink-back, so that temporarily
    partitioned components can rediscover each other.
    """
    closure = symmetric_closure_graph(outcome, network)
    powers: Dict[NodeId, float] = {}
    max_power = network.power_model.max_power
    for state in outcome:
        node_id = state.node_id
        neighbors = list(closure.neighbors(node_id)) if node_id in closure else []
        if neighbors:
            radius = max(network.distance(node_id, other) for other in neighbors)
            power = network.power_model.required_power(radius)
        else:
            power = 0.0
        if state.is_boundary or state.used_max_power and state.has_gap():
            power = max_power
        powers[node_id] = power
    return powers


class ReconfigurationManager:
    """Maintains per-node CBTC state across joins, leaves and movement."""

    def __init__(
        self,
        network: Network,
        alpha: float,
        *,
        outcome: Optional[CBTCOutcome] = None,
        angle_threshold: float = 0.05,
    ) -> None:
        self.network = network
        self.alpha = alpha
        self.angle_threshold = angle_threshold
        self.outcome = outcome.copy() if outcome is not None else run_cbtc(network, alpha)
        self.events_applied = 0
        self.reruns = 0
        # Nodes each observer has heard from (the NDP's memory).  A join is
        # only generated for nodes *not* in this set; without it, a newcomer
        # that shrink-back immediately discards would be re-detected forever.
        # After the initial CBTC run a node has heard from its discovered
        # neighbours and from every node that discovered it (it answered
        # their Hello messages), so both directions seed the memory.
        self._known: Dict[NodeId, Set[NodeId]] = {
            state.node_id: set(state.neighbor_ids) for state in self.outcome
        }
        for state in self.outcome:
            for neighbor in state.neighbor_ids:
                self._known.setdefault(neighbor, set()).add(state.node_id)

    # ------------------------------------------------------------------ #
    # Event application (the paper's three rules)
    # ------------------------------------------------------------------ #
    def _state(self, node_id: NodeId) -> NodeState:
        if node_id not in self.outcome.states:
            self.outcome.states[node_id] = NodeState(node_id=node_id, alpha=self.alpha)
        if node_id not in self._known:
            self._known[node_id] = set(self.outcome.states[node_id].neighbor_ids)
        return self.outcome.states[node_id]

    def _rerun(self, node_id: NodeId, *, from_power: float) -> None:
        """Re-run the growing phase at ``node_id`` starting from ``from_power``."""
        self.reruns += 1
        self.outcome.states[node_id] = run_cbtc_for_node(
            self.network,
            node_id,
            self.alpha,
            initial_power=from_power,
        )
        self._known.setdefault(node_id, set()).update(self.outcome.states[node_id].neighbor_ids)

    def apply_leave(self, event: LeaveEvent) -> None:
        """Apply a leave event per the paper's rule."""
        self.events_applied += 1
        state = self._state(event.observer)
        self._known[event.observer].discard(event.subject)
        previous_power = state.power_to_reach_all()
        state.remove_neighbor(event.subject)
        if state.has_gap():
            self._rerun(event.observer, from_power=previous_power)

    def apply_join(self, event: JoinEvent) -> None:
        """Apply a join event: record the newcomer, then shrink back."""
        self.events_applied += 1
        state = self._state(event.observer)
        self._known[event.observer].add(event.subject)
        state.add_neighbor(
            NeighborRecord(
                neighbor=event.subject,
                direction=event.direction,
                required_power=event.required_power,
                discovery_power=event.required_power,
                distance=event.distance,
            )
        )
        self.outcome.states[event.observer] = shrink_back_node(state)

    def apply_angle_change(self, event: AngleChangeEvent) -> None:
        """Apply an angle-change event: update the direction, re-run or shrink."""
        self.events_applied += 1
        state = self._state(event.observer)
        old = state.neighbors.get(event.subject)
        previous_power = state.power_to_reach_all()
        discovery = old.discovery_power if old is not None else event.required_power
        state.neighbors[event.subject] = NeighborRecord(
            neighbor=event.subject,
            direction=event.new_direction,
            required_power=event.required_power,
            discovery_power=discovery,
            distance=event.distance,
        )
        if state.has_gap() and not state.used_max_power:
            self._rerun(event.observer, from_power=previous_power)
        else:
            self.outcome.states[event.observer] = shrink_back_node(state)

    def apply(self, event: ReconfigurationEvent) -> None:
        """Dispatch an event to the appropriate rule."""
        if isinstance(event, LeaveEvent):
            self.apply_leave(event)
        elif isinstance(event, JoinEvent):
            self.apply_join(event)
        elif isinstance(event, AngleChangeEvent):
            self.apply_angle_change(event)
        else:
            raise TypeError(f"unknown reconfiguration event {event!r}")

    # ------------------------------------------------------------------ #
    # Centralized synchronization against ground truth
    # ------------------------------------------------------------------ #
    def _detect_events(self) -> List[ReconfigurationEvent]:
        """Derive the events a beaconing NDP would deliver in the current geometry."""
        events: List[ReconfigurationEvent] = []
        power_model = self.network.power_model
        beacon_powers = beacon_power_policy(self.outcome, self.network)
        alive: Set[NodeId] = {node.node_id for node in self.network.nodes if node.alive}

        for state in list(self.outcome):
            observer = state.node_id
            if observer not in alive:
                continue
            known = self._known.setdefault(observer, set(state.neighbor_ids))
            # Forget heard-from nodes that are gone or out of range, so that a
            # node which moves away and later returns produces a fresh join.
            for other_id in list(known):
                if other_id in state.neighbors:
                    continue
                if other_id not in alive or not power_model.can_reach(self.network.distance(observer, other_id)):
                    known.discard(other_id)
            # Leaves: recorded neighbours that died or moved out of maximum range.
            for neighbor_id in state.neighbor_ids:
                if neighbor_id not in alive or not power_model.can_reach(
                    self.network.distance(observer, neighbor_id)
                ):
                    events.append(LeaveEvent(observer=observer, subject=neighbor_id))
                    continue
                # The neighbour is still reachable: silently refresh its
                # distance/power bookkeeping and emit an angle-change event
                # when its direction moved beyond the detection threshold.
                current_direction = self.network.direction(observer, neighbor_id)
                distance = self.network.distance(observer, neighbor_id)
                recorded = state.neighbors[neighbor_id]
                if angle_difference(current_direction, recorded.direction) > self.angle_threshold:
                    events.append(
                        AngleChangeEvent(
                            observer=observer,
                            subject=neighbor_id,
                            new_direction=current_direction,
                            required_power=power_model.required_power(distance),
                            distance=distance,
                        )
                    )
                elif abs(distance - recorded.distance) > 1e-9:
                    state.neighbors[neighbor_id] = NeighborRecord(
                        neighbor=neighbor_id,
                        direction=recorded.direction,
                        required_power=power_model.required_power(distance),
                        discovery_power=recorded.discovery_power,
                        distance=distance,
                    )
            # Joins: nodes whose beacon reaches the observer but that the
            # observer has not heard from.
            for other_id, beacon_power in beacon_powers.items():
                if other_id == observer or other_id not in alive:
                    continue
                if other_id in known:
                    continue
                distance = self.network.distance(observer, other_id)
                if power_model.can_reach(distance) and power_model.reaches_with(beacon_power, distance):
                    events.append(
                        JoinEvent(
                            observer=observer,
                            subject=other_id,
                            direction=self.network.direction(observer, other_id),
                            required_power=power_model.required_power(distance),
                            distance=distance,
                        )
                    )
        return events

    def synchronize(self, *, max_iterations: int = 20) -> int:
        """Apply detected events until quiescence; return iterations used.

        Dead nodes' states are dropped first (they no longer participate).
        Raises ``RuntimeError`` if the loop does not stabilize within
        ``max_iterations`` — with a finite node set and monotone power levels
        this indicates a bug rather than a legitimate oscillation.
        """
        alive = {node.node_id for node in self.network.nodes if node.alive}
        for node_id in list(self.outcome.states):
            if node_id not in alive:
                del self.outcome.states[node_id]
                self._known.pop(node_id, None)
        for node_id in sorted(alive):
            if node_id not in self.outcome.states:
                # A brand-new (or recovered) node runs the full growing phase,
                # exactly as the paper prescribes for nodes joining the network.
                self._rerun(node_id, from_power=0.0)

        for iteration in range(1, max_iterations + 1):
            events = self._detect_events()
            if not events:
                return iteration - 1
            for event in events:
                self.apply(event)
        raise RuntimeError("reconfiguration did not stabilize within the iteration budget")

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def topology(self, *, config: Optional[OptimizationConfig] = None) -> TopologyResult:
        """Build the current controlled topology from the maintained states."""
        return build_topology(
            self.network,
            self.alpha,
            config=config if config is not None else OptimizationConfig.none(),
            outcome=self.outcome,
        )
