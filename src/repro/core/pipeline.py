"""High-level topology-construction pipeline.

:func:`build_topology` is the one-call public entry point: it runs
CBTC(alpha) on a network, applies the requested optimizations in the order
the paper composes them (shrink-back, then asymmetric edge removal when
``alpha <= 2*pi/3``, then pairwise edge removal) and returns a
:class:`~repro.core.topology.TopologyResult`.

The paper's Table 1 columns map onto :class:`OptimizationConfig` as::

    Basic                -> OptimizationConfig.none()
    with op1             -> OptimizationConfig(shrink_back=True)
    with op1 and op2     -> OptimizationConfig(shrink_back=True, asymmetric_removal=True)
    with all op          -> OptimizationConfig.all()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.network import Network
from repro.net.node import NodeId
from repro.radio.power import PowerSchedule
from repro.core.constants import ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD
from repro.core.cbtc import run_cbtc
from repro.core.optimizations import pairwise_edge_removal, shrink_back
from repro.core.state import CBTCOutcome
from repro.core.topology import TopologyResult, per_node_radius, topology_from_outcome


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the paper's optimizations to apply.

    ``asymmetric_removal`` is only sound for ``alpha <= 2*pi/3``
    (Theorem 3.2); :func:`build_topology` silently skips it for larger alpha
    so that "all applicable optimizations" can be requested uniformly, as the
    paper does in Figure 6(g).
    """

    shrink_back: bool = False
    asymmetric_removal: bool = False
    pairwise_removal: bool = False
    pairwise_remove_all: bool = False

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The basic algorithm with no optimizations."""
        return cls()

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """All applicable optimizations (the paper's "with all op" column)."""
        return cls(shrink_back=True, asymmetric_removal=True, pairwise_removal=True)

    @classmethod
    def shrink_only(cls) -> "OptimizationConfig":
        """Only the shrink-back operation (the paper's "with op1" column)."""
        return cls(shrink_back=True)

    @classmethod
    def shrink_and_asymmetric(cls) -> "OptimizationConfig":
        """Shrink-back plus asymmetric edge removal (the "with op1 and op2" column)."""
        return cls(shrink_back=True, asymmetric_removal=True)

    def describe(self) -> str:
        """Short human-readable description of the enabled optimizations."""
        parts = []
        if self.shrink_back:
            parts.append("shrink-back")
        if self.asymmetric_removal:
            parts.append("asymmetric-removal")
        if self.pairwise_removal:
            parts.append("pairwise-removal")
        return "+".join(parts) if parts else "basic"


def build_topology(
    network: Network,
    alpha: float,
    *,
    config: Optional[OptimizationConfig] = None,
    schedule: Optional[PowerSchedule] = None,
    outcome: Optional[CBTCOutcome] = None,
) -> TopologyResult:
    """Run CBTC(alpha) plus the requested optimizations on ``network``.

    Parameters
    ----------
    network:
        The physical network.
    alpha:
        Cone angle.  ``alpha <= 5*pi/6`` is required for the connectivity
        guarantee; larger values are allowed (e.g. to reproduce the
        Theorem 2.4 counterexample) but are the caller's responsibility.
    config:
        Which optimizations to apply; defaults to none (the basic algorithm).
    schedule:
        Power schedule for the growing phase; ``None`` selects the exhaustive
        (idealized) schedule.
    outcome:
        A pre-computed CBTC outcome to reuse (skips re-running the growing
        phase, e.g. when evaluating several optimization configurations on
        the same network, as Table 1 does).

    Returns
    -------
    TopologyResult
        The final graph plus per-node radius/power.
    """
    config = config if config is not None else OptimizationConfig.none()
    if outcome is None:
        outcome = run_cbtc(network, alpha, schedule=schedule)
    working = outcome

    if config.shrink_back:
        working = shrink_back(working)

    apply_asymmetric = (
        config.asymmetric_removal and alpha <= ALPHA_ASYMMETRIC_REMOVAL_THRESHOLD + 1e-12
    )
    symmetric_mode = "subset" if apply_asymmetric else "closure"
    result = topology_from_outcome(working, network, symmetric=symmetric_mode)

    graph = result.graph
    if config.pairwise_removal:
        graph = pairwise_edge_removal(graph, network, remove_all=config.pairwise_remove_all)

    radius = per_node_radius(graph, network)
    power = {node_id: network.power_model.required_power(r) for node_id, r in radius.items()}
    label = f"CBTC(alpha={alpha:.4f}) [{config.describe()}]"
    return TopologyResult(
        graph=graph,
        alpha=alpha,
        label=label,
        outcome=working,
        node_radius=radius,
        node_power=power,
    )


def update_topology(
    network: Network,
    alpha: float,
    prev: Optional[TopologyResult],
    dirty_nodes: Iterable[NodeId],
    *,
    config: Optional[OptimizationConfig] = None,
    schedule: Optional[PowerSchedule] = None,
    outcome: Optional[CBTCOutcome] = None,
) -> TopologyResult:
    """Incrementally advance a previously built topology after a delta.

    ``dirty_nodes`` are the nodes that moved, crashed, recovered, joined, or
    left since ``prev`` was built (over-approximating is safe).  CBTC is
    re-run only for the dirty nodes and their in-range witnesses (found via
    the spatial index at maximum power), the optimization passes are
    re-applied scoped to the affected subgraph, and the result is spliced
    into ``prev`` — byte-identical (via :mod:`repro.io` serialization) to a
    from-scratch :func:`build_topology`, at a fraction of the cost when the
    delta is local.

    The incremental state rides along on the returned result: pass each
    epoch's result back as ``prev``.  When ``prev`` is ``None``, carries no
    incremental state, or was built under different parameters — or when
    the dirty region covers most of the network — the call falls back to a
    full rebuild (and primes fresh incremental state).  ``outcome`` may
    supply externally maintained CBTC states (e.g. the reconfiguration
    manager's), in which case no CBTC is re-run here at all.
    """
    from repro.core.incremental import IncrementalTopologyBuilder

    config = config if config is not None else OptimizationConfig.none()
    builder = getattr(prev, "incremental_builder", None) if prev is not None else None
    if builder is None or not builder.matches(network, alpha, config, schedule):
        builder = IncrementalTopologyBuilder(network, alpha, config=config, schedule=schedule)
        result = builder.rebuild(outcome=outcome)
    else:
        result = builder.update(dirty_nodes, outcome=outcome)
    # Attached as a plain attribute (not a dataclass field), so it never
    # leaks into serialized results.
    result.incremental_builder = builder
    return result
