"""Baseline topology families CBTC is compared against.

The paper's evaluation compares against "no topology control" (every node at
maximum power); its related-work section situates CBTC next to several
position-based graph families — relative neighborhood graphs, Gabriel
graphs, Delaunay-based heuristics, minimum spanning trees and theta/Yao
graphs.  All of them are implemented here over the same
:class:`~repro.net.network.Network` abstraction so the extended benchmarks
can put CBTC side by side with the whole family.

Every builder returns a :class:`networkx.Graph` over the alive nodes with a
``length`` attribute on each edge.
"""

from repro.baselines.max_power import max_power_graph
from repro.baselines.rng import relative_neighborhood_graph
from repro.baselines.gabriel import gabriel_graph
from repro.baselines.mst import euclidean_mst
from repro.baselines.theta import theta_graph, yao_graph
from repro.baselines.delaunay import delaunay_graph

__all__ = [
    "max_power_graph",
    "relative_neighborhood_graph",
    "gabriel_graph",
    "euclidean_mst",
    "theta_graph",
    "yao_graph",
    "delaunay_graph",
]
