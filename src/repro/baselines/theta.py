"""Theta graphs and Yao graphs.

The related-work section points at the theta-graph constructions of Hassin &
Peleg and Keil & Gutwin: partition the plane around each node into ``k``
cones and connect the node to one representative neighbour per cone.  They
are the closest position-based relatives of CBTC — CBTC's cone condition is
"some neighbour in every cone of degree alpha", a theta/Yao graph's is "the
*closest* neighbour in each of k fixed cones" — so they make an instructive
baseline.  The Yao graph picks the nearest neighbour per cone; the theta
graph traditionally picks the neighbour whose projection on the cone
bisector is shortest.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import networkx as nx

from repro.geometry.angles import normalize_angle
from repro.net.network import Network
from repro.net.node import Node


def _cone_index(angle: float, k: int, offset: float) -> int:
    width = 2.0 * math.pi / k
    return int(normalize_angle(angle - offset) // width) % k


def _cone_candidates(network: Network, nodes: List[Node], u: Node, respect_max_range: bool) -> Iterable[Node]:
    """Nodes competing for ``u``'s cones.

    With the range restriction the spatial index supplies exactly the
    in-range nodes; without it every other node competes.  Enumeration
    order is irrelevant to the result: the per-cone winner is selected by
    full-tuple comparison (distance, then node id), never first-seen.
    """
    if respect_max_range and network.use_spatial_index:
        max_range = network.power_model.max_range
        return (
            network.node(v_id)
            for v_id in network.spatial_index().neighbors_within(
                u.position, max_range, exclude=u.node_id
            )
        )
    return (v for v in nodes if v.node_id != u.node_id)


def yao_graph(network: Network, k: int = 6, *, respect_max_range: bool = True, offset: float = 0.0) -> nx.Graph:
    """Yao graph: each node keeps its nearest neighbour in each of ``k`` cones."""
    if k < 1:
        raise ValueError("the number of cones k must be at least 1")
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    for u in nodes:
        best = {}
        for v in _cone_candidates(network, nodes, u, respect_max_range):
            d = u.distance_to(v)
            if respect_max_range and d > max_range + 1e-12:
                continue
            cone = _cone_index(u.direction_to(v), k, offset)
            # Full-tuple comparison so equal distances break ties by node id,
            # not by which candidate happened to be enumerated first.
            if cone not in best or (d, v.node_id) < best[cone]:
                best[cone] = (d, v.node_id)
        for _, (d, v_id) in sorted(best.items()):
            graph.add_edge(u.node_id, v_id, length=d)
    return graph


def theta_graph(
    network: Network,
    k: int = 6,
    *,
    respect_max_range: bool = True,
    offset: float = 0.0,
) -> nx.Graph:
    """Theta graph: per cone, keep the neighbour with the shortest bisector projection."""
    if k < 1:
        raise ValueError("the number of cones k must be at least 1")
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    width = 2.0 * math.pi / k
    for u in nodes:
        best = {}
        for v in _cone_candidates(network, nodes, u, respect_max_range):
            d = u.distance_to(v)
            if respect_max_range and d > max_range + 1e-12:
                continue
            angle = u.direction_to(v)
            cone = _cone_index(angle, k, offset)
            bisector = offset + (cone + 0.5) * width
            projection = d * math.cos(abs(normalize_angle(angle - bisector)))
            if cone not in best or (projection, d, v.node_id) < best[cone]:
                best[cone] = (projection, d, v.node_id)
        for _, (_, d, v_id) in sorted(best.items()):
            graph.add_edge(u.node_id, v_id, length=d)
    return graph
