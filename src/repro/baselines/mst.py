"""Euclidean minimum spanning tree baseline.

The MST minimizes the total edge length (and, per component, the maximum
power needed for connectivity is attained on an MST edge), which makes it
the extreme point of the sparseness/power trade-off: minimum possible degree
and radius, but the worst hop and power stretch.  Ramanathan and
Rosales-Hain's centralized algorithm (cited in the related work) is
essentially a bottleneck-optimal spanning structure, which the MST also
realizes: the largest MST edge equals the minimax per-node radius required
for connectivity.

Edge enumeration is where the naive construction becomes quadratic: the
range-limited variant now pulls its candidate edges from the network's
spatial index, and the complete (classical Euclidean) variant restricts
Kruskal's input to the Delaunay triangulation — a standard superset of the
Euclidean MST — falling back to the dense O(n^2) edge set whenever the
triangulation is unavailable (fewer than three nodes, collinear or
coincident points).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.net.network import Network
from repro.net.node import Node, NodeId

try:
    import numpy as _np
    from scipy.spatial import Delaunay, QhullError
except ImportError:  # pragma: no cover - the test image always has scipy
    _np = None
    Delaunay = None
    QhullError = Exception


def _delaunay_candidate_edges(nodes: List[Node]) -> Optional[List[Tuple[NodeId, NodeId]]]:
    """Delaunay edge set as sorted ``(u, v)`` ID pairs, or ``None`` if degenerate."""
    if Delaunay is None or len(nodes) < 3:
        return None
    distinct = {(node.position.x, node.position.y) for node in nodes}
    if len(distinct) < len(nodes):
        # Qhull merges coincident sites, which would drop the zero-length
        # edges the MST needs to connect co-located nodes.
        return None
    points = _np.array([[node.position.x, node.position.y] for node in nodes])
    try:
        triangulation = Delaunay(points)
    except QhullError:
        return None
    if len(triangulation.coplanar):
        # Qhull classified near-coincident points as "coplanar" and left them
        # out of every simplex; their edges would be missing and the MST
        # disconnected.  Let the dense fallback handle such inputs.
        return None
    index_to_id = [node.node_id for node in nodes]
    edges = set()
    vertices_seen = set()
    for simplex in triangulation.simplices:
        for i in range(3):
            vertices_seen.add(int(simplex[i]))
            a = index_to_id[simplex[i]]
            b = index_to_id[simplex[(i + 1) % 3]]
            edges.add((min(a, b), max(a, b)))
    if len(vertices_seen) != len(nodes):
        return None
    return sorted(edges)


def euclidean_mst(
    network: Network,
    *,
    respect_max_range: bool = False,
    use_index: Optional[bool] = None,
) -> nx.Graph:
    """Minimum spanning forest over the complete (or max-range) Euclidean graph.

    With ``respect_max_range`` the MST is computed inside ``G_R`` (yielding a
    spanning forest of each ``G_R`` component); otherwise over the complete
    graph, which is the classical Euclidean MST.
    """
    nodes = network.alive_nodes()
    use_index = network.use_spatial_index if use_index is None else use_index
    complete = nx.Graph()
    for node in nodes:
        complete.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range

    if respect_max_range and use_index:
        for u, v, d in network.spatial_index().pairs_within(max_range):
            complete.add_edge(u, v, length=d)
    else:
        candidates = _delaunay_candidate_edges(nodes) if (use_index and not respect_max_range) else None
        if candidates is not None:
            for u, v in candidates:
                complete.add_edge(u, v, length=network.distance(u, v))
        else:
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    d = u.distance_to(v)
                    if respect_max_range and d > max_range + 1e-12:
                        continue
                    complete.add_edge(u.node_id, v.node_id, length=d)

    forest = nx.minimum_spanning_tree(complete, weight="length")
    # Keep isolated nodes that the spanning tree construction may drop.
    for node in nodes:
        if node.node_id not in forest:
            forest.add_node(node.node_id, pos=node.position.as_tuple())
    return forest
