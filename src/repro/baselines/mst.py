"""Euclidean minimum spanning tree baseline.

The MST minimizes the total edge length (and, per component, the maximum
power needed for connectivity is attained on an MST edge), which makes it
the extreme point of the sparseness/power trade-off: minimum possible degree
and radius, but the worst hop and power stretch.  Ramanathan and
Rosales-Hain's centralized algorithm (cited in the related work) is
essentially a bottleneck-optimal spanning structure, which the MST also
realizes: the largest MST edge equals the minimax per-node radius required
for connectivity.
"""

from __future__ import annotations

import networkx as nx

from repro.net.network import Network


def euclidean_mst(network: Network, *, respect_max_range: bool = False) -> nx.Graph:
    """Minimum spanning forest over the complete (or max-range) Euclidean graph.

    With ``respect_max_range`` the MST is computed inside ``G_R`` (yielding a
    spanning forest of each ``G_R`` component); otherwise over the complete
    graph, which is the classical Euclidean MST.
    """
    nodes = network.alive_nodes()
    complete = nx.Graph()
    for node in nodes:
        complete.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            d = u.distance_to(v)
            if respect_max_range and d > max_range + 1e-12:
                continue
            complete.add_edge(u.node_id, v.node_id, length=d)
    forest = nx.minimum_spanning_tree(complete, weight="length")
    # Keep isolated nodes that the spanning tree construction may drop.
    for node in nodes:
        if node.node_id not in forest:
            forest.add_node(node.node_id, pos=node.position.as_tuple())
    return forest
