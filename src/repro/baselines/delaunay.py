"""Delaunay-triangulation baseline (Hu 1993 style heuristics).

Hu's topology-control heuristic (cited in the paper's related work) starts
from a Delaunay triangulation of the node positions.  We build the Delaunay
triangulation with scipy and optionally drop edges longer than the maximum
range, which is the natural "physically realizable" restriction.  The paper
notes there is no guarantee such heuristics preserve connectivity once long
edges are removed — the baseline benchmark demonstrates exactly that
degradation on sparse networks.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.spatial import Delaunay, QhullError

from repro.net.network import Network


def delaunay_graph(network: Network, *, respect_max_range: bool = True) -> nx.Graph:
    """Delaunay triangulation over node positions, optionally range-limited.

    Falls back to the max-power graph for degenerate inputs (fewer than three
    nodes or collinear points), where a triangulation does not exist.
    """
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    if len(nodes) < 3:
        return network.max_power_graph()

    points = np.array([[node.position.x, node.position.y] for node in nodes])
    try:
        triangulation = Delaunay(points)
    except QhullError:
        return network.max_power_graph()

    max_range = network.power_model.max_range
    index_to_id = [node.node_id for node in nodes]
    for simplex in triangulation.simplices:
        for i in range(3):
            a = index_to_id[simplex[i]]
            b = index_to_id[simplex[(i + 1) % 3]]
            d = network.distance(a, b)
            if respect_max_range and d > max_range + 1e-12:
                continue
            graph.add_edge(a, b, length=d)
    return graph
