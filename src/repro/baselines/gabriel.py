"""Gabriel graph.

An edge ``(u, v)`` belongs to the Gabriel graph iff the closed disk having
``uv`` as diameter contains no other node — equivalently, no node ``w`` has
``d(u, w)**2 + d(v, w)**2 < d(u, v)**2``.  The Gabriel graph contains the RNG
and the Euclidean MST and preserves minimum-energy paths for quadratic power
models, which makes it a natural energy-oriented baseline.
"""

from __future__ import annotations

import networkx as nx

from repro.net.network import Network


def gabriel_graph(network: Network, *, respect_max_range: bool = True) -> nx.Graph:
    """Build the Gabriel graph of the network (restricted to ``G_R`` edges by default)."""
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            d_uv_sq = u.distance_to(v) ** 2
            if respect_max_range and d_uv_sq > (max_range + 1e-12) ** 2:
                continue
            blocked = False
            for w in nodes:
                if w.node_id in (u.node_id, v.node_id):
                    continue
                if u.distance_to(w) ** 2 + v.distance_to(w) ** 2 < d_uv_sq - 1e-9:
                    blocked = True
                    break
            if not blocked:
                graph.add_edge(u.node_id, v.node_id, length=u.distance_to(v))
    return graph
