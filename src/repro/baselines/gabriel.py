"""Gabriel graph.

An edge ``(u, v)`` belongs to the Gabriel graph iff the closed disk having
``uv`` as diameter contains no other node — equivalently, no node ``w`` has
``d(u, w)**2 + d(v, w)**2 < d(u, v)**2``.  The Gabriel graph contains the RNG
and the Euclidean MST and preserves minimum-energy paths for quadratic power
models, which makes it a natural energy-oriented baseline.

Any witness ``w`` for an edge lies strictly inside the disk with diameter
``uv`` (by the parallelogram law ``d(u,w)^2 + d(v,w)^2 = 2 d(m,w)^2 +
d(u,v)^2 / 2`` for the midpoint ``m``), so the spatial index only has to
produce the nodes within ``d(u, v) / 2`` of the midpoint instead of the
whole node set — turning the classical O(n^3) witness scan into an
output-sensitive one.  The brute-force path is retained behind
``use_index=False`` and exercised by the equivalence tests.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.geometry import midpoint
from repro.net.network import Network


def gabriel_graph(
    network: Network,
    *,
    respect_max_range: bool = True,
    use_index: Optional[bool] = None,
) -> nx.Graph:
    """Build the Gabriel graph of the network (restricted to ``G_R`` edges by default)."""
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    use_index = network.use_spatial_index if use_index is None else use_index

    if not use_index:
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                d_uv_sq = u.distance_to(v) ** 2
                if respect_max_range and d_uv_sq > (max_range + 1e-12) ** 2:
                    continue
                blocked = False
                for w in nodes:
                    if w.node_id in (u.node_id, v.node_id):
                        continue
                    if u.distance_to(w) ** 2 + v.distance_to(w) ** 2 < d_uv_sq - 1e-9:
                        blocked = True
                        break
                if not blocked:
                    graph.add_edge(u.node_id, v.node_id, length=u.distance_to(v))
        return graph

    index = network.spatial_index()
    by_id = {node.node_id: node for node in nodes}

    if respect_max_range:
        pairs = ((by_id[a], by_id[b]) for a, b, _ in index.pairs_within(max_range))
    else:
        pairs = ((u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :])

    for u, v in pairs:
        d_uv = u.distance_to(v)
        d_uv_sq = d_uv ** 2
        # Witnesses lie strictly inside the disk of radius d_uv/2 around the
        # midpoint; pad the query to absorb floating-point rounding.
        witness_radius = 0.5 * d_uv * (1.0 + 1e-9) + 1e-9
        mid = midpoint(u.position, v.position)
        blocked = False
        for w_id in index.neighbors_within(mid, witness_radius):
            if w_id == u.node_id or w_id == v.node_id:
                continue
            w = by_id[w_id]
            if u.distance_to(w) ** 2 + v.distance_to(w) ** 2 < d_uv_sq - 1e-9:
                blocked = True
                break
        if not blocked:
            graph.add_edge(u.node_id, v.node_id, length=u.distance_to(v))
    return graph
