"""The no-topology-control baseline: every node transmits at maximum power."""

from __future__ import annotations

import networkx as nx

from repro.net.network import Network


def max_power_graph(network: Network) -> nx.Graph:
    """The paper's ``G_R``: all links of length at most the maximum range.

    This is the "Max Power" column of Table 1 and panel (a) of Figure 6.
    """
    return network.max_power_graph()
