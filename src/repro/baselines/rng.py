"""Relative neighborhood graph (Toussaint 1980).

An edge ``(u, v)`` belongs to the RNG iff no third node ``w`` is strictly
closer to both endpoints than they are to each other (``max(d(u, w), d(v, w))
< d(u, v)``).  Restricted to pairs within the maximum range, the RNG is a
connected, planar, low-degree subgraph of ``G_R`` (when ``G_R`` is
connected), which is why the paper lists it among the "similar in spirit"
structures.
"""

from __future__ import annotations

import networkx as nx

from repro.net.network import Network


def relative_neighborhood_graph(network: Network, *, respect_max_range: bool = True) -> nx.Graph:
    """Build the RNG of the network (restricted to ``G_R`` edges by default)."""
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            d_uv = u.distance_to(v)
            if respect_max_range and d_uv > max_range + 1e-12:
                continue
            blocked = False
            for w in nodes:
                if w.node_id in (u.node_id, v.node_id):
                    continue
                if max(u.distance_to(w), v.distance_to(w)) < d_uv - 1e-12:
                    blocked = True
                    break
            if not blocked:
                graph.add_edge(u.node_id, v.node_id, length=d_uv)
    return graph
