"""Relative neighborhood graph (Toussaint 1980).

An edge ``(u, v)`` belongs to the RNG iff no third node ``w`` is strictly
closer to both endpoints than they are to each other (``max(d(u, w), d(v, w))
< d(u, v)``).  Restricted to pairs within the maximum range, the RNG is a
connected, planar, low-degree subgraph of ``G_R`` (when ``G_R`` is
connected), which is why the paper lists it among the "similar in spirit"
structures.

Any witness for an edge lies in the lune of the two endpoints and hence
within ``d(u, v)`` of ``u``, so the spatial index restricts the witness scan
to that disk instead of the whole node set (O(n^3) -> output-sensitive).
The brute-force path is retained behind ``use_index=False`` and exercised by
the equivalence tests.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.net.network import Network


def relative_neighborhood_graph(
    network: Network,
    *,
    respect_max_range: bool = True,
    use_index: Optional[bool] = None,
) -> nx.Graph:
    """Build the RNG of the network (restricted to ``G_R`` edges by default)."""
    nodes = network.alive_nodes()
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.node_id, pos=node.position.as_tuple())
    max_range = network.power_model.max_range
    use_index = network.use_spatial_index if use_index is None else use_index

    if not use_index:
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                d_uv = u.distance_to(v)
                if respect_max_range and d_uv > max_range + 1e-12:
                    continue
                blocked = False
                for w in nodes:
                    if w.node_id in (u.node_id, v.node_id):
                        continue
                    if max(u.distance_to(w), v.distance_to(w)) < d_uv - 1e-12:
                        blocked = True
                        break
                if not blocked:
                    graph.add_edge(u.node_id, v.node_id, length=d_uv)
        return graph

    index = network.spatial_index()
    by_id = {node.node_id: node for node in nodes}

    if respect_max_range:
        pairs = ((by_id[a], by_id[b]) for a, b, _ in index.pairs_within(max_range))
    else:
        pairs = ((u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :])

    for u, v in pairs:
        d_uv = u.distance_to(v)
        blocked = False
        # Witnesses are strictly closer than d_uv to *both* endpoints, so the
        # disk of radius d_uv around u covers every possible witness.
        for w_id in index.neighbors_within(u.position, d_uv, exclude=u.node_id):
            if w_id == v.node_id:
                continue
            w = by_id[w_id]
            if max(u.distance_to(w), v.distance_to(w)) < d_uv - 1e-12:
                blocked = True
                break
        if not blocked:
            graph.add_edge(u.node_id, v.node_id, length=d_uv)
    return graph
