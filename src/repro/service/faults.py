"""Deterministic, seed-driven fault injection for the fleet service.

A :class:`FaultPlan` is a list of rules, each describing one failure mode
and when it fires.  All firing decisions are driven by monotone event
counters (requests dispatched per shard, responses written by the front
end, connections accepted) plus a per-rule seeded RNG for probabilistic
rules — so a plan replays identically run after run, which is what lets
the chaos battery assert byte-identical snapshots *under* injected
faults.

Rule schema (JSON)::

    {"seed": 42, "rules": [
        {"kind": "kill_worker",       "shard": 1, "at_request": 40},
        {"kind": "freeze_shard",      "shard": 0, "every": 10, "duration": 0.05},
        {"kind": "drop_response",     "every": 37, "count": 5},
        {"kind": "delay_response",    "probability": 0.05, "duration": 0.02},
        {"kind": "duplicate_response","at_request": 13},
        {"kind": "refuse_connections","every": 7, "count": 3}
    ]}

Triggers (exactly one per rule): ``at_request`` fires once when the
rule's counter reaches that value; ``every`` fires on every multiple;
``probability`` fires per event under the plan's seed.  ``count`` caps
total firings (default 1 for ``at_request``, unlimited otherwise).

Which counter a rule watches follows from its kind:

- ``kill_worker`` / ``freeze_shard`` — requests dispatched to ``shard``.
- ``drop_response`` / ``delay_response`` / ``duplicate_response`` —
  responses written by the front end (any connection).
- ``refuse_connections`` — connections accepted.

The injector is consulted from the server's dispatcher and connection
handler; the decision is made in one place (the front-end process) so a
fired one-shot rule stays fired across worker restarts.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

KILL_WORKER = "kill_worker"
FREEZE_SHARD = "freeze_shard"
DROP_RESPONSE = "drop_response"
DELAY_RESPONSE = "delay_response"
DUPLICATE_RESPONSE = "duplicate_response"
REFUSE_CONNECTIONS = "refuse_connections"

FAULT_KINDS = frozenset(
    {
        KILL_WORKER,
        FREEZE_SHARD,
        DROP_RESPONSE,
        DELAY_RESPONSE,
        DUPLICATE_RESPONSE,
        REFUSE_CONNECTIONS,
    }
)

#: Kinds that target one shard and watch its request counter.
_SHARD_KINDS = frozenset({KILL_WORKER, FREEZE_SHARD})
#: Kinds that watch the front end's response counter.
_RESPONSE_KINDS = frozenset({DROP_RESPONSE, DELAY_RESPONSE, DUPLICATE_RESPONSE})
#: Kinds that need a duration.
_DURATION_KINDS = frozenset({FREEZE_SHARD, DELAY_RESPONSE})


@dataclass
class FaultRule:
    """One failure mode plus its trigger."""

    kind: str
    shard: Optional[int] = None
    at_request: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    duration: float = 0.0
    count: Optional[int] = None
    fired: int = field(default=0, compare=False)

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        triggers = [t for t in (self.at_request, self.every, self.probability) if t is not None]
        if len(triggers) != 1:
            raise ValueError(
                f"rule {self.kind!r} needs exactly one of at_request/every/probability"
            )
        if self.kind in _SHARD_KINDS:
            if not isinstance(self.shard, int) or self.shard < 0:
                raise ValueError(f"rule {self.kind!r} requires a non-negative 'shard'")
        elif self.shard is not None:
            raise ValueError(f"rule {self.kind!r} does not take a 'shard'")
        if self.at_request is not None and (
            not isinstance(self.at_request, int) or self.at_request < 1
        ):
            raise ValueError("'at_request' must be a positive integer")
        if self.every is not None and (not isinstance(self.every, int) or self.every < 1):
            raise ValueError("'every' must be a positive integer")
        if self.probability is not None and not (0.0 < float(self.probability) <= 1.0):
            raise ValueError("'probability' must be in (0, 1]")
        if self.kind in _DURATION_KINDS and not (
            isinstance(self.duration, (int, float)) and self.duration >= 0.0
        ):
            raise ValueError(f"rule {self.kind!r} requires a non-negative 'duration'")
        if self.count is not None and (not isinstance(self.count, int) or self.count < 1):
            raise ValueError("'count' must be a positive integer")

    def _budget(self) -> Optional[int]:
        if self.count is not None:
            return self.count
        return 1 if self.at_request is not None else None

    def spent(self) -> bool:
        budget = self._budget()
        return budget is not None and self.fired >= budget

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        for key in ("shard", "at_request", "every", "probability", "count"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.kind in _DURATION_KINDS:
            payload["duration"] = self.duration
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise ValueError("each fault rule must be an object")
        unknown = set(payload) - {
            "kind",
            "shard",
            "at_request",
            "every",
            "probability",
            "duration",
            "count",
        }
        if unknown:
            raise ValueError(f"unknown fault-rule fields {sorted(unknown)}")
        rule = cls(
            kind=payload.get("kind", ""),
            shard=payload.get("shard"),
            at_request=payload.get("at_request"),
            every=payload.get("every"),
            probability=payload.get("probability"),
            duration=float(payload.get("duration", 0.0)),
            count=payload.get("count"),
        )
        rule.validate()
        return rule


@dataclass
class FaultPlan:
    """A reproducible schedule of injected faults."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "rules"}
        if unknown:
            raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("'seed' must be an integer")
        raw_rules = payload.get("rules", [])
        if not isinstance(raw_rules, list):
            raise ValueError("'rules' must be a list")
        return cls(rules=[FaultRule.from_dict(raw) for raw in raw_rules], seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class ResponseFault:
    """What the front end should do to one outgoing response."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0

    def __bool__(self) -> bool:
        return self.drop or self.duplicate or self.delay > 0.0


class FaultInjector:
    """Stateful evaluator of a :class:`FaultPlan`.

    One injector instance lives in the front-end process and owns every
    counter, so one-shot rules stay consumed across worker restarts.  The
    hook methods are synchronous and cheap; callers apply the returned
    actions (``asyncio.sleep`` for delays/freezes — never a blocking
    sleep, the inline pool shares the event loop).
    """

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self._plan = plan
        self._shard_requests: Dict[int, int] = {}
        self._responses = 0
        self._connections = 0
        self._rngs = [
            random.Random((plan.seed << 16) ^ index) for index, _ in enumerate(plan.rules)
        ]
        self.fired_counts: Dict[str, int] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _fires(self, rule: FaultRule, index: int, counter: int) -> bool:
        if rule.spent():
            return False
        if rule.at_request is not None:
            hit = counter == rule.at_request
        elif rule.every is not None:
            hit = counter % rule.every == 0
        else:
            hit = self._rngs[index].random() < float(rule.probability)
        if hit:
            rule.fired += 1
            self.fired_counts[rule.kind] = self.fired_counts.get(rule.kind, 0) + 1
        return hit

    def _matching(self, kinds: Iterable[str], shard: Optional[int] = None) -> Iterable[
        Tuple[int, FaultRule]
    ]:
        wanted = frozenset(kinds)
        for index, rule in enumerate(self._plan.rules):
            if rule.kind not in wanted:
                continue
            if shard is not None and rule.shard != shard:
                continue
            yield index, rule

    # ------------------------------------------------------------------ #
    # Hook points
    # ------------------------------------------------------------------ #
    def on_shard_request(self, shard: int) -> Tuple[bool, float]:
        """Advance ``shard``'s request counter; -> (kill_worker, freeze_s).

        Called by the dispatcher once per request as it is pulled into a
        batch.  A returned kill means the pool should crash that shard's
        worker before executing the batch; a positive freeze is a
        duration the dispatcher must ``asyncio.sleep`` before dispatch.
        """
        counter = self._shard_requests.get(shard, 0) + 1
        self._shard_requests[shard] = counter
        kill = False
        freeze = 0.0
        for index, rule in self._matching(_SHARD_KINDS, shard=shard):
            if self._fires(rule, index, counter):
                if rule.kind == KILL_WORKER:
                    kill = True
                else:
                    freeze += rule.duration
        return kill, freeze

    def on_response(self) -> ResponseFault:
        """Advance the response counter; what to do to this response."""
        self._responses += 1
        fault = ResponseFault()
        for index, rule in self._matching(_RESPONSE_KINDS):
            if self._fires(rule, index, self._responses):
                if rule.kind == DROP_RESPONSE:
                    fault.drop = True
                elif rule.kind == DUPLICATE_RESPONSE:
                    fault.duplicate = True
                else:
                    fault.delay += rule.duration
        return fault

    def on_connection(self) -> bool:
        """Advance the connection counter; True → refuse this connection."""
        self._connections += 1
        refuse = False
        for index, rule in self._matching({REFUSE_CONNECTIONS}):
            if self._fires(rule, index, self._connections):
                refuse = True
        return refuse

    def counters(self) -> Dict[str, int]:
        """Fired-per-kind counts (for metrics and test assertions)."""
        return dict(self.fired_counts)
