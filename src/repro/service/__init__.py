"""Topology-as-a-service: the fleet server and its clients.

The service layer turns the repository's simulation machinery into a
serving surface: a long-running asyncio front end
(:class:`~repro.service.server.FleetServer`) hosts many live worlds behind
a JSON wire protocol, shards them over worker processes by consistent
hashing (:class:`~repro.service.sharding.HashRing`), coalesces concurrent
requests into per-shard batches, and serves reads from per-world snapshot
caches invalidated through the network's dirty-listener hooks
(:class:`~repro.service.worlds.World`).  Writes ride the incremental
dirty-set topology pipeline, so a request that moves a handful of nodes
never pays for a full rebuild.

``cbtc serve`` starts a server; ``cbtc load`` drives the closed-loop load
generator (:mod:`repro.service.loadgen`) against it and can verify the
served snapshots byte-for-byte against a serial in-process replay
(:mod:`repro.service.replay`).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import (
    LoadConfig,
    LoadReport,
    build_trace,
    flatten_trace,
    run_load,
    run_load_async,
    serial_reference,
    verify_snapshots,
)
from repro.service.replay import ShardedReplayer, replay_serial, replay_sharded
from repro.service.server import FleetServer, run_server
from repro.service.sharding import HashRing
from repro.service.workers import InlineShardPool, ProcessShardPool
from repro.service.worlds import World, WorldHost, build_world_spec

__all__ = [
    "FleetServer",
    "HashRing",
    "InlineShardPool",
    "LoadConfig",
    "LoadReport",
    "ProcessShardPool",
    "ServiceClient",
    "ServiceError",
    "ShardedReplayer",
    "World",
    "WorldHost",
    "build_trace",
    "build_world_spec",
    "flatten_trace",
    "replay_serial",
    "replay_sharded",
    "run_load",
    "run_load_async",
    "run_server",
    "serial_reference",
    "verify_snapshots",
]
