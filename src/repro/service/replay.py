"""Request-trace replay: the service layer's determinism harness.

A request *trace* is a list of protocol request dictionaries in arrival
order.  The fleet's correctness contract is that the final state of every
world is a pure function of the **per-world subsequence** of the trace —
independent of sharding, batching, worker scheduling, or transport.  This
module provides the two reference executions the battery (and the CI smoke
job) compare:

* :func:`replay_serial` — one :class:`~repro.service.worlds.WorldHost`
  executes the whole trace in order: the obviously correct baseline.
* :func:`replay_sharded` — the trace is routed through the same
  consistent-hash ring the server uses, then each shard's queue is consumed
  in seeded-random interleaved batches of seeded-random sizes.  Any such
  schedule preserves per-world order (worlds never migrate between shards),
  so the resulting snapshots must be byte-identical to the serial ones —
  the hypothesis battery samples schedules adversarially.

Both return ``{world_id: canonical snapshot JSON string}`` so comparisons
are literal string equality on :func:`repro.io.results.results_to_json`
output, the repo-wide byte-identity notion.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.io.results import results_to_json
from repro.service import protocol
from repro.service.sharding import HashRing
from repro.service.storage.base import WorldStore
from repro.service.subs.mirror import WorldMirror
from repro.service.worlds import DEFAULT_SNAPSHOT_EVERY, WorldHost
from repro.sim.randomness import SeededRandom


def snapshot_request(world_id: str) -> Dict[str, Any]:
    """The canonical parameterless snapshot request for ``world_id``."""
    return {"id": None, "op": protocol.SNAPSHOT, "world": world_id, "params": {}}


def collect_snapshots(host: WorldHost) -> Dict[str, str]:
    """Final canonical snapshots of every world hosted by ``host``.

    ``world_ids()`` covers evicted worlds too — snapshotting rehydrates
    them, which is exactly the transparency the eviction tests assert.
    """
    snapshots: Dict[str, str] = {}
    for world_id in host.world_ids():
        response = host.execute(snapshot_request(world_id))
        if not response.get("ok"):  # pragma: no cover - snapshots cannot fail
            raise RuntimeError(f"snapshot of {world_id!r} failed: {response.get('error')}")
        snapshots[world_id] = results_to_json(response["result"])
    return snapshots


def replay_serial(trace: List[Dict[str, Any]], *, naive: bool = False) -> Dict[str, str]:
    """Execute the whole trace on one host, in order; return final snapshots."""
    host = WorldHost(naive=naive)
    try:
        for request in trace:
            host.execute(request)
        return collect_snapshots(host)
    finally:
        host.close()


class ShardedReplayer:
    """Sharded trace execution with explicit phases.

    The benchmarks need to execute a trace in parts — an untimed world
    bootstrap, then a timed steady-state workload — against the *same*
    shard hosts, so the replayer keeps its hosts alive across
    :meth:`execute` calls and hands out snapshots on demand.

    With a ``store_factory`` (``shard -> WorldStore``) each host runs
    durably, and :meth:`crash` models a worker death between batches: the
    shard's host is *abandoned* — no flush, no close, exactly what a killed
    process leaves behind — and a fresh host recovers from the shard's
    store.  The kill-and-recover battery interleaves ``execute`` segments
    with ``crash`` calls at hypothesis-chosen points and requires the final
    snapshots to match :func:`replay_serial` byte for byte.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        naive: bool = False,
        store_factory: Optional[Callable[[int], WorldStore]] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        max_live_worlds: Optional[int] = None,
    ) -> None:
        self.ring = HashRing(shards)
        self.naive = naive
        self.snapshot_every = snapshot_every
        self.max_live_worlds = max_live_worlds
        self._store_factory = store_factory
        self._stores = [
            store_factory(shard) if store_factory is not None else None for shard in range(shards)
        ]
        self.hosts = [self._build_host(shard) for shard in range(shards)]
        #: In-process subscription mirrors (see :meth:`attach_mirror`).
        self.mirrors: Dict[str, WorldMirror] = {}

    def _build_host(self, shard: int) -> WorldHost:
        return WorldHost(
            naive=self.naive,
            store=self._stores[shard],
            snapshot_every=self.snapshot_every,
            max_live_worlds=self.max_live_worlds,
        )

    def crash(self, shard: int, *, use_checkpoints: bool = True) -> int:
        """Abandon ``shard``'s host and recover a replacement from its store.

        Returns the number of worlds recovered.  ``use_checkpoints=False``
        forces full-log replay, proving checkpoints are an optimization
        with no observable effect.
        """
        if self._stores[shard] is None:
            raise ValueError("crash() needs a store_factory to recover from")
        # No close(), no flush: a killed worker's in-memory state simply
        # vanishes, and only what commit_batch persisted survives.
        self.hosts[shard] = self._build_host(shard)
        return self.hosts[shard].recover(use_checkpoints=use_checkpoints)

    def resize(self, new_shards: int) -> int:
        """Change the shard count, migrating moved worlds between hosts.

        The in-process mirror of the server's live ``resize``: every world
        whose ring assignment changes is drained off its current host
        (``migrate_out`` — serializing it and purging its durable history)
        and adopted by its new owner (``migrate_in``), through the same
        request path the server uses.  Shrinking closes the dying hosts
        only after their worlds have moved.  Returns the number of worlds
        migrated.  The battery interleaves ``resize`` with ``execute`` and
        ``crash`` segments and requires final snapshots byte-identical to
        :func:`replay_serial` of the same trace.
        """
        if new_shards < 1:
            raise ValueError("a replayer needs at least one shard")
        old_shards = len(self.hosts)
        new_ring = HashRing(new_shards)
        for shard in range(old_shards, new_shards):
            self._stores.append(
                self._store_factory(shard) if self._store_factory is not None else None
            )
            host = self._build_host(shard)
            if self._stores[shard] is not None:
                host.recover()
            self.hosts.append(host)
        moving: List[tuple] = []
        for shard, host in enumerate(self.hosts[:old_shards]):
            for world_id in host.world_ids():
                if new_ring.shard_of(world_id) != shard:
                    moving.append((world_id, shard))
        moved = 0
        for world_id, source in sorted(moving):
            out = self.hosts[source].execute(
                {"id": None, "op": protocol.MIGRATE_OUT, "world": world_id}
            )
            if not out.get("ok"):  # pragma: no cover - worlds cannot vanish here
                raise RuntimeError(f"migrate_out of {world_id!r} failed: {out.get('error')}")
            landed = self.hosts[new_ring.shard_of(world_id)].execute(
                {
                    "id": None,
                    "op": protocol.MIGRATE_IN,
                    "world": world_id,
                    "params": {"state": out["result"]["state"]},
                }
            )
            if not landed.get("ok"):  # pragma: no cover - adoption cannot fail
                raise RuntimeError(
                    f"migrate_in of {world_id!r} failed: {landed.get('error')}"
                )
            moved += 1
        for shard in range(new_shards, old_shards):
            self.hosts[shard].close()
            if self._stores[shard] is not None:
                self._stores[shard].close()
        del self.hosts[new_shards:]
        del self._stores[new_shards:]
        self.ring = new_ring
        # Trackers ride the migration; fetch anything committed on the old
        # owner that no per-batch collect picked up before the move.
        self.collect_all_frames()
        return moved

    def execute(
        self,
        trace: List[Dict[str, Any]],
        *,
        schedule_seed: int = 0,
        max_batch: int = 8,
    ) -> int:
        """Replay ``trace`` under a seeded random batch schedule.

        ``schedule_seed`` drives which shard dispatches next and how large
        each batch is — the degrees of freedom the real server's
        load-dependent batching exercises.  Per-shard queues are strictly
        FIFO, exactly like the server's pending queues.  Returns the number
        of requests that reached a shard.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        queues: List[deque] = [deque() for _ in self.hosts]
        routed = 0
        for request in trace:
            world = request.get("world")
            if isinstance(world, str) and world:
                queues[self.ring.shard_of(world)].append(request)
                routed += 1
            # Front-end/malformed requests never reach a shard; they cannot
            # affect world state, so replay ignores them.
        rng = SeededRandom(schedule_seed)
        while True:
            nonempty = [shard for shard, queue in enumerate(queues) if queue]
            if not nonempty:
                return routed
            shard = rng.choice(nonempty)
            size = rng.randint(1, min(max_batch, len(queues[shard])))
            batch = [queues[shard].popleft() for _ in range(size)]
            responses = self.hosts[shard].execute_batch(batch)
            self._collect_frames(shard, batch, responses)

    def attach_mirror(self, world_id: str) -> WorldMirror:
        """Subscribe in-process: track the world and mirror its stream.

        The engine-level twin of the server front end's subscription path:
        a ``sub_track`` rides the world's shard (idempotent if the trace
        already subscribed), the response seeds a
        :class:`~repro.service.subs.mirror.WorldMirror`, and every
        subsequent :meth:`execute` batch that commits a push-trigger op
        collects the fresh diff frames and applies them — so the battery
        can require the mirror to be byte-identical to a fresh snapshot at
        every sequence point, under any batch schedule.
        """
        shard = self.ring.shard_of(world_id)
        response = self.hosts[shard].execute(
            {"id": None, "op": protocol.SUB_TRACK, "world": world_id, "params": {}}
        )
        if not response.get("ok"):
            raise RuntimeError(
                f"sub_track of {world_id!r} failed: {response.get('error')}"
            )
        result = response["result"]
        mirror = WorldMirror(world_id)
        mirror.seed(result["seq"], result["snapshot"])
        self.mirrors[world_id] = mirror
        return mirror

    def _collect_frames(
        self,
        shard: int,
        batch: List[Dict[str, Any]],
        responses: List[Dict[str, Any]],
    ) -> None:
        """Mirror maintenance after a batch, as the server front end does."""
        if not self.mirrors:
            return
        worlds = set()
        for request, response in zip(batch, responses):
            if request.get("op") not in protocol.PUSH_TRIGGER_OPS:
                continue
            if not response.get("ok"):
                continue
            world = request.get("world")
            if world in self.mirrors:
                worlds.add(world)
        if not worlds:
            return
        cursors = {
            world: (-1 if self.mirrors[world].seq is None else self.mirrors[world].seq)
            for world in sorted(worlds)
        }
        collected = self.hosts[shard].execute(
            {
                "id": None,
                "op": protocol.SUBS_COLLECT,
                "world": f"@shard:{shard}",
                "params": {"cursors": cursors},
            }
        )
        if collected.get("ok"):
            for frame in collected["result"]["frames"]:
                self.mirrors[frame["world"]].apply(frame)

    def collect_all_frames(self) -> None:
        """Collect outstanding frames for every mirrored world.

        Called after :meth:`resize` (migrated trackers may hold frames no
        per-batch collect has fetched yet) or at a comparison point.
        """
        by_shard: Dict[int, Dict[str, int]] = {}
        for world, mirror in sorted(self.mirrors.items()):
            if mirror.deleted:
                continue
            shard = self.ring.shard_of(world)
            cursor = -1 if mirror.seq is None else mirror.seq
            by_shard.setdefault(shard, {})[world] = cursor
        for shard, cursors in sorted(by_shard.items()):
            collected = self.hosts[shard].execute(
                {
                    "id": None,
                    "op": protocol.SUBS_COLLECT,
                    "world": f"@shard:{shard}",
                    "params": {"cursors": cursors},
                }
            )
            if collected.get("ok"):
                for frame in collected["result"]["frames"]:
                    self.mirrors[frame["world"]].apply(frame)

    def mirror_snapshots(self) -> Dict[str, str]:
        """Canonical JSON of each live mirror's reconstructed snapshot."""
        return {
            world: results_to_json(mirror.snapshot)
            for world, mirror in sorted(self.mirrors.items())
            if mirror.snapshot is not None and not mirror.deleted
        }

    def snapshots(self) -> Dict[str, str]:
        """Final canonical snapshots across every shard, sorted by world."""
        snapshots: Dict[str, str] = {}
        for host in self.hosts:
            snapshots.update(collect_snapshots(host))
        return dict(sorted(snapshots.items()))

    def close(self) -> None:
        """Release every shard host (and its store, where attached)."""
        for host in self.hosts:
            host.close()
        for store in self._stores:
            if store is not None:
                store.close()


def replay_sharded(
    trace: List[Dict[str, Any]],
    *,
    shards: int = 2,
    schedule_seed: int = 0,
    max_batch: int = 8,
    naive: bool = False,
) -> Dict[str, str]:
    """One-shot sharded replay: execute the whole trace, return snapshots."""
    replayer = ShardedReplayer(shards, naive=naive)
    try:
        replayer.execute(trace, schedule_seed=schedule_seed, max_batch=max_batch)
        return replayer.snapshots()
    finally:
        replayer.close()
