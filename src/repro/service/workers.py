"""Shard execution backends: in-process and multiprocessing.

Both backends expose the same two-method interface the front end's
dispatchers drive::

    responses = pool.execute(shard, [request, ...])   # blocking, in order
    pool.close()

:class:`InlineShardPool` runs every shard's :class:`~repro.service.worlds.
WorldHost` in the server process — zero IPC, ideal for tests, benchmarks
that isolate the serving-layer gains, and single-machine serving.

:class:`ProcessShardPool` gives each shard a long-lived worker process
owning its worlds' :class:`~repro.core.reconfiguration.ReconfigurationManager`
and :class:`~repro.core.incremental.IncrementalTopologyBuilder` state, so
epoch updates ride the dirty-set path across requests instead of rebuilding
per request.  Workers receive request batches over a ``multiprocessing``
queue and answer on a per-shard response queue; because each shard has at
most one batch in flight (the dispatcher awaits the previous batch before
sending the next), responses need no sequence numbers and per-world request
order — the determinism contract — is preserved by construction.

Workers start **empty**: worlds are created by ``create_world`` requests
routed through the same consistent hash as every other request, so no live
object ever crosses a process boundary (requests and responses are plain
JSON-able dictionaries).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List

from repro.service.worlds import WorldHost

#: Sentinel telling a worker loop to exit.
_STOP = "stop"


class InlineShardPool:
    """All shards executed synchronously in the calling process."""

    #: Inline execution is pure in-process Python: running it straight on
    #: the event loop avoids an executor-thread round trip per batch (the
    #: compute holds the GIL either way), while arriving requests queue in
    #: the transport buffers and coalesce into the next batch.
    runs_in_loop = True

    def __init__(self, shard_count: int, *, naive: bool = False) -> None:
        if shard_count < 1:
            raise ValueError("a shard pool needs at least one shard")
        self.shard_count = shard_count
        self.hosts = [WorldHost(naive=naive) for _ in range(shard_count)]

    def execute(self, shard: int, batch: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run one batch on ``shard``; responses in request order."""
        return self.hosts[shard].execute_batch(batch)

    def close(self) -> None:
        """Release every host's worlds."""
        for host in self.hosts:
            host.close()


def _worker_loop(
    shard: int,
    naive: bool,
    inbox: multiprocessing.Queue,
    outbox: multiprocessing.Queue,
) -> None:
    """One shard worker: execute batches until the stop sentinel arrives.

    An unexpected exception must not strand the dispatcher awaiting a
    response, so failures are converted into per-request error responses
    and the loop keeps serving — a poisoned request takes down one batch's
    semantics, not the shard.
    """
    host = WorldHost(naive=naive)
    while True:
        message = inbox.get()
        if message == _STOP:
            break
        batch: List[Dict[str, Any]] = message
        try:
            responses = host.execute_batch(batch)
        except Exception as error:  # pragma: no cover - defensive
            from repro.service.protocol import error_response

            responses = [
                error_response(request.get("id"), f"shard {shard} worker error: {error!r}")
                for request in batch
            ]
        outbox.put(responses)


def _pool_context() -> multiprocessing.context.BaseContext:
    # Same choice as the experiment runner: fork where available (cheap),
    # spawn elsewhere; workers share no mutable state with the parent, so
    # the start method never affects results.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessShardPool:
    """One long-lived worker process per shard."""

    #: The queue round trip blocks; it must run in an executor thread so
    #: the event loop keeps reading other connections meanwhile.
    runs_in_loop = False

    def __init__(self, shard_count: int, *, naive: bool = False) -> None:
        if shard_count < 1:
            raise ValueError("a shard pool needs at least one shard")
        self.shard_count = shard_count
        context = _pool_context()
        self._inboxes = [context.Queue() for _ in range(shard_count)]
        self._outboxes = [context.Queue() for _ in range(shard_count)]
        self._workers = [
            context.Process(
                target=_worker_loop,
                args=(shard, naive, self._inboxes[shard], self._outboxes[shard]),
                daemon=True,
            )
            for shard in range(shard_count)
        ]
        for worker in self._workers:
            worker.start()

    def execute(self, shard: int, batch: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Ship one batch to ``shard``'s worker and block for its responses."""
        self._inboxes[shard].put(batch)
        return self._outboxes[shard].get()

    def close(self) -> None:
        """Stop every worker and reap the processes."""
        for inbox in self._inboxes:
            inbox.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5)
