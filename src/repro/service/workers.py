"""Shard execution backends: in-process and multiprocessing.

Both backends expose the same two-method interface the front end's
dispatchers drive::

    responses = pool.execute(shard, [request, ...])   # blocking, in order
    pool.close()

:class:`InlineShardPool` runs every shard's :class:`~repro.service.worlds.
WorldHost` in the server process — zero IPC, ideal for tests, benchmarks
that isolate the serving-layer gains, and single-machine serving.

:class:`ProcessShardPool` gives each shard a long-lived worker process
owning its worlds' :class:`~repro.core.reconfiguration.ReconfigurationManager`
and :class:`~repro.core.incremental.IncrementalTopologyBuilder` state, so
epoch updates ride the dirty-set path across requests instead of rebuilding
per request.  Workers receive request batches over a ``multiprocessing``
queue and answer on a per-shard response queue; because each shard has at
most one batch in flight (the dispatcher awaits the previous batch before
sending the next), per-world request order — the determinism contract — is
preserved by construction.  Batches *do* carry sequence numbers, but for
durability rather than ordering: the number keys the store's exactly-once
re-dispatch marker (see below).

Workers start **empty** unless recovering: worlds are created by
``create_world`` requests routed through the same consistent hash as every
other request, so no live object ever crosses a process boundary (requests
and responses are plain JSON-able dictionaries; stores are built *inside*
the worker from a picklable :class:`~repro.service.storage.base.StoreConfig`).

**Worker death.**  ``execute`` never blocks forever on a dead worker: it
polls the response queue and watches ``Process.is_alive()``.  What happens
next depends on durability:

* with a durable (sqlite) store the pool restarts the worker on fresh
  queues (a kill mid-``put`` can corrupt the old ones), the replacement
  recovers its fleet from the shard's write-ahead log, and the batch is
  re-dispatched under its original sequence number — if the dead worker
  had already committed it, the store answers with the committed responses
  (exactly-once); if not, the batch re-executes from the pre-batch state,
  deterministically.  The client never sees the crash.
* without one (no store, or the per-process memory store) the batch's
  state is simply gone: the pool surfaces one error response per request
  and restarts an **empty** worker so the shard keeps serving.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
from typing import Any, Dict, List, Optional

from repro.service.storage.base import StoreConfig, build_store
from repro.service.worlds import WorldHost

#: Sentinel telling a worker loop to exit.
_STOP = "stop"

#: Sentinel telling a worker loop to die *ungracefully* (``os._exit``),
#: exercising the real supervision path.  Sent by the fault injector's
#: ``kill_worker`` rules; the decision is made parent-side so a one-shot
#: rule stays consumed across the restart.
_DIE = "die"

#: Response-queue poll interval while watching worker liveness (seconds).
_POLL_INTERVAL = 0.1


def _build_host(shard: int, naive: bool, store_config: Optional[StoreConfig]) -> WorldHost:
    """One shard's host, with its store attached when storage is configured."""
    if store_config is None:
        return WorldHost(naive=naive)
    return WorldHost(
        naive=naive,
        store=build_store(store_config, shard),
        snapshot_every=store_config.snapshot_every,
        max_live_worlds=store_config.max_live_worlds,
    )


class InlineShardPool:
    """All shards executed synchronously in the calling process."""

    #: Inline execution is pure in-process Python: running it straight on
    #: the event loop avoids an executor-thread round trip per batch (the
    #: compute holds the GIL either way), while arriving requests queue in
    #: the transport buffers and coalesce into the next batch.
    runs_in_loop = True

    def __init__(
        self,
        shard_count: int,
        *,
        naive: bool = False,
        store_config: Optional[StoreConfig] = None,
        recover: bool = False,
    ) -> None:
        if shard_count < 1:
            raise ValueError("a shard pool needs at least one shard")
        self.shard_count = shard_count
        self.naive = naive
        self.store_config = store_config
        self.worker_restarts = 0
        self._killed = [False] * shard_count
        self.hosts = [_build_host(shard, naive, store_config) for shard in range(shard_count)]
        if recover:
            if store_config is None:
                raise ValueError("recover=True needs a store_config")
            for host in self.hosts:
                host.recover()

    @property
    def durable(self) -> bool:
        """Whether shard state survives a (simulated) worker death."""
        return self.store_config is not None and self.store_config.durable

    def kill_worker(self, shard: int) -> None:
        """Mark ``shard``'s host as crashed (the inline analogue of a
        worker-process death): the next batch finds the host gone and takes
        the same restart-or-error path the process pool takes."""
        self._killed[shard] = True

    def execute(self, shard: int, batch: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run one batch on ``shard``; responses in request order."""
        if self._killed[shard]:
            self._killed[shard] = False
            # Abandon the host without flushing — a crash checkpoints
            # nothing — and rebuild, mirroring the process pool's restart.
            old_store = self.hosts[shard].store
            if old_store is not None:
                old_store.close()
            replacement = _build_host(shard, self.naive, self.store_config)
            self.hosts[shard] = replacement
            self.worker_restarts += 1
            if not self.durable:
                from repro.service.protocol import error_response

                return [
                    error_response(
                        request.get("id"),
                        f"shard {shard} worker died executing this batch; "
                        f"its worlds were lost (no durable store configured)",
                    )
                    for request in batch
                ]
            replacement.recover()
        return self.hosts[shard].execute_batch(batch)

    def recovered_worlds(self) -> int:
        """Worlds restored from storage across all shards."""
        return sum(host.recovered_worlds for host in self.hosts)

    def grow(self, new_count: int, *, recover: bool = False) -> None:
        """Add shards ``shard_count..new_count-1`` (live resize, grow leg)."""
        if new_count < self.shard_count:
            raise ValueError("grow() cannot shrink the pool")
        for shard in range(self.shard_count, new_count):
            host = _build_host(shard, self.naive, self.store_config)
            if recover and host.store is not None:
                host.recover()
            self.hosts.append(host)
            self._killed.append(False)
        self.shard_count = new_count

    def shrink(self, new_count: int) -> None:
        """Drop shards ``new_count..`` (their worlds must already be gone)."""
        if not 1 <= new_count <= self.shard_count:
            raise ValueError("shrink() needs 1 <= new_count <= shard_count")
        while len(self.hosts) > new_count:
            host = self.hosts.pop()
            self._killed.pop()
            host.close()
            if host.store is not None:
                host.store.close()
        self.shard_count = new_count

    def close(self) -> None:
        """Release every host's worlds (flushing to storage where attached)."""
        for host in self.hosts:
            host.close()
            if host.store is not None:
                host.store.close()


def _worker_loop(
    shard: int,
    naive: bool,
    store_config: Optional[StoreConfig],
    recover: bool,
    inbox: multiprocessing.Queue,
    outbox: multiprocessing.Queue,
) -> None:
    """One shard worker: execute batches until the stop sentinel arrives.

    An unexpected exception must not strand the dispatcher awaiting a
    response, so failures are converted into per-request error responses
    and the loop keeps serving — a poisoned request takes down one batch's
    semantics, not the shard.

    The store (when configured) is built here, inside the worker process —
    a sqlite connection must never cross a fork/spawn boundary.  A worker
    started with ``recover=True`` rebuilds its fleet from that store before
    serving, then reports the recovered-world count on the outbox as its
    first message (the pool's restart handshake).
    """
    host = _build_host(shard, naive, store_config)
    if recover:
        # The handshake also reports the last committed batch sequence so
        # the dispatcher resumes numbering where the store left off — a
        # restarted server otherwise re-issues seq 1 against a log whose
        # exactly-once marker is far ahead.
        outbox.put((host.recover(), host.last_batch_seq))
    # Orphan watchdog: a forked worker inherits the parent's file
    # descriptors — including the server's listening socket — so a worker
    # that outlives a SIGKILLed parent keeps the port bound and blocks a
    # restart.  Getting reparented (getppid changes) is the death signal;
    # polling the inbox instead of blocking forever lets the loop notice.
    parent = os.getppid()
    while True:
        try:
            message = inbox.get(timeout=1.0)
        except queue_module.Empty:
            if os.getppid() != parent:
                break
            continue
        if message == _STOP:
            break
        if message == _DIE:
            # Injected crash: die the way a real fault would — no cleanup,
            # no store flush, no queue drain.
            os._exit(1)
        seq, batch = message
        try:
            responses = host.execute_batch(batch, batch_seq=seq)
        except Exception as error:  # pragma: no cover - defensive
            from repro.service.protocol import error_response

            responses = [
                error_response(request.get("id"), f"shard {shard} worker error: {error!r}")
                for request in batch
            ]
        outbox.put(responses)
    host.close()
    if host.store is not None:
        host.store.close()


class WorkerDiedError(RuntimeError):
    """A shard worker died with a batch in flight and could not be made whole."""


def _pool_context() -> multiprocessing.context.BaseContext:
    # Same choice as the experiment runner: fork where available (cheap),
    # spawn elsewhere; workers share no mutable state with the parent, so
    # the start method never affects results.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessShardPool:
    """One long-lived worker process per shard, supervised."""

    #: The queue round trip blocks; it must run in an executor thread so
    #: the event loop keeps reading other connections meanwhile.
    runs_in_loop = False

    def __init__(
        self,
        shard_count: int,
        *,
        naive: bool = False,
        store_config: Optional[StoreConfig] = None,
        recover: bool = False,
    ) -> None:
        if shard_count < 1:
            raise ValueError("a shard pool needs at least one shard")
        if recover and (store_config is None or not store_config.durable):
            raise ValueError("recover=True needs a durable store_config")
        self.shard_count = shard_count
        self.naive = naive
        self.store_config = store_config
        self.worker_restarts = 0
        self._recovered = 0
        self._context = _pool_context()
        self._batch_seqs = [0] * shard_count
        self._inboxes: List[multiprocessing.Queue] = []
        self._outboxes: List[multiprocessing.Queue] = []
        self._workers: List[multiprocessing.process.BaseProcess] = []
        for shard in range(shard_count):
            inbox, outbox, worker = self._spawn(shard, recover=recover)
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)
            self._workers.append(worker)
        if recover:
            # The recovery handshake: each worker reports its fleet size
            # before serving, so the front end can report what came back.
            self._recovered = sum(self._handshake(shard) for shard in range(shard_count))

    @property
    def durable(self) -> bool:
        """Whether shard state survives a worker process death."""
        return self.store_config is not None and self.store_config.durable

    def recovered_worlds(self) -> int:
        """Worlds restored from storage across all shards (startup + restarts)."""
        return self._recovered

    def _spawn(self, shard: int, *, recover: bool):
        """Fresh queues + process for ``shard`` (initial start and restarts
        alike — a worker killed mid-``put`` can leave a queue's pipe with a
        partial pickle, so restarted workers never reuse the old pair)."""
        inbox = self._context.Queue()
        outbox = self._context.Queue()
        worker = self._context.Process(
            target=_worker_loop,
            args=(shard, self.naive, self.store_config, recover, inbox, outbox),
            daemon=True,
        )
        worker.start()
        return inbox, outbox, worker

    def _await_response(self, shard: int) -> Optional[Any]:
        """The shard's next outbox message, or ``None`` once its worker is dead.

        Polls with a timeout instead of blocking forever (the old behaviour
        hung the dispatcher — and with it every request hashed to the shard —
        when a worker died mid-batch).  One final poll after observing death
        catches a response the worker managed to flush before dying.
        """
        outbox = self._outboxes[shard]
        worker = self._workers[shard]
        while True:
            alive = worker.is_alive()
            try:
                return outbox.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                if not alive:
                    return None

    def _handshake(self, shard: int) -> int:
        """A recovering worker's startup report (polled, never a hang).

        Syncs the dispatcher's batch numbering to the store's committed
        sequence — never backwards: a mid-flight restart has already
        assigned the in-flight batch a number past the committed one, and
        re-dispatch must reuse it.  Returns the recovered-world count.
        """
        report = self._await_response(shard)
        if report is None:
            raise WorkerDiedError(f"shard {shard} worker died while recovering its fleet")
        count, batch_seq = report
        self._batch_seqs[shard] = max(self._batch_seqs[shard], batch_seq)
        return count

    def _restart(self, shard: int, *, recover: bool) -> None:
        self._workers[shard].join(timeout=5)
        inbox, outbox, worker = self._spawn(shard, recover=recover)
        self._inboxes[shard] = inbox
        self._outboxes[shard] = outbox
        self._workers[shard] = worker
        self.worker_restarts += 1
        if recover:
            self._recovered += self._handshake(shard)

    def execute(self, shard: int, batch: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Ship one batch to ``shard``'s worker and block for its responses.

        Supervision lives here: a worker that dies mid-batch is restarted
        and — when the shard's store is durable — made whole from its log,
        after which the batch is re-dispatched under its original sequence
        number (committed ⇒ answered from the store; uncommitted ⇒ re-run
        from the pre-batch state).  Without durability the caller gets one
        error response per request instead of a hang.
        """
        self._batch_seqs[shard] += 1
        seq = self._batch_seqs[shard]
        self._inboxes[shard].put((seq, batch))
        responses = self._await_response(shard)
        if responses is not None:
            return responses
        if self.durable:
            self._restart(shard, recover=True)
            self._inboxes[shard].put((seq, batch))
            responses = self._await_response(shard)
            if responses is None:
                raise WorkerDiedError(
                    f"shard {shard} worker died again while recovering batch {seq}"
                )
            return responses
        # Non-durable: the shard's worlds died with the worker.  Surface
        # errors (never silence a lost batch) and restart empty so the
        # shard keeps accepting new work.
        from repro.service.protocol import error_response

        self._restart(shard, recover=False)
        return [
            error_response(
                request.get("id"),
                f"shard {shard} worker died executing this batch; "
                f"its worlds were lost (no durable store configured)",
            )
            for request in batch
        ]

    def kill_worker(self, shard: int) -> None:
        """Crash ``shard``'s worker ungracefully (fault injection).

        The death is asynchronous: the worker ``os._exit``\\ s when it pulls
        the sentinel, and the next ``execute`` for the shard finds it dead
        and takes the normal supervision path (durable restart + re-dispatch
        or per-request error responses).
        """
        try:
            self._inboxes[shard].put(_DIE)
        except (ValueError, OSError):  # pragma: no cover - teardown races
            pass

    def grow(self, new_count: int, *, recover: bool = False) -> None:
        """Spawn workers for shards ``shard_count..new_count-1``."""
        if new_count < self.shard_count:
            raise ValueError("grow() cannot shrink the pool")
        if recover and not self.durable:
            raise ValueError("recover=True needs a durable store_config")
        new_shards = range(self.shard_count, new_count)
        for shard in new_shards:
            inbox, outbox, worker = self._spawn(shard, recover=recover)
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)
            self._workers.append(worker)
            self._batch_seqs.append(0)
        self.shard_count = new_count
        if recover:
            for shard in new_shards:
                self._recovered += self._handshake(shard)

    def shrink(self, new_count: int) -> None:
        """Stop workers ``new_count..`` (their worlds must already be gone)."""
        if not 1 <= new_count <= self.shard_count:
            raise ValueError("shrink() needs 1 <= new_count <= shard_count")
        stopping = list(zip(self._inboxes[new_count:], self._workers[new_count:]))
        for inbox, worker in stopping:
            if worker.is_alive():
                inbox.put(_STOP)
        for _, worker in stopping:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5)
        del self._inboxes[new_count:]
        del self._outboxes[new_count:]
        del self._workers[new_count:]
        del self._batch_seqs[new_count:]
        self.shard_count = new_count

    def close(self) -> None:
        """Stop every worker and reap the processes."""
        for inbox, worker in zip(self._inboxes, self._workers):
            if worker.is_alive():
                inbox.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5)
