"""The fleet server's JSON wire protocol.

One request or response per line, encoded as a canonical JSON object
(sorted keys, no whitespace) terminated by ``\\n``.  Requests are plain
dictionaries — no typed envelope classes — because the same payload has to
cross three very different boundaries unchanged: a TCP socket (the asyncio
front end), a ``multiprocessing`` queue (the shard workers), and a plain
function call (the serial replay used by the determinism battery).

A request looks like::

    {"id": 7, "op": "query_stats", "world": "w3", "params": {}}

and its response like::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": "unknown world 'w3'"}

``op`` names the operation; ``world`` addresses one hosted world (the
consistent-hash routing key) and is required for every op in
:data:`WORLD_OPS`.  The front-end ops in :data:`FRONTEND_OPS` (``ping``,
``list_worlds``, ``server_stats``, ``shutdown``) carry no world and never
reach a shard.

Requests are validated *before* routing so a malformed message is answered
with a friendly error instead of crashing a worker.

Since protocol version 2 the stream is no longer purely request/response:
a connection that has issued :data:`SUBSCRIBE` also receives
**server-initiated push frames** — envelopes carrying a ``push`` key and
no ``id``::

    {"push": "frame", "world": "w3", "seq": 12, "kind": "diff", "data": {...}}

Clients that never subscribe can ignore them (the id-matched read loop in
:class:`~repro.service.client.ServiceClient` discards any envelope whose
``id`` does not answer the in-flight request).  Requests may carry an
optional ``protocol_version`` field; the server answers versions it does
not speak with a structured :data:`UNSUPPORTED_VERSION` error instead of
misinterpreting the envelope.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

# ---------------------------------------------------------------------- #
# Operations
# ---------------------------------------------------------------------- #
#: Create a world from a scenario spec (params: scenario, seed, nodes,
#: mover_fraction).
CREATE_WORLD = "create_world"
#: Advance the world's mobility model (params: steps) — a write.
ADVANCE = "advance"
#: Apply an explicit churn/mobility delta (params: moves/joins/crashes/
#: recovers) — a write.
APPLY = "apply"
#: Topology statistics over the current controlled topology — a read.
QUERY_STATS = "query_stats"
#: Canonical shortest route between two nodes — a read.
QUERY_ROUTE = "query_route"
#: Run a packet-level traffic burst over the current topology — a read
#: (deterministic in the request's seed; finite batteries make it a write).
RUN_TRAFFIC = "run_traffic"
#: The canonical byte-comparable serialization of the world — a read.
SNAPSHOT = "snapshot"
#: Per-world snapshot-cache and route-cache counters (never cached itself).
CACHE_STATS = "cache_stats"
#: Drop a world from its shard — a write.
DELETE_WORLD = "delete_world"
#: One shard's metrics-registry snapshot (an internal op: the front end
#: fans it to every shard when serving :data:`METRICS`; the ``world`` field
#: only satisfies the envelope and plays no routing role).
SHARD_METRICS = "shard_metrics"
#: Drain one world off its shard for migration: the shard serializes the
#: world, removes it from its host and store, and returns the pickled
#: state (an internal op — never accepted from a TCP connection).
MIGRATE_OUT = "migrate_out"
#: Adopt a previously drained world on its new owning shard (internal).
MIGRATE_IN = "migrate_in"
#: Register the issuing connection for diff pushes from one world (params:
#: since — optional resume cursor).  The front end intercepts this op: it
#: turns on shard-side diff tracking via :data:`SUB_TRACK`, registers the
#: connection in its subscription registry, and answers with the base state
#: (a full snapshot, or the ring diffs after ``since``).
SUBSCRIBE = "subscribe"
#: Remove the issuing connection's subscription for one world (front-end
#: only: shard-side tracking stays on for the world's remaining lifetime).
UNSUBSCRIBE = "unsubscribe"
#: Turn on diff tracking for a world and return its base state (internal:
#: what the front end sends a shard on behalf of :data:`SUBSCRIBE`; also
#: the form logged in the WAL, because tracking changes the world's
#: synchronize schedule and must replay at the same log position).
SUB_TRACK = "sub_track"
#: Drain push frames for tracked worlds past per-world cursors (internal;
#: addressed to a shard with a synthetic ``world`` like shard_metrics).
SUBS_COLLECT = "subs_collect"

#: Front-end liveness probe.
PING = "ping"
#: Worlds the front end has seen created, with their shard assignment.
LIST_WORLDS = "list_worlds"
#: Request/batch counters of the front end.  Deprecated in favour of
#: :data:`METRICS`, which carries every counter this op carries and more;
#: kept for wire compatibility.
SERVER_STATS = "server_stats"
#: Merged fleet metrics: per-shard registry snapshots plus the front end's
#: own, with canonical histogram percentiles.
METRICS = "metrics"
#: Orderly server shutdown (responds, then stops accepting).
SHUTDOWN = "shutdown"
#: Live ring resize (params: shards) — migrates moved worlds between
#: shards without downtime, parking their requests meanwhile.
RESIZE = "resize"

#: Ops executed by the shard that owns ``request["world"]``.
WORLD_OPS = frozenset(
    {
        CREATE_WORLD,
        ADVANCE,
        APPLY,
        QUERY_STATS,
        QUERY_ROUTE,
        RUN_TRAFFIC,
        SNAPSHOT,
        CACHE_STATS,
        DELETE_WORLD,
        SHARD_METRICS,
        MIGRATE_OUT,
        MIGRATE_IN,
        SUBSCRIBE,
        UNSUBSCRIBE,
        SUB_TRACK,
        SUBS_COLLECT,
    }
)

#: Ops answered by the asyncio front end without touching any shard.
FRONTEND_OPS = frozenset({PING, LIST_WORLDS, SERVER_STATS, METRICS, SHUTDOWN, RESIZE})

#: World ops that only read state (their responses are snapshot-cacheable).
READ_OPS = frozenset({QUERY_STATS, QUERY_ROUTE, RUN_TRAFFIC, SNAPSHOT})

#: Ops the front end issues to its own shards but refuses from the wire:
#: migration carries pickled state, which must never be accepted from a
#: client connection, and the subscription plumbing ops bypass the
#: front end's registry bookkeeping (clients speak SUBSCRIBE/UNSUBSCRIBE).
INTERNAL_OPS = frozenset({MIGRATE_OUT, MIGRATE_IN, SUB_TRACK, SUBS_COLLECT})

#: Ops whose application can change a tracked world's snapshot (or end its
#: life) and therefore oblige the front end to collect push frames after
#: the batch that carried them.
PUSH_TRIGGER_OPS = frozenset({ADVANCE, APPLY, DELETE_WORLD, MIGRATE_IN})


# ---------------------------------------------------------------------- #
# Protocol versioning
# ---------------------------------------------------------------------- #
#: The version this build speaks.  Version 1 was the pure request/response
#: protocol (PR 5–9); version 2 added subscriptions and server-initiated
#: push frames.  The envelope field is optional — an absent
#: ``protocol_version`` means "whatever the server speaks", preserving
#: every pre-versioning client.
PROTOCOL_VERSION = 2

#: Versions this build is willing to serve.  Version 1 clients never send
#: ``subscribe`` so the push extension is invisible to them.
SUPPORTED_PROTOCOL_VERSIONS = frozenset({1, 2})

#: Per-line buffer limit both sides pass to asyncio's stream factories.
#: A full snapshot of a large world (a subscribe response, a resync frame)
#: easily exceeds asyncio's 64 KiB default ``readline`` limit, which
#: surfaces as a spurious ``LimitOverrunError`` mid-protocol.
STREAM_LIMIT = 16 * 1024 * 1024


# ---------------------------------------------------------------------- #
# Push frames (server-initiated, protocol version 2)
# ---------------------------------------------------------------------- #
#: ``kind`` of a frame carrying a structural diff against the previous
#: sequence point (``data`` is :func:`repro.service.subs.diff.compute_diff`
#: output; ``seq`` the sequence point it produces).
FRAME_DIFF = "diff"
#: ``kind`` of a frame carrying a full snapshot (subscription base state,
#: or a resync after the client's cursor aged out of the diff ring; also
#: what coalescing degrades to when merged diffs would be larger).
FRAME_SNAPSHOT = "snapshot"
#: ``kind`` of the terminal frame pushed when a subscribed world is
#: deleted.  No frames for the world follow it.
FRAME_DELETED = "deleted"


def push_frame(
    world: str,
    seq: int,
    kind: str,
    data: Any = None,
    *,
    base: Optional[int] = None,
) -> Dict[str, Any]:
    """A server-initiated push frame (no ``id`` — never answers a request).

    ``base`` rides :data:`FRAME_DIFF` frames: the sequence point the diff
    applies on top of (``seq - 1`` for a raw commit; further back for a
    coalesced frame covering several commits).  Subscribers use it to
    detect gaps instead of corrupting their mirror.
    """
    frame: Dict[str, Any] = {"push": "frame", "world": world, "seq": seq, "kind": kind}
    if base is not None:
        frame["base"] = base
    if data is not None:
        frame["data"] = data
    return frame


def is_push_frame(message: Dict[str, Any]) -> bool:
    """Whether a decoded envelope is a server-initiated push frame."""
    return message.get("push") == "frame" and "id" not in message


# ---------------------------------------------------------------------- #
# Structured error codes
# ---------------------------------------------------------------------- #
#: The shard queue (or connection) is saturated; the response carries a
#: ``retry_after`` backoff hint in seconds.  Safe to retry.
RETRY_LATER = "RETRY_LATER"
#: The server is draining: queued requests are failed instead of silently
#: dropped.  Safe to retry against a restarted server.
SHUTTING_DOWN = "SHUTTING_DOWN"
#: A shard worker died mid-batch and the request's effect is unknown; the
#: retry layer may re-issue it under the same idempotency token.
WORKER_DIED = "WORKER_DIED"
#: The request's ``protocol_version`` is not one this server speaks.  Not
#: retryable against the same server; the error message names the
#: supported versions.
UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
#: Terminal code riding the error a subscriber sees when it touches a
#: world that has been deleted out from under it.
WORLD_DELETED = "WORLD_DELETED"


# ---------------------------------------------------------------------- #
# Encoding
# ---------------------------------------------------------------------- #
def encode_message(message: Dict[str, Any]) -> bytes:
    """Canonical single-line JSON encoding (sorted keys, compact, ``\\n``)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("protocol messages must be JSON objects")
    return payload


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    """A success response carrying ``result``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any,
    message: str,
    *,
    code: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A failure response carrying a human-readable error.

    ``code`` is a machine-readable classifier (:data:`RETRY_LATER`,
    :data:`SHUTTING_DOWN`, :data:`WORKER_DIED`); ``retry_after`` is the
    backoff hint in seconds that rides :data:`RETRY_LATER` responses.
    """
    response: Dict[str, Any] = {"id": request_id, "ok": False, "error": message}
    if code is not None:
        response["code"] = code
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response


def envelope_problem(
    request: Dict[str, Any],
) -> Optional[Tuple[str, Optional[str]]]:
    """Why ``request`` is malformed as ``(message, code)``, or ``None``.

    Validation stops at the envelope (op known, world present where
    required, params a dict, protocol version speakable) — per-op parameter
    checking happens in the world host, where a bad parameter still yields
    an error *response* rather than an exception.  ``code`` is the
    structured error code to attach (currently only
    :data:`UNSUPPORTED_VERSION`); ``None`` for plain malformed envelopes.
    """
    version = request.get("protocol_version")
    if version is not None:
        if not isinstance(version, int) or isinstance(version, bool):
            return ("'protocol_version' must be an integer", UNSUPPORTED_VERSION)
        if version not in SUPPORTED_PROTOCOL_VERSIONS:
            supported = ", ".join(str(v) for v in sorted(SUPPORTED_PROTOCOL_VERSIONS))
            return (
                f"protocol version {version} is not supported"
                f" (this server speaks: {supported})",
                UNSUPPORTED_VERSION,
            )
    op = request.get("op")
    if not isinstance(op, str):
        return ("request is missing its 'op'", None)
    if op not in WORLD_OPS and op not in FRONTEND_OPS:
        return (f"unknown op {op!r}", None)
    if op in WORLD_OPS:
        world = request.get("world")
        if not isinstance(world, str) or not world:
            return (f"op {op!r} requires a non-empty 'world'", None)
    params = request.get("params", {})
    if not isinstance(params, dict):
        return ("'params' must be an object", None)
    token = request.get("token")
    if token is not None and (not isinstance(token, str) or not token):
        return ("'token' must be a non-empty string", None)
    return None


def validate_request(request: Dict[str, Any]) -> Optional[str]:
    """Why ``request`` is malformed, or ``None`` when it is well-formed.

    Compatibility wrapper around :func:`envelope_problem` for callers that
    only want the message; new code should prefer the full form, which
    also carries the structured error code.
    """
    problem = envelope_problem(request)
    return None if problem is None else problem[0]
