"""The fleet server's JSON wire protocol.

One request or response per line, encoded as a canonical JSON object
(sorted keys, no whitespace) terminated by ``\\n``.  Requests are plain
dictionaries — no typed envelope classes — because the same payload has to
cross three very different boundaries unchanged: a TCP socket (the asyncio
front end), a ``multiprocessing`` queue (the shard workers), and a plain
function call (the serial replay used by the determinism battery).

A request looks like::

    {"id": 7, "op": "query_stats", "world": "w3", "params": {}}

and its response like::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": "unknown world 'w3'"}

``op`` names the operation; ``world`` addresses one hosted world (the
consistent-hash routing key) and is required for every op in
:data:`WORLD_OPS`.  The front-end ops in :data:`FRONTEND_OPS` (``ping``,
``list_worlds``, ``server_stats``, ``shutdown``) carry no world and never
reach a shard.

Requests are validated *before* routing so a malformed message is answered
with a friendly error instead of crashing a worker.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

# ---------------------------------------------------------------------- #
# Operations
# ---------------------------------------------------------------------- #
#: Create a world from a scenario spec (params: scenario, seed, nodes,
#: mover_fraction).
CREATE_WORLD = "create_world"
#: Advance the world's mobility model (params: steps) — a write.
ADVANCE = "advance"
#: Apply an explicit churn/mobility delta (params: moves/joins/crashes/
#: recovers) — a write.
APPLY = "apply"
#: Topology statistics over the current controlled topology — a read.
QUERY_STATS = "query_stats"
#: Canonical shortest route between two nodes — a read.
QUERY_ROUTE = "query_route"
#: Run a packet-level traffic burst over the current topology — a read
#: (deterministic in the request's seed; finite batteries make it a write).
RUN_TRAFFIC = "run_traffic"
#: The canonical byte-comparable serialization of the world — a read.
SNAPSHOT = "snapshot"
#: Per-world snapshot-cache and route-cache counters (never cached itself).
CACHE_STATS = "cache_stats"
#: Drop a world from its shard — a write.
DELETE_WORLD = "delete_world"
#: One shard's metrics-registry snapshot (an internal op: the front end
#: fans it to every shard when serving :data:`METRICS`; the ``world`` field
#: only satisfies the envelope and plays no routing role).
SHARD_METRICS = "shard_metrics"
#: Drain one world off its shard for migration: the shard serializes the
#: world, removes it from its host and store, and returns the pickled
#: state (an internal op — never accepted from a TCP connection).
MIGRATE_OUT = "migrate_out"
#: Adopt a previously drained world on its new owning shard (internal).
MIGRATE_IN = "migrate_in"

#: Front-end liveness probe.
PING = "ping"
#: Worlds the front end has seen created, with their shard assignment.
LIST_WORLDS = "list_worlds"
#: Request/batch counters of the front end.  Deprecated in favour of
#: :data:`METRICS`, which carries every counter this op carries and more;
#: kept for wire compatibility.
SERVER_STATS = "server_stats"
#: Merged fleet metrics: per-shard registry snapshots plus the front end's
#: own, with canonical histogram percentiles.
METRICS = "metrics"
#: Orderly server shutdown (responds, then stops accepting).
SHUTDOWN = "shutdown"
#: Live ring resize (params: shards) — migrates moved worlds between
#: shards without downtime, parking their requests meanwhile.
RESIZE = "resize"

#: Ops executed by the shard that owns ``request["world"]``.
WORLD_OPS = frozenset(
    {
        CREATE_WORLD,
        ADVANCE,
        APPLY,
        QUERY_STATS,
        QUERY_ROUTE,
        RUN_TRAFFIC,
        SNAPSHOT,
        CACHE_STATS,
        DELETE_WORLD,
        SHARD_METRICS,
        MIGRATE_OUT,
        MIGRATE_IN,
    }
)

#: Ops answered by the asyncio front end without touching any shard.
FRONTEND_OPS = frozenset({PING, LIST_WORLDS, SERVER_STATS, METRICS, SHUTDOWN, RESIZE})

#: World ops that only read state (their responses are snapshot-cacheable).
READ_OPS = frozenset({QUERY_STATS, QUERY_ROUTE, RUN_TRAFFIC, SNAPSHOT})

#: Ops the front end issues to its own shards but refuses from the wire:
#: migration carries pickled state, which must never be accepted from a
#: client connection.
INTERNAL_OPS = frozenset({MIGRATE_OUT, MIGRATE_IN})


# ---------------------------------------------------------------------- #
# Structured error codes
# ---------------------------------------------------------------------- #
#: The shard queue (or connection) is saturated; the response carries a
#: ``retry_after`` backoff hint in seconds.  Safe to retry.
RETRY_LATER = "RETRY_LATER"
#: The server is draining: queued requests are failed instead of silently
#: dropped.  Safe to retry against a restarted server.
SHUTTING_DOWN = "SHUTTING_DOWN"
#: A shard worker died mid-batch and the request's effect is unknown; the
#: retry layer may re-issue it under the same idempotency token.
WORKER_DIED = "WORKER_DIED"


# ---------------------------------------------------------------------- #
# Encoding
# ---------------------------------------------------------------------- #
def encode_message(message: Dict[str, Any]) -> bytes:
    """Canonical single-line JSON encoding (sorted keys, compact, ``\\n``)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("protocol messages must be JSON objects")
    return payload


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    """A success response carrying ``result``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any,
    message: str,
    *,
    code: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A failure response carrying a human-readable error.

    ``code`` is a machine-readable classifier (:data:`RETRY_LATER`,
    :data:`SHUTTING_DOWN`, :data:`WORKER_DIED`); ``retry_after`` is the
    backoff hint in seconds that rides :data:`RETRY_LATER` responses.
    """
    response: Dict[str, Any] = {"id": request_id, "ok": False, "error": message}
    if code is not None:
        response["code"] = code
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response


def validate_request(request: Dict[str, Any]) -> Optional[str]:
    """Why ``request`` is malformed, or ``None`` when it is well-formed.

    Validation stops at the envelope (op known, world present where
    required, params a dict) — per-op parameter checking happens in the
    world host, where a bad parameter still yields an error *response*
    rather than an exception.
    """
    op = request.get("op")
    if not isinstance(op, str):
        return "request is missing its 'op'"
    if op not in WORLD_OPS and op not in FRONTEND_OPS:
        return f"unknown op {op!r}"
    if op in WORLD_OPS:
        world = request.get("world")
        if not isinstance(world, str) or not world:
            return f"op {op!r} requires a non-empty 'world'"
    params = request.get("params", {})
    if not isinstance(params, dict):
        return "'params' must be an object"
    token = request.get("token")
    if token is not None and (not isinstance(token, str) or not token):
        return "'token' must be a non-empty string"
    return None
