"""The asyncio front end: topology-as-a-service.

:class:`FleetServer` accepts newline-delimited JSON requests over TCP,
answers front-end ops (``ping``, ``list_worlds``, ``server_stats``,
``metrics``, ``resize``, ``shutdown``) directly, and routes every
world-addressed op to the shard owning that world (consistent hashing,
:class:`~repro.service.sharding.HashRing`).

**Batching.**  Each shard has one dispatcher task and at most one batch in
flight.  Requests arriving while a batch executes accumulate in the shard's
pending queue and are dispatched together as the next batch — coalescing
emerges from load instead of from a timer, so an idle server adds no
latency and a busy one amortizes the per-dispatch cost over many requests.
Arrival order within a shard is preserved end to end (queue → batch →
in-order execution → per-request futures), which keeps per-world request
order — the determinism contract — intact no matter how batches fall.

**Pipelining.**  A connection's requests are validated and routed to their
shard queues *synchronously* in the read loop (so per-connection arrival
order still reaches the shards intact), while the responses are written
back by per-request tasks as their futures resolve.  A client that issues
one request at a time sees exactly the old strict request–response
behaviour; a pipelining client gets concurrency from a single connection,
bounded by the per-connection in-flight cap (``max_inflight``) — beyond it
the server simply stops reading, which is TCP backpressure.

**Subscriptions.**  A ``subscribe`` request registers the connection for
server-initiated push frames carrying each epoch commit of a world as a
canonical structural diff (see :mod:`repro.service.subs`).  Shards keep
the frames in per-world bounded rings; the front end *collects* fresh
frames right after any batch that committed a push-trigger op for a
subscribed world (the collect rides the same shard queue, so it is
ordered behind the writes that produced the frames) and fans them out
through per-subscriber bounded queues — a slow subscriber's backlog is
coalesced into one merged diff, never an unbounded queue.  Deleting a
subscribed world pushes a terminal ``deleted`` frame; a resize re-collects
every subscribed world from its new owner, so sequence numbers never gap
or duplicate across migrations.

**Admission control.**  Each shard's pending queue is bounded
(``max_pending``, the high watermark).  A request arriving at a saturated
queue is answered immediately with a structured ``RETRY_LATER`` error
carrying a backoff hint instead of growing the queue without bound;
shedding stays on until the queue drains below the low watermark (half the
bound).  Shed counts land in the metrics registry.

**Fault injection.**  An installed :class:`~repro.service.faults.FaultPlan`
is evaluated at three hook points — connection accept (refusal), response
write (drop / delay / duplicate), and batch dispatch (shard freeze, worker
kill) — all decided in this process so one-shot rules stay consumed across
worker restarts.  Freezes are ``asyncio.sleep``\\ s in the dispatcher,
never blocking sleeps (inline pools share this event loop).

**Shards.**  The default backend is a :class:`~repro.service.workers.
ProcessShardPool` (one long-lived worker process per shard, each owning its
worlds' reconfiguration and incremental-builder state); ``inline=True``
executes shards in-process — same semantics, no IPC — which is what the
benchmarks use to isolate the serving-layer gains and what tests use for
speed.  ``naive=True`` selects the one-request-one-rebuild baseline in
either backend.

**Live resize.**  The ``resize`` op changes the shard count without
downtime: requests for worlds that move between rings are parked, each
moving world is drained off its old shard (``migrate_out`` rides the
normal batch path, so the shard's queued work for that world completes
first), restored on its new owner (``migrate_in``), and the ring is then
swapped atomically before the parked requests replay in arrival order.
On a durable fleet the migration itself is durable: the outbound shard
purges the world's log in the same commit, and the inbound shard logs the
adopted state.  Startup heals placement the same way — a state directory
written under a different ``--shards`` (including shard files beyond the
new fleet) has its worlds migrated to their ring-correct shards before the
server reports ready.

**Durability.**  ``state_dir`` attaches a sqlite
:class:`~repro.service.storage.sqlite.SqliteStore` per shard (one database
file each): every applied write lands in a write-ahead log before its
response leaves the worker, the pool restarts-and-recovers workers that
die mid-batch, and on server start the fleet recovers from whatever the
directory already holds — the placement map is rebuilt by scanning the
shard databases (synchronously, in ``__init__``, before the loop runs).
``max_live_worlds`` bounds resident worlds per shard via LRU eviction to
the store.

**Shutdown.**  ``stop()`` drains instead of stranding: queued-but-
undispatched requests (and any requests parked by a resize) are failed
with a structured ``SHUTTING_DOWN`` error, dispatchers finish their
in-flight batches, and the response writers flush before connections
close — a client never waits forever on a response the server will not
send.
"""

from __future__ import annotations

import asyncio
import functools
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.obs import clock
from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    summarize_snapshot,
)
from repro.service import protocol
from repro.service.faults import FaultInjector, FaultPlan
from repro.service.sharding import HashRing
from repro.service.storage import StoreConfig, scan_world_ids
from repro.service.subs.manager import SubscriptionManager
from repro.service.workers import InlineShardPool, ProcessShardPool
from repro.service.worlds import DEFAULT_SNAPSHOT_EVERY

#: Default per-shard pending-queue bound (the high watermark).  Deep
#: enough that a healthy fleet never sheds, shallow enough that a frozen
#: shard turns into fast ``RETRY_LATER`` errors instead of an unbounded
#: queue.
DEFAULT_MAX_PENDING = 1024

#: Default per-connection in-flight request cap for pipelining clients.
DEFAULT_MAX_INFLIGHT = 64


class FleetServer:
    """Hosts many live worlds behind a batched, sharded request front end."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        inline: bool = False,
        naive: bool = False,
        state_dir: Optional[str] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        max_live_worlds: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.host = host
        self.port = port
        self.shards = shards
        self.inline = inline
        self.naive = naive
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.store_config: Optional[StoreConfig] = None
        if state_dir is not None:
            self.store_config = StoreConfig(
                kind="sqlite",
                path=state_dir,
                snapshot_every=snapshot_every,
                max_live_worlds=max_live_worlds,
            )
        elif max_live_worlds is not None:
            raise ValueError("--max-live-worlds needs --state-dir to evict into")
        self.ring = HashRing(shards)
        self.requests_received = 0
        self.batches_dispatched = 0
        self.max_batch_size = 0
        self.shard_requests = [0] * shards
        # Front-end registry: dispatch-side latency histograms plus the
        # counters that ``server_stats`` used to be the only home of.
        self.metrics = MetricsRegistry()
        # Subscription registry: which connections watch which worlds, and
        # the machinery that pushes diff frames to them.
        self._subs = SubscriptionManager(self.metrics)
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults) if faults is not None else None
        )
        self._started_wall = clock.wall()
        self._pool: Optional[Any] = None
        self._server: Optional[asyncio.AbstractServer] = None
        # Each pending entry is (request, response future, enqueue wall time);
        # the timestamp feeds the queue-wait histogram at dispatch.
        self._pending: List[Deque[Tuple[Dict[str, Any], asyncio.Future, float]]] = [
            deque() for _ in range(shards)
        ]
        self._wakeups: List[asyncio.Event] = []
        self._dispatchers: List[asyncio.Task] = []
        self._shedding: List[bool] = [False] * shards
        self._busy: List[bool] = [False] * shards
        self._handlers: set = set()
        self._connections: set = set()
        self._response_tasks: Set[asyncio.Task] = set()
        # Recent per-request execute time (EWMA) — the RETRY_LATER hint's
        # basis: "queue depth × how long a request has been taking".
        self._avg_request_seconds = 0.01
        # Live resize state: while a resize runs, requests whose routing
        # would change are parked here (in arrival order) and replayed
        # after the ring swap.  ``None`` means no resize in progress.
        self._parked: Optional[List[Tuple[Dict[str, Any], asyncio.Future]]] = None
        self._park_moving: Optional[Set[str]] = None
        self._next_ring: Optional[HashRing] = None
        self._resizing = False
        # Outstanding create futures — a resize drains these before it
        # computes the set of moving worlds, so no create can land on a
        # shard the swap is about to reroute.
        self._create_futures: Set[asyncio.Future] = set()
        # Placement survives restarts with the worlds themselves: scan the
        # state directory here, in the synchronous constructor, so the event
        # loop never blocks on sqlite I/O.  The scan reports where each
        # world's state *is* (its shard file), which start() reconciles
        # against the ring.
        self._worlds: Dict[str, int] = (
            scan_world_ids(state_dir, shards) if state_dir is not None else {}
        )
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener, start the shard pool and the dispatchers."""
        self._stopping = asyncio.Event()
        self._wakeups = [asyncio.Event() for _ in range(self.shards)]
        # Bind before spawning the pool: a failed bind (port in use) must
        # not leave orphaned worker processes behind.
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=protocol.STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        pool_class = InlineShardPool if self.inline else ProcessShardPool
        self._pool = pool_class(
            self.shards,
            naive=self.naive,
            store_config=self.store_config,
            # Recovering an empty state directory is a no-op, so a durable
            # server always starts through the recovery path — first boot
            # and restart are the same code.
            recover=self.store_config is not None and self.store_config.durable,
        )
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard)) for shard in range(self.shards)
        ]
        if self.store_config is not None and self.store_config.durable:
            await self._heal_placement()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives, then stop cleanly."""
        assert self._stopping is not None, "start() must run first"
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, stop the shard pool.

        Queued-but-undispatched requests (and requests parked by a resize)
        are failed with a structured ``SHUTTING_DOWN`` error; in-flight
        batches finish and their responses flush before connections close.
        """
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        shed = self.metrics.counter("server.shutdown_failed_requests")
        for pending in self._pending:
            while pending:
                request, future, _ = pending.popleft()
                if not future.done():
                    future.set_result(self._shutting_down_error(request.get("id")))
                shed.inc()
        if self._parked:
            for request, future in self._parked:
                if not future.done():
                    future.set_result(self._shutting_down_error(request.get("id")))
                shed.inc()
            self._parked = []
        # Wake every dispatcher so it observes the stop and exits after
        # finishing whatever batch is in flight.
        for wakeup in self._wakeups:
            wakeup.set()
        if self._dispatchers:
            done, stragglers = await asyncio.wait(self._dispatchers, timeout=30)
            for task in stragglers:  # pragma: no cover - defensive
                task.cancel()
            if stragglers:  # pragma: no cover - defensive
                await asyncio.gather(*stragglers, return_exceptions=True)
        self._dispatchers = []
        # Every routed future is resolved now; let the writers flush.
        if self._response_tasks:
            await asyncio.gather(*list(self._response_tasks), return_exceptions=True)
        await self._subs.shutdown()
        # Unblock handlers parked in readline: closing the transports makes
        # their reads return EOF, so the gather below terminates.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @staticmethod
    def _shutting_down_error(request_id: Any) -> Dict[str, Any]:
        return protocol.error_response(
            request_id, "server is shutting down", code=protocol.SHUTTING_DOWN
        )

    # ------------------------------------------------------------------ #
    # Startup placement healing
    # ------------------------------------------------------------------ #
    async def _heal_placement(self) -> None:
        """Migrate worlds whose stored shard is not their ring shard.

        Runs once at startup: a state directory written under a different
        shard count (or interrupted mid-resize) has worlds in the wrong
        files, including files *beyond* the current fleet.  In-fleet
        strays migrate through their own worker; out-of-fleet files are
        opened parent-side just long enough to drain them.
        """
        misplaced = sorted(
            (world, shard)
            for world, shard in self._worlds.items()
            if shard != self.ring.shard_of(world)
        )
        if not misplaced:
            return
        healed = self.metrics.counter("server.placement_healed")
        for world, file_shard in misplaced:
            if file_shard < self.shards:
                out = await self._submit_to_shard(
                    file_shard, {"id": None, "op": protocol.MIGRATE_OUT, "world": world}
                )
                state = out["result"]["state"] if out.get("ok") else None
            else:
                state = self._export_stray(file_shard, world)
            if state is None:
                continue
            target = self.ring.shard_of(world)
            response = await self._submit_to_shard(
                target,
                {
                    "id": None,
                    "op": protocol.MIGRATE_IN,
                    "world": world,
                    "params": {"state": state},
                },
            )
            if response.get("ok"):
                self._worlds[world] = target
                healed.inc()

    def _export_stray(self, file_shard: int, world: str) -> Optional[str]:
        """Drain one world out of a shard file beyond the fleet (no worker
        owns it, so a throwaway parent-side host does the export)."""
        from repro.service.workers import _build_host

        host = _build_host(file_shard, self.naive, self.store_config)
        try:
            host.recover(eager=False)
            response = host.execute(
                {"id": None, "op": protocol.MIGRATE_OUT, "world": world}
            )
        finally:
            host.close(flush=False)
            if host.store is not None:
                host.store.close()
        if not response.get("ok"):
            return None
        return response["result"]["state"]

    # ------------------------------------------------------------------ #
    # Dispatch (one batch in flight per shard)
    # ------------------------------------------------------------------ #
    async def _dispatch(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        pending = self._pending[shard]
        wakeup = self._wakeups[shard]
        while True:
            await wakeup.wait()
            wakeup.clear()
            while pending:
                batch = list(pending)
                pending.clear()
                requests = [request for request, _, _ in batch]
                futures = [future for _, future, _ in batch]
                self.batches_dispatched += 1
                self.max_batch_size = max(self.max_batch_size, len(requests))
                self.shard_requests[shard] += len(requests)
                now = clock.wall()
                queue_wait = self.metrics.histogram("server.queue_wait_seconds")
                for _, _, enqueued in batch:
                    queue_wait.observe(now - enqueued)
                self.metrics.histogram("server.batch_size", COUNT_BUCKETS).observe(
                    len(requests)
                )
                self.metrics.counter("server.requests").inc(len(requests))
                self.metrics.counter(f"server.shard.{shard}.requests").inc(len(requests))
                if self._injector is not None:
                    kill = False
                    freeze = 0.0
                    for _ in requests:
                        killed, frozen = self._injector.on_shard_request(shard)
                        kill = kill or killed
                        freeze += frozen
                    if freeze > 0.0:
                        self.metrics.counter("server.faults.shard_freezes").inc()
                        await asyncio.sleep(freeze)
                    if kill:
                        self.metrics.counter("server.faults.workers_killed").inc()
                        self._pool.kill_worker(shard)
                # Process-backed pools block on a queue round trip, so they
                # run in the default executor and the event loop keeps
                # reading other connections — that concurrency is what lets
                # the next batch coalesce while this one executes.  Inline
                # pools compute under the GIL regardless; calling them
                # directly skips a thread hop per batch, and arriving
                # requests coalesce in the transport buffers instead.
                self._busy[shard] = True
                try:
                    if self._pool.runs_in_loop:
                        responses = self._pool.execute(shard, requests)
                        await asyncio.sleep(0)
                    else:
                        responses = await loop.run_in_executor(
                            None, self._pool.execute, shard, requests
                        )
                finally:
                    self._busy[shard] = False
                elapsed = clock.wall() - now
                self.metrics.histogram("server.execute_seconds").observe(elapsed)
                self._avg_request_seconds = (
                    0.8 * self._avg_request_seconds + 0.2 * elapsed / max(1, len(requests))
                )
                for future, response in zip(futures, responses):
                    if not future.done():
                        future.set_result(response)
                self._maybe_collect(shard, requests, responses)
            if self._stopping is not None and self._stopping.is_set():
                return

    def _resolved(self, response: Dict[str, Any]) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        future.set_result(response)
        return future

    def _enqueue(self, shard: int, request: Dict[str, Any]) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[shard].append((request, future, clock.wall()))
        self._wakeups[shard].set()
        return future

    def _enqueue_or_fail(self, shard: int, request: Dict[str, Any]) -> asyncio.Future:
        if self._stopping is not None and self._stopping.is_set():
            return self._resolved(self._shutting_down_error(request.get("id")))
        return self._enqueue(shard, request)

    async def _submit_to_shard(self, shard: int, request: Dict[str, Any]) -> Dict[str, Any]:
        return await self._enqueue_or_fail(shard, request)

    # ------------------------------------------------------------------ #
    # Subscriptions (front-end side; see repro.service.subs)
    # ------------------------------------------------------------------ #
    def _maybe_collect(self, shard: int, requests: List[Dict[str, Any]], responses: List[Dict[str, Any]]) -> None:
        """After a batch lands, pull fresh frames for its subscribed worlds.

        The collect request is enqueued on the same shard the batch ran on,
        so it executes *after* the writes that produced the frames and
        *before* any later write — frame delivery order follows commit
        order with no extra synchronization.
        """
        if self._subs.active_count == 0:
            return
        worlds = set()
        for request, response in zip(requests, responses):
            if request.get("op") not in protocol.PUSH_TRIGGER_OPS:
                continue
            if not response.get("ok"):
                continue
            world = request.get("world")
            if self._subs.is_subscribed(world):
                worlds.add(world)
        if not worlds:
            return
        cursors = {world: self._subs.cursor(world) for world in sorted(worlds)}
        future = self._enqueue_or_fail(
            shard,
            {
                "id": None,
                "op": protocol.SUBS_COLLECT,
                "world": f"@shard:{shard}",
                "params": {"cursors": cursors},
            },
        )
        future.add_done_callback(self._subs.on_collect_response)

    def _collect_subscribed(self) -> None:
        """Pull frames for every subscribed world under the current ring.

        A resize calls this right after the ring swap: frames committed on
        the old owner whose collect never ran ride the migrated tracker
        (it travels with the world), and this sweep fetches them from the
        new owner — no gap, and the per-subscriber dedup absorbs any
        overlap with a collect that was already in flight.
        """
        by_shard: Dict[int, Dict[str, int]] = {}
        for world in self._subs.subscribed_worlds():
            if world not in self._worlds:
                continue
            shard = self.ring.shard_of(world)
            by_shard.setdefault(shard, {})[world] = self._subs.cursor(world)
        for shard, cursors in sorted(by_shard.items()):
            future = self._enqueue_or_fail(
                shard,
                {
                    "id": None,
                    "op": protocol.SUBS_COLLECT,
                    "world": f"@shard:{shard}",
                    "params": {"cursors": cursors},
                },
            )
            future.add_done_callback(self._subs.on_collect_response)

    async def _finish_subscribe(
        self, sub: Any, inner: "asyncio.Future"
    ) -> Dict[str, Any]:
        """Await the shard's ``sub_track`` answer, then activate the handle."""
        response = await inner
        if not response.get("ok"):
            self._subs.discard(sub)
            return response
        self._subs.activate(sub, response["result"]["seq"])
        return response

    def _should_park(self, world: str) -> bool:
        """Whether a request for ``world`` must wait out the resize."""
        if self._park_moving is not None and world in self._park_moving:
            return True
        if world not in self._worlds and self._next_ring is not None:
            # Unknown world (a create racing the resize): park it exactly
            # when the two rings disagree on its placement — otherwise the
            # routing is identical under both and it can proceed.
            return self._next_ring.shard_of(world) != self.ring.shard_of(world)
        return False

    def _route(self, request: Dict[str, Any]) -> asyncio.Future:
        """Route one world-addressed request to its shard queue.

        Synchronous — the connection read loop calls it inline, which is
        what preserves per-connection (and so per-world) arrival order.
        Admission control happens here: a saturated shard answers with
        ``RETRY_LATER`` immediately instead of queueing.
        """
        request_id = request.get("id")
        if self._stopping is not None and self._stopping.is_set():
            return self._resolved(self._shutting_down_error(request_id))
        world = request["world"]
        if self._parked is not None and self._should_park(world):
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._parked.append((request, future))
            self.metrics.counter("server.resize.parked_requests").inc()
            return future
        shard = self.ring.shard_of(world)
        pending = self._pending[shard]
        if self._shedding[shard] and len(pending) <= self.max_pending // 2:
            self._shedding[shard] = False
        if not self._shedding[shard] and len(pending) >= self.max_pending:
            self._shedding[shard] = True
        if self._shedding[shard]:
            self.metrics.counter("server.load_shed").inc()
            self.metrics.counter(f"server.shard.{shard}.load_shed").inc()
            hint = min(2.0, max(0.05, (len(pending) + 1) * self._avg_request_seconds))
            return self._resolved(
                protocol.error_response(
                    request_id,
                    f"shard {shard} queue is saturated ({len(pending)} pending)",
                    code=protocol.RETRY_LATER,
                    retry_after=round(hint, 4),
                )
            )
        future = self._enqueue(shard, request)
        op = request["op"]
        # Placement is maintained here, at routing time, with the routed
        # shard captured — a resize computes its moving set from this map,
        # so a create must be visible the moment it is queued, not when its
        # response happens to be written.  The done-callback settles the
        # optimistic entry against the actual outcome.
        if op == protocol.CREATE_WORLD:
            was_absent = world not in self._worlds
            if was_absent:
                self._worlds[world] = shard
            future.add_done_callback(
                functools.partial(self._finish_create, world, shard, was_absent)
            )
        elif op == protocol.DELETE_WORLD:
            future.add_done_callback(functools.partial(self._finish_delete, world))
        return future

    @staticmethod
    def _future_response(done: asyncio.Future) -> Optional[Dict[str, Any]]:
        if done.cancelled() or done.exception() is not None:
            return None
        return done.result()

    def _finish_create(
        self, world: str, shard: int, was_absent: bool, done: asyncio.Future
    ) -> None:
        response = self._future_response(done)
        if response is not None and response.get("ok"):
            self._worlds[world] = shard
        elif was_absent and self._worlds.get(world) == shard:
            # The optimistic entry was ours and the create failed: undo it.
            # (A migration changes the mapped shard, so a resize that moved
            # the world meanwhile is never clobbered.)
            del self._worlds[world]

    def _finish_delete(self, world: str, done: asyncio.Future) -> None:
        response = self._future_response(done)
        if response is not None and response.get("ok"):
            self._worlds.pop(world, None)
            # Terminal frame is synthesized front-end side: the shard no
            # longer hosts the world, but the subscribers deserve a clean
            # end-of-stream marker rather than silence.
            self._subs.world_deleted(world)

    @staticmethod
    def _chain(inner: asyncio.Future, outer: asyncio.Future) -> None:
        """Propagate ``inner``'s response into ``outer`` (parked replay)."""

        def _copy(done: asyncio.Future) -> None:
            if outer.done():
                return
            if done.cancelled():
                outer.cancel()
            elif done.exception() is not None:  # pragma: no cover - defensive
                outer.set_exception(done.exception())
            else:
                outer.set_result(done.result())

        if inner.done():
            _copy(inner)
        else:
            inner.add_done_callback(_copy)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            if self._injector is not None and self._injector.on_connection():
                self.metrics.counter("server.faults.connections_refused").inc()
                return
            self._connections.add(writer)
            write_lock = asyncio.Lock()
            inflight: Set[asyncio.Task] = set()
            while not self._stopping.is_set():
                # Plain readline keeps the per-request hot path to one
                # awaitable; stop() unblocks it by closing the transport
                # (readline then returns EOF).
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = protocol.decode_message(line)
                except ValueError as error:
                    async with write_lock:
                        writer.write(protocol.encode_message(
                            protocol.error_response(None, f"malformed request: {error}")
                        ))
                        await writer.drain()
                    continue
                future = self._begin_request(request, writer=writer, write_lock=write_lock)
                responder = asyncio.create_task(
                    self._respond(writer, write_lock, future)
                )
                inflight.add(responder)
                self._response_tasks.add(responder)
                responder.add_done_callback(inflight.discard)
                responder.add_done_callback(self._response_tasks.discard)
                # The per-connection in-flight cap: past it the server
                # stops reading this connection until responses drain —
                # backpressure through the socket, not through memory.
                while len(inflight) >= self.max_inflight and not self._stopping.is_set():
                    await asyncio.wait(
                        list(inflight),  # detlint: ignore[det-set-iteration] -- wait-any over tasks; completion order is scheduler-driven either way and responses serialize under write_lock
                        return_when=asyncio.FIRST_COMPLETED,
                    )
            # Flush this connection's outstanding responses before the
            # transport closes under them.
            if inflight:
                await asyncio.gather(
                    *list(inflight),  # detlint: ignore[det-set-iteration] -- await-all barrier; responses serialize under write_lock, so gather order is immaterial
                    return_exceptions=True,
                )
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            self._subs.drop_connection(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown races
                pass

    def _begin_request(
        self,
        request: Dict[str, Any],
        *,
        writer: Optional[asyncio.StreamWriter] = None,
        write_lock: Optional[asyncio.Lock] = None,
    ) -> "asyncio.Future":
        """Validate + route one request; returns its future response.

        Synchronous up to the shard queues (ordering), async beyond them.
        ``writer``/``write_lock`` identify the connection for the ops that
        bind state to it (``subscribe``/``unsubscribe``).
        """
        request_id = request.get("id")
        problem = protocol.envelope_problem(request)
        if problem is not None:
            message, code = problem
            return self._resolved(
                protocol.error_response(request_id, message, code=code)
            )
        op = request["op"]
        if op in protocol.INTERNAL_OPS:
            return self._resolved(
                protocol.error_response(
                    request_id, f"op {op!r} is internal to the fleet"
                )
            )
        self.requests_received += 1
        if op == protocol.METRICS:
            return asyncio.ensure_future(self._serve_metrics(request_id))
        if op == protocol.RESIZE:
            return asyncio.ensure_future(
                self._serve_resize(request_id, request.get("params", {}))
            )
        if op in protocol.FRONTEND_OPS:
            return self._resolved(self._serve_frontend(op, request_id))
        if op == protocol.SUBSCRIBE:
            if writer is None or write_lock is None:
                return self._resolved(
                    protocol.error_response(
                        request_id, "subscribe requires a live connection"
                    )
                )
            # Register before routing: the handle exists (buffering early
            # frames) before the shard can possibly commit anything past
            # the sequence number the subscribe response will carry.
            sub = self._subs.register(request["world"], writer, write_lock)
            inner = self._route(
                {
                    "id": request_id,
                    "op": protocol.SUB_TRACK,
                    "world": request["world"],
                    "params": dict(request.get("params", {})),
                }
            )
            return asyncio.ensure_future(self._finish_subscribe(sub, inner))
        if op == protocol.UNSUBSCRIBE:
            removed = writer is not None and self._subs.unsubscribe(
                request["world"], writer
            )
            return self._resolved(
                protocol.ok_response(
                    request_id,
                    {"world": request["world"], "unsubscribed": bool(removed)},
                )
            )
        future = self._route(request)
        if request["op"] == protocol.CREATE_WORLD:
            self._create_futures.add(future)
            future.add_done_callback(self._create_futures.discard)
        return future

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        future: "asyncio.Future",
    ) -> None:
        response = await future
        if self._injector is not None:
            fault = self._injector.on_response()
            if fault.delay > 0.0:
                self.metrics.counter("server.faults.responses_delayed").inc()
                await asyncio.sleep(fault.delay)
            if fault.drop:
                self.metrics.counter("server.faults.responses_dropped").inc()
                return
            duplicate = fault.duplicate
        else:
            duplicate = False
        async with write_lock:
            if writer.is_closing():
                return
            payload = protocol.encode_message(response)
            writer.write(payload)
            if duplicate:
                self.metrics.counter("server.faults.responses_duplicated").inc()
                writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - client went away
                pass

    def _serve_frontend(self, op: str, request_id: Any) -> Dict[str, Any]:
        if op == protocol.PING:
            return protocol.ok_response(request_id, {"pong": True, "shards": self.shards})
        if op == protocol.LIST_WORLDS:
            return protocol.ok_response(
                request_id,
                {"worlds": {world: shard for world, shard in sorted(self._worlds.items())}},
            )
        if op == protocol.SERVER_STATS:
            return protocol.ok_response(request_id, self.stats())
        # SHUTDOWN: acknowledge first; serve_until_shutdown tears down after
        # this response has been written back to the requester.
        self._stopping.set()
        return protocol.ok_response(request_id, {"stopping": True})

    async def _serve_metrics(self, request_id: Any) -> Dict[str, Any]:
        """The ``metrics`` op: fan ``shard_metrics`` to every shard, merge.

        The probes ride the normal batching path (same queues, same
        dispatchers) so ordering guarantees hold; the ``world`` field is
        synthetic because the op is shard-addressed, not world-addressed.
        """
        futures = [
            self._enqueue_or_fail(
                shard,
                {"op": protocol.SHARD_METRICS, "world": f"@shard:{shard}", "id": None},
            )
            for shard in range(self.shards)
        ]
        responses = await asyncio.gather(*futures)
        shard_snapshots: List[Optional[Dict[str, Any]]] = [
            response.get("result") if response.get("ok") else None
            for response in responses
        ]
        frontend = self._frontend_snapshot()
        merged = merge_snapshots([frontend] + [s for s in shard_snapshots if s])
        return protocol.ok_response(
            request_id,
            {
                "shards": [
                    summarize_snapshot(s) if s is not None else None
                    for s in shard_snapshots
                ],
                "frontend": summarize_snapshot(frontend),
                "merged": summarize_snapshot(merged),
            },
        )

    # ------------------------------------------------------------------ #
    # Live resize
    # ------------------------------------------------------------------ #
    async def _serve_resize(self, request_id: Any, params: Dict[str, Any]) -> Dict[str, Any]:
        """Change the shard count without downtime (the ``resize`` op)."""
        new_shards = params.get("shards")
        if isinstance(new_shards, bool) or not isinstance(new_shards, int) or new_shards < 1:
            return protocol.error_response(request_id, "'shards' must be a positive integer")
        if self._resizing:
            return protocol.error_response(
                request_id,
                "a resize is already in progress",
                code=protocol.RETRY_LATER,
                retry_after=0.5,
            )
        if new_shards == self.shards:
            return protocol.ok_response(
                request_id, {"shards": self.shards, "moved": 0, "parked": 0}
            )
        self._resizing = True
        self.metrics.counter("server.resizes").inc()
        old_shards = self.shards
        new_ring = HashRing(new_shards)
        moved = 0
        try:
            # Phase 0: raise the park gate, then drain outstanding creates
            # so the moving set below is complete.
            self._next_ring = new_ring
            self._parked = []
            if self._create_futures:
                await asyncio.gather(*list(self._create_futures), return_exceptions=True)
            moving = sorted(
                world
                for world, shard in self._worlds.items()
                if new_ring.shard_of(world) != self.ring.shard_of(world)
            )
            self._park_moving = set(moving)
            # Phase 1: grow the runtime first so target shards exist.
            if new_shards > old_shards:
                await self._grow_runtime(new_shards)
            # Phase 2: migrate each moving world.  migrate_out rides the
            # source shard's normal batch path, so every request already
            # queued for the world executes first — that is the drain.
            for world in moving:
                source = self.ring.shard_of(world)
                out = await self._submit_to_shard(
                    source, {"id": None, "op": protocol.MIGRATE_OUT, "world": world}
                )
                if not out.get("ok"):
                    # Deleted while queued ahead of the drain — nothing to
                    # move; the delete's responder already updated the map.
                    continue
                state = out["result"]["state"]
                target = new_ring.shard_of(world)
                landed = await self._submit_to_shard(
                    target,
                    {
                        "id": None,
                        "op": protocol.MIGRATE_IN,
                        "world": world,
                        "params": {"state": state},
                    },
                )
                if landed.get("ok"):
                    self._worlds[world] = target
                    moved += 1
                    self.metrics.counter("server.migrations").inc()
                else:  # pragma: no cover - defensive
                    # Could not land on the new owner: put the world back
                    # where it came from rather than lose it.
                    await self._submit_to_shard(
                        source,
                        {
                            "id": None,
                            "op": protocol.MIGRATE_IN,
                            "world": world,
                            "params": {"state": state},
                        },
                    )
            # Phase 3: the swap.  No awaits between these statements — the
            # ring, the shard count, and the gate change atomically as far
            # as the event loop is concerned.
            self.ring = new_ring
            self.shards = new_shards
            parked = self._parked or []
            self._parked = None
            self._park_moving = None
            self._next_ring = None
            for request, future in parked:
                self._chain(self._route(request), future)
            # Frames committed on old owners whose collect never ran ride
            # the migrated trackers; sweep every subscribed world under the
            # new ring so subscribers see them (dedup absorbs overlap).
            self._collect_subscribed()
            # Phase 4: shrink the runtime after the swap (the dying shards
            # hold no worlds now; their queues drain before teardown).
            if new_shards < old_shards:
                await self._shrink_runtime(new_shards)
            return protocol.ok_response(
                request_id,
                {"shards": new_shards, "moved": moved, "parked": len(parked)},
            )
        finally:
            self._resizing = False
            if self._parked is not None:
                # Error path: drop the gate and replay under whatever ring
                # is current so parked clients never hang.
                parked = self._parked
                self._parked = None
                self._park_moving = None
                self._next_ring = None
                for request, future in parked:
                    self._chain(self._route(request), future)

    async def _grow_runtime(self, new_shards: int) -> None:
        recover = self.store_config is not None and self.store_config.durable
        if self._pool.runs_in_loop:
            self._pool.grow(new_shards, recover=recover)
        else:
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(self._pool.grow, new_shards, recover=recover)
            )
        for shard in range(len(self._pending), new_shards):
            self._pending.append(deque())
            self._wakeups.append(asyncio.Event())
            self._shedding.append(False)
            self._busy.append(False)
            self.shard_requests.append(0)
            self._dispatchers.append(asyncio.create_task(self._dispatch(shard)))

    async def _shrink_runtime(self, new_shards: int) -> None:
        # Drain the dying shards (queued metrics probes, stragglers), then
        # retire their dispatchers and workers.
        for shard in range(new_shards, len(self._pending)):
            while self._pending[shard] or self._busy[shard]:
                self._wakeups[shard].set()
                await asyncio.sleep(0.01)
        dying = self._dispatchers[new_shards:]
        for task in dying:
            task.cancel()
        if dying:
            await asyncio.gather(*dying, return_exceptions=True)
        del self._dispatchers[new_shards:]
        del self._pending[new_shards:]
        del self._wakeups[new_shards:]
        del self._shedding[new_shards:]
        del self._busy[new_shards:]
        del self.shard_requests[new_shards:]
        if self._pool.runs_in_loop:
            self._pool.shrink(new_shards)
        else:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.shrink, new_shards
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _frontend_snapshot(self) -> Dict[str, Any]:
        """The front end's own registry snapshot, durability gauges refreshed."""
        self._refresh_durability_metrics()
        self.metrics.gauge("server.uptime_seconds").set(
            clock.wall() - self._started_wall
        )
        self.metrics.gauge("server.worlds").set(len(self._worlds))
        self.metrics.gauge("subs.active").set(self._subs.active_count)
        return self.metrics.snapshot(
            extra_counters={"server.requests_received": self.requests_received}
        )

    def _refresh_durability_metrics(self) -> None:
        """Fold the pool's durability counters into the registry.

        The registry is the canonical home of these counters; the deprecated
        ``server_stats`` dict reads them back from here so both paths can
        never disagree.
        """
        restarts = self.metrics.gauge("service.worker_restarts")
        recovered = self.metrics.gauge("service.recovered_worlds")
        if self._pool is not None and self.store_config is not None:
            restarts.set(self._pool.worker_restarts)
            recovered.set(self._pool.recovered_worlds())

    def stats(self) -> Dict[str, Any]:
        """Front-end serving counters.

        .. deprecated:: PR 8
            ``server_stats`` predates the metrics registry; prefer the
            ``metrics`` op, which carries these counters (and the latency
            histograms this dict never had).  Kept for wire compatibility —
            the durability counters are now *read back from the registry*
            rather than from the pool directly.
        """
        self._refresh_durability_metrics()
        stats = {
            "shards": self.shards,
            "inline": self.inline,
            "naive": self.naive,
            "durable": self.store_config is not None and self.store_config.durable,
            "worlds": len(self._worlds),
            "requests": self.requests_received,
            "batches": self.batches_dispatched,
            "max_batch_size": self.max_batch_size,
            "shard_requests": list(self.shard_requests),
        }
        if self._pool is not None and self.store_config is not None:
            stats["worker_restarts"] = int(
                self.metrics.gauge("service.worker_restarts").value
            )
            stats["recovered_worlds"] = int(
                self.metrics.gauge("service.recovered_worlds").value
            )
        return stats


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 7421,
    shards: int = 2,
    inline: bool = False,
    naive: bool = False,
    state_dir: Optional[str] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    max_live_worlds: Optional[int] = None,
    faults_path: Optional[str] = None,
    max_pending: int = DEFAULT_MAX_PENDING,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
) -> int:
    """Run a fleet server until a ``shutdown`` request arrives (CLI entry)."""
    faults = FaultPlan.load(faults_path) if faults_path is not None else None

    async def _main() -> int:
        server = FleetServer(
            host=host,
            port=port,
            shards=shards,
            inline=inline,
            naive=naive,
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            max_live_worlds=max_live_worlds,
            faults=faults,
            max_pending=max_pending,
            max_inflight=max_inflight,
        )
        await server.start()
        mode = "inline shards" if inline else f"{shards} worker processes"
        if state_dir is not None:
            recovered = server._pool.recovered_worlds() if server._pool is not None else 0
            mode += f", durable state in {state_dir} ({recovered} worlds recovered)"
        if faults is not None:
            mode += f", fault plan with {len(faults.rules)} rules"
        print(f"fleet server listening on {server.host}:{server.port} ({mode})", flush=True)
        await server.serve_until_shutdown()
        print(
            f"fleet server: clean shutdown "
            f"({server.requests_received} requests, {server.batches_dispatched} batches, "
            f"max batch {server.max_batch_size})",
            flush=True,
        )
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 130
