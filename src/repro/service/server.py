"""The asyncio front end: topology-as-a-service.

:class:`FleetServer` accepts newline-delimited JSON requests over TCP,
answers front-end ops (``ping``, ``list_worlds``, ``server_stats``,
``metrics``, ``shutdown``) directly, and routes every world-addressed op to the shard
owning that world (consistent hashing, :class:`~repro.service.sharding.
HashRing`).

**Batching.**  Each shard has one dispatcher task and at most one batch in
flight.  Requests arriving while a batch executes accumulate in the shard's
pending queue and are dispatched together as the next batch — coalescing
emerges from load instead of from a timer, so an idle server adds no
latency and a busy one amortizes the per-dispatch cost over many requests.
Arrival order within a shard is preserved end to end (queue → batch →
in-order execution → per-request futures), which keeps per-world request
order — the determinism contract — intact no matter how batches fall.

**Shards.**  The default backend is a :class:`~repro.service.workers.
ProcessShardPool` (one long-lived worker process per shard, each owning its
worlds' reconfiguration and incremental-builder state); ``inline=True``
executes shards in-process — same semantics, no IPC — which is what the
benchmarks use to isolate the serving-layer gains and what tests use for
speed.  ``naive=True`` selects the one-request-one-rebuild baseline in
either backend.

Connections are handled concurrently but each connection's requests are
processed sequentially (read → execute → respond), so a single client
observes its own writes; concurrency — and therefore batching — comes from
multiple connections, as in the load generator's closed loop.

**Durability.**  ``state_dir`` attaches a sqlite
:class:`~repro.service.storage.sqlite.SqliteStore` per shard (one database
file each): every applied write lands in a write-ahead log before its
response leaves the worker, the pool restarts-and-recovers workers that
die mid-batch, and on server start the fleet recovers from whatever the
directory already holds — the placement map is rebuilt by scanning the
shard databases (synchronously, in ``__init__``, before the loop runs).
``max_live_worlds`` bounds resident worlds per shard via LRU eviction to
the store.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import clock
from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    summarize_snapshot,
)
from repro.service import protocol
from repro.service.sharding import HashRing
from repro.service.storage import StoreConfig, scan_world_ids
from repro.service.workers import InlineShardPool, ProcessShardPool
from repro.service.worlds import DEFAULT_SNAPSHOT_EVERY


class FleetServer:
    """Hosts many live worlds behind a batched, sharded request front end."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        inline: bool = False,
        naive: bool = False,
        state_dir: Optional[str] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        max_live_worlds: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.shards = shards
        self.inline = inline
        self.naive = naive
        self.store_config: Optional[StoreConfig] = None
        if state_dir is not None:
            self.store_config = StoreConfig(
                kind="sqlite",
                path=state_dir,
                snapshot_every=snapshot_every,
                max_live_worlds=max_live_worlds,
            )
        elif max_live_worlds is not None:
            raise ValueError("--max-live-worlds needs --state-dir to evict into")
        self.ring = HashRing(shards)
        self.requests_received = 0
        self.batches_dispatched = 0
        self.max_batch_size = 0
        self.shard_requests = [0] * shards
        # Front-end registry: dispatch-side latency histograms plus the
        # counters that ``server_stats`` used to be the only home of.
        self.metrics = MetricsRegistry()
        self._started_wall = clock.wall()
        self._pool: Optional[Any] = None
        self._server: Optional[asyncio.AbstractServer] = None
        # Each pending entry is (request, response future, enqueue wall time);
        # the timestamp feeds the queue-wait histogram at dispatch.
        self._pending: List[Deque[Tuple[Dict[str, Any], asyncio.Future, float]]] = [
            deque() for _ in range(shards)
        ]
        self._wakeups: List[asyncio.Event] = []
        self._dispatchers: List[asyncio.Task] = []
        self._handlers: set = set()
        self._connections: set = set()
        # Placement survives restarts with the worlds themselves: scan the
        # state directory here, in the synchronous constructor, so the event
        # loop never blocks on sqlite I/O.
        self._worlds: Dict[str, int] = (
            scan_world_ids(state_dir, shards) if state_dir is not None else {}
        )
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener, start the shard pool and the dispatchers."""
        self._stopping = asyncio.Event()
        self._wakeups = [asyncio.Event() for _ in range(self.shards)]
        # Bind before spawning the pool: a failed bind (port in use) must
        # not leave orphaned worker processes behind.
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        pool_class = InlineShardPool if self.inline else ProcessShardPool
        self._pool = pool_class(
            self.shards,
            naive=self.naive,
            store_config=self.store_config,
            # Recovering an empty state directory is a no-op, so a durable
            # server always starts through the recovery path — first boot
            # and restart are the same code.
            recover=self.store_config is not None and self.store_config.durable,
        )
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard)) for shard in range(self.shards)
        ]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives, then stop cleanly."""
        assert self._stopping is not None, "start() must run first"
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, stop the shard pool."""
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Unblock handlers parked in readline: closing the transports makes
        # their reads return EOF, so the gather below terminates.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------ #
    # Dispatch (one batch in flight per shard)
    # ------------------------------------------------------------------ #
    async def _dispatch(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        pending = self._pending[shard]
        wakeup = self._wakeups[shard]
        while True:
            await wakeup.wait()
            wakeup.clear()
            while pending:
                batch = list(pending)
                pending.clear()
                requests = [request for request, _, _ in batch]
                futures = [future for _, future, _ in batch]
                self.batches_dispatched += 1
                self.max_batch_size = max(self.max_batch_size, len(requests))
                self.shard_requests[shard] += len(requests)
                now = clock.wall()
                queue_wait = self.metrics.histogram("server.queue_wait_seconds")
                for _, _, enqueued in batch:
                    queue_wait.observe(now - enqueued)
                self.metrics.histogram("server.batch_size", COUNT_BUCKETS).observe(
                    len(requests)
                )
                self.metrics.counter("server.requests").inc(len(requests))
                self.metrics.counter(f"server.shard.{shard}.requests").inc(len(requests))
                # Process-backed pools block on a queue round trip, so they
                # run in the default executor and the event loop keeps
                # reading other connections — that concurrency is what lets
                # the next batch coalesce while this one executes.  Inline
                # pools compute under the GIL regardless; calling them
                # directly skips a thread hop per batch, and arriving
                # requests coalesce in the transport buffers instead.
                if self._pool.runs_in_loop:
                    responses = self._pool.execute(shard, requests)
                    await asyncio.sleep(0)
                else:
                    responses = await loop.run_in_executor(
                        None, self._pool.execute, shard, requests
                    )
                self.metrics.histogram("server.execute_seconds").observe(
                    clock.wall() - now
                )
                for future, response in zip(futures, responses):
                    if not future.done():
                        future.set_result(response)

    async def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        shard = self.ring.shard_of(request["world"])
        return await self._submit_to_shard(shard, request)

    def _enqueue(self, shard: int, request: Dict[str, Any]) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[shard].append((request, future, clock.wall()))
        self._wakeups[shard].set()
        return future

    async def _submit_to_shard(self, shard: int, request: Dict[str, Any]) -> Dict[str, Any]:
        return await self._enqueue(shard, request)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while not self._stopping.is_set():
                # Plain readline keeps the per-request hot path to one
                # awaitable; stop() unblocks it by closing the transport
                # (readline then returns EOF).
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = protocol.decode_message(line)
                except ValueError as error:
                    writer.write(protocol.encode_message(
                        protocol.error_response(None, f"malformed request: {error}")
                    ))
                    await writer.drain()
                    continue
                response = await self._serve_request(request)
                writer.write(protocol.encode_message(response))
                await writer.drain()
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown races
                pass

    async def _serve_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        problem = protocol.validate_request(request)
        if problem is not None:
            return protocol.error_response(request_id, problem)
        self.requests_received += 1
        op = request["op"]
        if op == protocol.METRICS:
            return await self._serve_metrics(request_id)
        if op in protocol.FRONTEND_OPS:
            return self._serve_frontend(op, request_id)
        response = await self._submit(request)
        # The front end tracks world placement from the responses it relays
        # (a failed create must not register a phantom world).
        if response.get("ok"):
            if op == protocol.CREATE_WORLD:
                self._worlds[request["world"]] = self.ring.shard_of(request["world"])
            elif op == protocol.DELETE_WORLD:
                self._worlds.pop(request["world"], None)
        return response

    def _serve_frontend(self, op: str, request_id: Any) -> Dict[str, Any]:
        if op == protocol.PING:
            return protocol.ok_response(request_id, {"pong": True, "shards": self.shards})
        if op == protocol.LIST_WORLDS:
            return protocol.ok_response(
                request_id,
                {"worlds": {world: shard for world, shard in sorted(self._worlds.items())}},
            )
        if op == protocol.SERVER_STATS:
            return protocol.ok_response(request_id, self.stats())
        # SHUTDOWN: acknowledge first; serve_until_shutdown tears down after
        # this response has been written back to the requester.
        self._stopping.set()
        return protocol.ok_response(request_id, {"stopping": True})

    async def _serve_metrics(self, request_id: Any) -> Dict[str, Any]:
        """The ``metrics`` op: fan ``shard_metrics`` to every shard, merge.

        The probes ride the normal batching path (same queues, same
        dispatchers) so ordering guarantees hold; the ``world`` field is
        synthetic because the op is shard-addressed, not world-addressed.
        """
        futures = [
            self._enqueue(
                shard,
                {"op": protocol.SHARD_METRICS, "world": f"@shard:{shard}", "id": None},
            )
            for shard in range(self.shards)
        ]
        responses = await asyncio.gather(*futures)
        shard_snapshots: List[Optional[Dict[str, Any]]] = [
            response.get("result") if response.get("ok") else None
            for response in responses
        ]
        frontend = self._frontend_snapshot()
        merged = merge_snapshots([frontend] + [s for s in shard_snapshots if s])
        return protocol.ok_response(
            request_id,
            {
                "shards": [
                    summarize_snapshot(s) if s is not None else None
                    for s in shard_snapshots
                ],
                "frontend": summarize_snapshot(frontend),
                "merged": summarize_snapshot(merged),
            },
        )

    def _frontend_snapshot(self) -> Dict[str, Any]:
        """The front end's own registry snapshot, durability gauges refreshed."""
        self._refresh_durability_metrics()
        self.metrics.gauge("server.uptime_seconds").set(
            clock.wall() - self._started_wall
        )
        self.metrics.gauge("server.worlds").set(len(self._worlds))
        return self.metrics.snapshot(
            extra_counters={"server.requests_received": self.requests_received}
        )

    def _refresh_durability_metrics(self) -> None:
        """Fold the pool's durability counters into the registry.

        The registry is the canonical home of these counters; the deprecated
        ``server_stats`` dict reads them back from here so both paths can
        never disagree.
        """
        restarts = self.metrics.gauge("service.worker_restarts")
        recovered = self.metrics.gauge("service.recovered_worlds")
        if self._pool is not None and self.store_config is not None:
            restarts.set(self._pool.worker_restarts)
            recovered.set(self._pool.recovered_worlds())

    def stats(self) -> Dict[str, Any]:
        """Front-end serving counters.

        .. deprecated:: PR 8
            ``server_stats`` predates the metrics registry; prefer the
            ``metrics`` op, which carries these counters (and the latency
            histograms this dict never had).  Kept for wire compatibility —
            the durability counters are now *read back from the registry*
            rather than from the pool directly.
        """
        self._refresh_durability_metrics()
        stats = {
            "shards": self.shards,
            "inline": self.inline,
            "naive": self.naive,
            "durable": self.store_config is not None and self.store_config.durable,
            "worlds": len(self._worlds),
            "requests": self.requests_received,
            "batches": self.batches_dispatched,
            "max_batch_size": self.max_batch_size,
            "shard_requests": list(self.shard_requests),
        }
        if self._pool is not None and self.store_config is not None:
            stats["worker_restarts"] = int(
                self.metrics.gauge("service.worker_restarts").value
            )
            stats["recovered_worlds"] = int(
                self.metrics.gauge("service.recovered_worlds").value
            )
        return stats


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 7421,
    shards: int = 2,
    inline: bool = False,
    naive: bool = False,
    state_dir: Optional[str] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    max_live_worlds: Optional[int] = None,
) -> int:
    """Run a fleet server until a ``shutdown`` request arrives (CLI entry)."""

    async def _main() -> int:
        server = FleetServer(
            host=host,
            port=port,
            shards=shards,
            inline=inline,
            naive=naive,
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            max_live_worlds=max_live_worlds,
        )
        await server.start()
        mode = "inline shards" if inline else f"{shards} worker processes"
        if state_dir is not None:
            recovered = server._pool.recovered_worlds() if server._pool is not None else 0
            mode += f", durable state in {state_dir} ({recovered} worlds recovered)"
        print(f"fleet server listening on {server.host}:{server.port} ({mode})", flush=True)
        await server.serve_until_shutdown()
        print(
            f"fleet server: clean shutdown "
            f"({server.requests_received} requests, {server.batches_dispatched} batches, "
            f"max batch {server.max_batch_size})",
            flush=True,
        )
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 130
