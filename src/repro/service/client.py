"""Asyncio client for the fleet server's wire protocol.

Two layers:

* :class:`ServiceClient` — one connection, one request at a time.  Reads
  are **id-matched** (responses whose ``id`` does not match the in-flight
  request are discarded) so injected duplicate or stale responses never
  desynchronize the stream, and every blocking read carries a timeout so a
  dropped response surfaces as :class:`ServiceTimeout` instead of a hang.
* :class:`RetryingClient` — wraps a connection factory with deadline-aware
  retries: jittered exponential backoff (seeded, deterministic), a
  per-request deadline budget, ``retry_after`` hints honoured, reconnection
  on connection loss, and idempotency tokens on writes so a re-issued
  request that *did* land the first time is answered from the server's
  dedup cache instead of applied twice (exactly-once from the client's
  point of view).
"""

from __future__ import annotations

import asyncio
import itertools
import random
import uuid
from typing import Any, Callable, Dict, Optional

from repro.obs import clock
from repro.service import protocol

#: Default per-read timeout (seconds).  Generous next to the sub-second
#: service times, tight next to "forever" — a dropped response costs one
#: timeout, not a hung client.
DEFAULT_TIMEOUT = 10.0

#: Default total time budget for one logical request across all retries.
DEFAULT_DEADLINE = 30.0

#: Backoff schedule: ``base * 2**attempt`` capped, then jittered.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class ServiceError(RuntimeError):
    """An error response from the server, surfaced as an exception.

    ``code`` carries the structured error code (``RETRY_LATER``,
    ``SHUTTING_DOWN``, ...) when the server sent one; ``retry_after`` the
    backoff hint in seconds riding ``RETRY_LATER`` responses.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ServiceTimeout(ServiceError):
    """No response arrived within the client's timeout."""


class DeadlineExceeded(ServiceError):
    """The per-request deadline budget ran out across retries.

    ``last_error`` preserves the final attempt's failure, so callers can
    distinguish "the server is overloaded" from "nothing is listening".
    """

    def __init__(self, message: str, *, last_error: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.last_error = last_error


class ServiceClient:
    """One connection speaking the newline-delimited JSON protocol.

    Requests are issued strictly one at a time per client (write, then read
    the matching response), mirroring the closed-loop usage of the load
    generator; open several clients for concurrency.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self.timeout = timeout

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: Optional[float] = DEFAULT_TIMEOUT
    ) -> "ServiceClient":
        """Open a connection to a running fleet server."""
        if timeout is not None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, timeout=timeout)

    async def _readline(self, timeout: Optional[float]) -> bytes:
        if timeout is None:
            return await self._reader.readline()
        try:
            return await asyncio.wait_for(self._reader.readline(), timeout)
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"no response within {timeout:g}s (request may or may not have applied)"
            ) from None

    async def request(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one request and return the raw response envelope.

        The read is id-matched: responses carrying a different ``id``
        (injected duplicates, responses to an earlier timed-out request
        still in the pipe) are discarded rather than mistaken for the
        answer.  ``timeout`` overrides the client default for this request.
        """
        request_id = next(self._ids)
        message: Dict[str, Any] = {"id": request_id, "op": op}
        if world is not None:
            message["world"] = world
        if params:
            message["params"] = params
        if token is not None:
            message["token"] = token
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()
        read_timeout = self.timeout if timeout is None else timeout
        while True:
            line = await self._readline(read_timeout)
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.decode_message(line)
            # Server-initiated envelopes (id=None malformed-input errors)
            # and stale/duplicate responses do not answer this request.
            if response.get("id") == request_id:
                return response

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Send one request and return its ``result``; raise on errors."""
        response = await self.request(
            op, world=world, params=params, token=token, timeout=timeout
        )
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown server error"),
                code=response.get("code"),
                retry_after=response.get("retry_after"),
            )
        return response.get("result")

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown races
            pass


#: Ops that mutate world state and therefore ride an idempotency token on
#: every attempt (reads are naturally idempotent; delete's retry ambiguity
#: is resolved in :meth:`RetryingClient.call` instead).
_WRITE_OPS = frozenset(
    {protocol.CREATE_WORLD, protocol.ADVANCE, protocol.APPLY, protocol.DELETE_WORLD}
)


class RetryingClient:
    """Deadline-aware retrying wrapper around :class:`ServiceClient`.

    Every write op carries a fresh idempotency token, so a request whose
    response was lost (timeout, dropped response, connection reset, worker
    death) can be re-issued safely: if the first attempt applied, the
    server answers from its per-world dedup cache with the original result
    instead of applying the write twice.  Reads are naturally idempotent.

    Backoff is exponential with full jitter from a **seeded** generator —
    two runs with the same seed retry on the same schedule, keeping chaos
    tests reproducible.  ``RETRY_LATER`` responses carry a server-side
    ``retry_after`` hint, used as the floor of the next sleep.

    One deliberate asymmetry: a retried ``delete_world`` that finds the
    world already gone is treated as success — the first attempt's effect
    and the retry's "unknown world" error are indistinguishable, and
    deleted-is-deleted is the caller's intent.
    """

    def __init__(
        self,
        connect: Callable[[], "asyncio.Future[ServiceClient]"],
        *,
        seed: int = 0,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        deadline: float = DEFAULT_DEADLINE,
        max_attempts: int = 8,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        token_prefix: Optional[str] = None,
    ) -> None:
        self._connect = connect
        self._client: Optional[ServiceClient] = None
        self._rng = random.Random(seed)
        self.timeout = timeout
        self.deadline = deadline
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._tokens = itertools.count(1)
        # Tokens must never collide with a *previous* client's (a reused
        # token would be answered from the server's dedup cache instead of
        # applied), so the default prefix carries a fresh UUID.  Token
        # values never influence world state or snapshots — only dedup —
        # so this randomness is outside the determinism contract.
        if token_prefix is None:
            token_prefix = f"tok-{uuid.uuid4().hex[:12]}"
        self._token_prefix = token_prefix
        self.retries = 0
        self.reconnects = 0
        self.shed_responses = 0

    @classmethod
    def to_server(
        cls, host: str, port: int, *, seed: int = 0, **options: Any
    ) -> "RetryingClient":
        """A retrying client (re)connecting to ``host:port`` as needed."""
        timeout = options.get("timeout", DEFAULT_TIMEOUT)

        async def _connect() -> ServiceClient:
            return await ServiceClient.connect(host, port, timeout=timeout)

        return cls(_connect, seed=seed, **options)

    def _next_token(self) -> str:
        return f"{self._token_prefix}-{next(self._tokens)}"

    async def _ensure_client(self) -> ServiceClient:
        if self._client is None:
            self._client = await self._connect()
        return self._client

    async def _drop_client(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()
            self.reconnects += 1

    def _backoff(self, attempt: int, hint: Optional[float]) -> float:
        """Full-jitter exponential backoff, floored by the server's hint.

        The hint is jittered *upward* rather than used as an exact floor:
        the server sheds a whole pile-up at once, and if every shed client
        slept exactly the hint they would return as a phase-locked herd,
        collide with the next full queue, and get shed again in lockstep —
        escalating the tail by whole backoff generations.  Spreading the
        herd across [hint, 1.75*hint] lets it reabsorb over a couple of
        dispatch cycles instead.
        """
        ceiling = min(self.backoff_cap, self.backoff_base * (2**attempt))
        sleep = self._rng.uniform(0.0, ceiling)
        if hint is not None:
            sleep = max(sleep, float(hint) * self._rng.uniform(1.0, 1.75))
        return sleep

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        """One logical request, retried until success or deadline.

        Retried on: connection errors (reconnects first), timeouts,
        ``RETRY_LATER`` / ``SHUTTING_DOWN`` / ``WORKER_DIED`` responses.
        Not retried: ordinary application errors ("unknown world", bad
        params) — those are answers, not failures.
        """
        budget = self.deadline if deadline is None else deadline
        started = clock.wall()
        token = self._next_token() if op in _WRITE_OPS else None
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            elapsed = clock.wall() - started
            if attempt >= self.max_attempts or elapsed >= budget:
                raise DeadlineExceeded(
                    f"{op} gave up after {attempt} attempts in {elapsed:.2f}s"
                    + (f" (last error: {last_error})" if last_error else ""),
                    last_error=last_error,
                )
            hint: Optional[float] = None
            try:
                client = await self._ensure_client()
                remaining = budget - (clock.wall() - started)
                timeout = self.timeout
                if timeout is None or remaining < timeout:
                    timeout = max(0.05, remaining)
                return await client.call(
                    op, world=world, params=params, token=token, timeout=timeout
                )
            except ServiceTimeout as error:
                # The response is lost but the request may have applied —
                # only the token makes the re-issue safe.  The connection's
                # stream may still deliver the late response; id-matching
                # would discard it, but a fresh connection is cheaper to
                # reason about and matches what a real client does.
                last_error = error
                await self._drop_client()
            except (ConnectionError, OSError) as error:
                last_error = error
                await self._drop_client()
            except ServiceError as error:
                if error.code == protocol.RETRY_LATER:
                    self.shed_responses += 1
                    hint = error.retry_after
                    last_error = error
                elif error.code in (protocol.SHUTTING_DOWN, protocol.WORKER_DIED):
                    last_error = error
                    await self._drop_client()
                elif (
                    op == protocol.DELETE_WORLD
                    and attempt > 0
                    and "unknown world" in str(error)
                ):
                    # The first attempt's delete applied; the retry found
                    # the world already gone.  Deleted-is-deleted.
                    return {"world": world, "deleted": True, "retried": True}
                else:
                    raise
            attempt += 1
            self.retries += 1
            await asyncio.sleep(self._backoff(attempt, hint))

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None
