"""Asyncio client for the fleet server's wire protocol."""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional


class ServiceError(RuntimeError):
    """An error response from the server, surfaced as an exception."""


class ServiceClient:
    """One connection speaking the newline-delimited JSON protocol.

    Requests are issued strictly one at a time per client (write, then read
    the matching response), mirroring the closed-loop usage of the load
    generator; open several clients for concurrency.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection to a running fleet server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Send one request and return the raw response envelope."""
        from repro.service.protocol import decode_message, encode_message

        message: Dict[str, Any] = {"id": next(self._ids), "op": op}
        if world is not None:
            message["world"] = world
        if params:
            message["params"] = params
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Send one request and return its ``result``; raise on errors."""
        response = await self.request(op, world=world, params=params)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response.get("result")

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown races
            pass
