"""Asyncio client for the fleet server's wire protocol.

Three layers:

* :class:`ServiceClient` — one connection, one request at a time.  Reads
  are **id-matched** (responses whose ``id`` does not match the in-flight
  request are discarded) so injected duplicate or stale responses never
  desynchronize the stream, and every blocking read carries a timeout so a
  dropped response surfaces as :class:`ServiceTimeout` instead of a hang.
* :class:`RetryingClient` — wraps a connection factory with deadline-aware
  retries: jittered exponential backoff (seeded, deterministic), a
  per-request deadline budget, ``retry_after`` hints honoured, reconnection
  on connection loss, and idempotency tokens on writes so a re-issued
  request that *did* land the first time is answered from the server's
  dedup cache instead of applied twice (exactly-once from the client's
  point of view).
* :class:`SubscribingClient` — a demultiplexing connection that subscribes
  to worlds and maintains live :class:`~repro.service.subs.mirror.
  WorldMirror` reconstructions from server-pushed diff frames, with
  resume-from-sequence reconnection.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import uuid
from typing import Any, Callable, Dict, List, Optional, Set

from repro.obs import clock
from repro.service import protocol
from repro.service.subs.mirror import SequenceGap, WorldMirror

#: Default per-read timeout (seconds).  Generous next to the sub-second
#: service times, tight next to "forever" — a dropped response costs one
#: timeout, not a hung client.
DEFAULT_TIMEOUT = 10.0

#: Default total time budget for one logical request across all retries.
DEFAULT_DEADLINE = 30.0

#: Backoff schedule: ``base * 2**attempt`` capped, then jittered.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class ServiceError(RuntimeError):
    """An error response from the server, surfaced as an exception.

    ``code`` carries the structured error code (``RETRY_LATER``,
    ``SHUTTING_DOWN``, ...) when the server sent one; ``retry_after`` the
    backoff hint in seconds riding ``RETRY_LATER`` responses.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ServiceTimeout(ServiceError):
    """No response arrived within the client's timeout."""


class DeadlineExceeded(ServiceError):
    """The per-request deadline budget ran out across retries.

    ``last_error`` preserves the final attempt's failure, so callers can
    distinguish "the server is overloaded" from "nothing is listening".
    """

    def __init__(self, message: str, *, last_error: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.last_error = last_error


class ServiceClient:
    """One connection speaking the newline-delimited JSON protocol.

    Requests are issued strictly one at a time per client (write, then read
    the matching response), mirroring the closed-loop usage of the load
    generator; open several clients for concurrency.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self.timeout = timeout

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: Optional[float] = DEFAULT_TIMEOUT
    ) -> "ServiceClient":
        """Open a connection to a running fleet server."""
        if timeout is not None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=protocol.STREAM_LIMIT),
                timeout,
            )
        else:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
        return cls(reader, writer, timeout=timeout)

    async def _readline(self, timeout: Optional[float]) -> bytes:
        if timeout is None:
            return await self._reader.readline()
        try:
            return await asyncio.wait_for(self._reader.readline(), timeout)
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"no response within {timeout:g}s (request may or may not have applied)"
            ) from None

    async def request(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one request and return the raw response envelope.

        The read is id-matched: responses carrying a different ``id``
        (injected duplicates, responses to an earlier timed-out request
        still in the pipe) are discarded rather than mistaken for the
        answer.  ``timeout`` overrides the client default for this request.
        """
        request_id = next(self._ids)
        message: Dict[str, Any] = {"id": request_id, "op": op}
        if world is not None:
            message["world"] = world
        if params:
            message["params"] = params
        if token is not None:
            message["token"] = token
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()
        read_timeout = self.timeout if timeout is None else timeout
        while True:
            line = await self._readline(read_timeout)
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.decode_message(line)
            # Server-initiated envelopes (id=None malformed-input errors)
            # and stale/duplicate responses do not answer this request.
            if response.get("id") == request_id:
                return response

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Send one request and return its ``result``; raise on errors."""
        response = await self.request(
            op, world=world, params=params, token=token, timeout=timeout
        )
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown server error"),
                code=response.get("code"),
                retry_after=response.get("retry_after"),
            )
        return response.get("result")

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown races
            pass


#: Ops that mutate world state and therefore ride an idempotency token on
#: every attempt (reads are naturally idempotent; delete's retry ambiguity
#: is resolved in :meth:`RetryingClient.call` instead).
_WRITE_OPS = frozenset(
    {protocol.CREATE_WORLD, protocol.ADVANCE, protocol.APPLY, protocol.DELETE_WORLD}
)


class RetryingClient:
    """Deadline-aware retrying wrapper around :class:`ServiceClient`.

    Every write op carries a fresh idempotency token, so a request whose
    response was lost (timeout, dropped response, connection reset, worker
    death) can be re-issued safely: if the first attempt applied, the
    server answers from its per-world dedup cache with the original result
    instead of applying the write twice.  Reads are naturally idempotent.

    Backoff is exponential with full jitter from a **seeded** generator —
    two runs with the same seed retry on the same schedule, keeping chaos
    tests reproducible.  ``RETRY_LATER`` responses carry a server-side
    ``retry_after`` hint, used as the floor of the next sleep.

    One deliberate asymmetry: a retried ``delete_world`` that finds the
    world already gone is treated as success — the first attempt's effect
    and the retry's "unknown world" error are indistinguishable, and
    deleted-is-deleted is the caller's intent.
    """

    def __init__(
        self,
        connect: Callable[[], "asyncio.Future[ServiceClient]"],
        *,
        seed: int = 0,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        deadline: float = DEFAULT_DEADLINE,
        max_attempts: int = 8,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        token_prefix: Optional[str] = None,
    ) -> None:
        self._connect = connect
        self._client: Optional[ServiceClient] = None
        self._rng = random.Random(seed)
        self.timeout = timeout
        self.deadline = deadline
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._tokens = itertools.count(1)
        # Tokens must never collide with a *previous* client's (a reused
        # token would be answered from the server's dedup cache instead of
        # applied), so the default prefix carries a fresh UUID.  Token
        # values never influence world state or snapshots — only dedup —
        # so this randomness is outside the determinism contract.
        if token_prefix is None:
            token_prefix = f"tok-{uuid.uuid4().hex[:12]}"
        self._token_prefix = token_prefix
        self.retries = 0
        self.reconnects = 0
        self.shed_responses = 0

    @classmethod
    def to_server(
        cls, host: str, port: int, *, seed: int = 0, **options: Any
    ) -> "RetryingClient":
        """A retrying client (re)connecting to ``host:port`` as needed."""
        timeout = options.get("timeout", DEFAULT_TIMEOUT)

        async def _connect() -> ServiceClient:
            return await ServiceClient.connect(host, port, timeout=timeout)

        return cls(_connect, seed=seed, **options)

    def _next_token(self) -> str:
        return f"{self._token_prefix}-{next(self._tokens)}"

    async def _ensure_client(self) -> ServiceClient:
        if self._client is None:
            self._client = await self._connect()
        return self._client

    async def _drop_client(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()
            self.reconnects += 1

    def _backoff(self, attempt: int, hint: Optional[float]) -> float:
        """Full-jitter exponential backoff, floored by the server's hint.

        The hint is jittered *upward* rather than used as an exact floor:
        the server sheds a whole pile-up at once, and if every shed client
        slept exactly the hint they would return as a phase-locked herd,
        collide with the next full queue, and get shed again in lockstep —
        escalating the tail by whole backoff generations.  Spreading the
        herd across [hint, 1.75*hint] lets it reabsorb over a couple of
        dispatch cycles instead.
        """
        ceiling = min(self.backoff_cap, self.backoff_base * (2**attempt))
        sleep = self._rng.uniform(0.0, ceiling)
        if hint is not None:
            sleep = max(sleep, float(hint) * self._rng.uniform(1.0, 1.75))
        return sleep

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        """One logical request, retried until success or deadline.

        Retried on: connection errors (reconnects first), timeouts,
        ``RETRY_LATER`` / ``SHUTTING_DOWN`` / ``WORKER_DIED`` responses.
        Not retried: ordinary application errors ("unknown world", bad
        params) — those are answers, not failures.
        """
        budget = self.deadline if deadline is None else deadline
        started = clock.wall()
        token = self._next_token() if op in _WRITE_OPS else None
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            elapsed = clock.wall() - started
            if attempt >= self.max_attempts or elapsed >= budget:
                raise DeadlineExceeded(
                    f"{op} gave up after {attempt} attempts in {elapsed:.2f}s"
                    + (f" (last error: {last_error})" if last_error else ""),
                    last_error=last_error,
                )
            hint: Optional[float] = None
            try:
                client = await self._ensure_client()
                remaining = budget - (clock.wall() - started)
                timeout = self.timeout
                if timeout is None or remaining < timeout:
                    timeout = max(0.05, remaining)
                return await client.call(
                    op, world=world, params=params, token=token, timeout=timeout
                )
            except ServiceTimeout as error:
                # The response is lost but the request may have applied —
                # only the token makes the re-issue safe.  The connection's
                # stream may still deliver the late response; id-matching
                # would discard it, but a fresh connection is cheaper to
                # reason about and matches what a real client does.
                last_error = error
                await self._drop_client()
            except (ConnectionError, OSError) as error:
                last_error = error
                await self._drop_client()
            except ServiceError as error:
                if error.code == protocol.RETRY_LATER:
                    self.shed_responses += 1
                    hint = error.retry_after
                    last_error = error
                elif error.code in (protocol.SHUTTING_DOWN, protocol.WORKER_DIED):
                    last_error = error
                    await self._drop_client()
                elif (
                    op == protocol.DELETE_WORLD
                    and attempt > 0
                    and "unknown world" in str(error)
                ):
                    # The first attempt's delete applied; the retry found
                    # the world already gone.  Deleted-is-deleted.
                    return {"world": world, "deleted": True, "retried": True}
                else:
                    raise
            attempt += 1
            self.retries += 1
            await asyncio.sleep(self._backoff(attempt, hint))

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None


class SubscribingClient:
    """A connection that watches worlds through server-pushed diff frames.

    Unlike :class:`ServiceClient`, the read side is a background
    demultiplexer: id-carrying envelopes answer in-flight requests, while
    push frames (no ``id``) are applied to the per-world
    :class:`~repro.service.subs.mirror.WorldMirror` — so ordinary requests
    and a live subscription share one connection safely.

    Resume: after a disconnect (or a :class:`~repro.service.subs.mirror.
    SequenceGap`), :meth:`resume` reconnects and re-subscribes every world
    with ``since=<mirror cursor>`` — the server answers with the missing
    diffs from its ring, or a full snapshot when the cursor aged out.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self.timeout = timeout
        self.mirrors: Dict[str, WorldMirror] = {}
        self.frames_received = 0
        self.gaps = 0
        #: Worlds whose stream gapped and need a re-subscribe to heal.
        self.stale: Set[str] = set()
        self._pending: Dict[int, asyncio.Future] = {}
        #: Diff frames that raced ahead of their subscribe response (the
        #: push path can win the write lock before the responder runs).
        self._early: Dict[str, List[Dict[str, Any]]] = {}
        self._frame_event = asyncio.Event()
        self._endpoint: Optional[Any] = None
        #: Optional hook called with each frame that advanced a mirror
        #: (``cbtc watch`` prints from here; duplicates never reach it).
        self.on_frame: Optional[Callable[[Dict[str, Any]], None]] = None
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: Optional[float] = DEFAULT_TIMEOUT
    ) -> "SubscribingClient":
        if timeout is not None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=protocol.STREAM_LIMIT),
                timeout,
            )
        else:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
        client = cls(reader, writer, timeout=timeout)
        client._endpoint = (host, port)
        return client

    @property
    def connected(self) -> bool:
        return not self._reader_task.done() and not self._writer.is_closing()

    # ------------------------------------------------------------------ #
    # Read side: demultiplex responses and push frames
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_message(line)
                except ValueError:
                    continue
                if protocol.is_push_frame(message):
                    self._on_frame(message)
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection lost"))
            self._pending.clear()
            # Wake waiters so they observe the disconnect instead of
            # sleeping on an event no frame will ever set again.
            self._frame_event.set()

    def _on_frame(self, frame: Dict[str, Any]) -> None:
        world = frame.get("world")
        mirror = self.mirrors.get(world)
        if mirror is None:
            return
        if mirror.seq is None and frame.get("kind") == protocol.FRAME_DIFF:
            # No base snapshot yet (subscribe response still in flight);
            # park the diff until :meth:`subscribe` seeds the mirror.
            self._early.setdefault(world, []).append(frame)
            return
        self._apply_frame(mirror, frame)

    def _apply_frame(self, mirror: WorldMirror, frame: Dict[str, Any]) -> None:
        advanced = False
        try:
            advanced = mirror.apply(frame)
        except SequenceGap:
            self.gaps += 1
            self.stale.add(mirror.world)
        self.frames_received += 1
        if advanced and self.on_frame is not None:
            self.on_frame(frame)
        self._frame_event.set()

    # ------------------------------------------------------------------ #
    # Requests (share the connection with the push stream)
    # ------------------------------------------------------------------ #
    async def request(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        request_id = next(self._ids)
        message: Dict[str, Any] = {"id": request_id, "op": op}
        if world is not None:
            message["world"] = world
        if params:
            message["params"] = params
        if token is not None:
            message["token"] = token
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()
        read_timeout = self.timeout if timeout is None else timeout
        if read_timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, read_timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ServiceTimeout(
                f"no response within {read_timeout:g}s (request may or may not have applied)"
            ) from None

    async def call(
        self,
        op: str,
        *,
        world: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        response = await self.request(
            op, world=world, params=params, token=token, timeout=timeout
        )
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown server error"),
                code=response.get("code"),
                retry_after=response.get("retry_after"),
            )
        return response.get("result")

    # ------------------------------------------------------------------ #
    # Subscriptions
    # ------------------------------------------------------------------ #
    async def subscribe(
        self,
        world: str,
        *,
        ring: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Subscribe to ``world`` (resuming from the mirror's cursor if set).

        The response seeds the mirror: a fresh subscribe carries the base
        snapshot; a resume carries the missing diffs (or a resync snapshot
        when the cursor aged past the server's ring).
        """
        mirror = self.mirrors.get(world)
        if mirror is None:
            mirror = self.mirrors[world] = WorldMirror(world)
        params: Dict[str, Any] = {}
        if ring is not None:
            params["ring"] = ring
        if mirror.seq is not None:
            params["since"] = mirror.seq
        result = await self.call(
            protocol.SUBSCRIBE, world=world, params=params, timeout=timeout
        )
        seq = result["seq"]
        if "snapshot" in result:
            mirror.seed(seq, result["snapshot"])
            if result.get("resync"):
                mirror.resyncs += 1
        else:
            for frame in result.get("frames", []):
                self._apply_frame(mirror, frame)
        for frame in self._early.pop(world, []):
            self._apply_frame(mirror, frame)
        self.stale.discard(world)
        return result

    async def unsubscribe(self, world: str) -> bool:
        result = await self.call(protocol.UNSUBSCRIBE, world=world)
        self.mirrors.pop(world, None)
        self._early.pop(world, None)
        self.stale.discard(world)
        return bool(result.get("unsubscribed"))

    def snapshot(self, world: str) -> Optional[Dict[str, Any]]:
        """The current reconstructed snapshot (None before the base lands)."""
        mirror = self.mirrors.get(world)
        return None if mirror is None else mirror.snapshot

    async def wait_for(
        self,
        world: str,
        *,
        seq: Optional[int] = None,
        deleted: bool = False,
        timeout: Optional[float] = None,
    ) -> WorldMirror:
        """Wait until ``world``'s mirror reaches ``seq`` (or any new frame).

        With ``deleted=True``, waits for the terminal ``deleted`` frame.
        Raises :class:`ServiceTimeout` on timeout and ``ConnectionError``
        if the connection dies first.
        """
        mirror = self.mirrors[world]
        baseline = mirror.frames_applied
        deadline = None if timeout is None else clock.wall() + timeout
        while True:
            if deleted:
                if mirror.deleted:
                    return mirror
            elif seq is not None:
                if mirror.seq is not None and mirror.seq >= seq:
                    return mirror
            elif mirror.frames_applied > baseline:
                return mirror
            if self._reader_task.done():
                raise ConnectionError("connection lost while waiting for frames")
            self._frame_event.clear()
            waiter = self._frame_event.wait()
            if deadline is None:
                await waiter
                continue
            remaining = deadline - clock.wall()
            if remaining <= 0:
                raise ServiceTimeout(f"no qualifying frame for {world!r} within the timeout")
            try:
                await asyncio.wait_for(waiter, remaining)
            except asyncio.TimeoutError:
                raise ServiceTimeout(
                    f"no qualifying frame for {world!r} within the timeout"
                ) from None

    async def resume(self) -> None:
        """Reconnect and re-subscribe every world from its mirror cursor."""
        if self._endpoint is None:
            raise RuntimeError("resume() needs a client built via connect()")
        if not self._reader_task.done():
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown races
            pass
        host, port = self._endpoint
        if self.timeout is not None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=protocol.STREAM_LIMIT),
                self.timeout,
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                host, port, limit=protocol.STREAM_LIMIT
            )
        self._pending = {}
        self._early = {}
        self._reader_task = asyncio.create_task(self._read_loop())
        for world in sorted(self.mirrors):
            await self.subscribe(world)

    async def heal(self) -> None:
        """Re-subscribe every world whose stream gapped (after a resize
        whose racing collects outran a ring, for example)."""
        for world in sorted(self.stale):
            await self.subscribe(world)

    async def close(self) -> None:
        self._reader_task.cancel()
        await asyncio.gather(self._reader_task, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown races
            pass
