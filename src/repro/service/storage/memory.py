"""In-memory store: the test double and the inline-pool default.

Implements exactly the :class:`~repro.service.storage.base.WorldStore`
contract over plain dictionaries.  It lives in the process that created
it, so it models durability for *in-process* crash simulations (abandon a
host, recover a fresh one from the same store) and for the inline shard
pool, but cannot survive a worker **process** death — the process pool
treats it as non-durable.

Records and responses are deep-copied across the boundary in both
directions so a caller mutating a dictionary it handed in (or got back)
can never corrupt the persisted history — the same aliasing discipline the
sqlite backend gets for free from serialization.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.service.storage.base import (
    RECORD_OP,
    Checkpoint,
    StagedRecord,
    WorldStore,
)


class MemoryStore(WorldStore):
    """Dictionary-backed :class:`WorldStore`."""

    def __init__(self) -> None:
        # world_id -> {seq: record}
        self._logs: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self._checkpoints: Dict[str, Checkpoint] = {}
        self._batch_seq = 0
        self._responses: Optional[List[Dict[str, Any]]] = None

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def commit_batch(
        self,
        batch_seq: int,
        records: List[StagedRecord],
        responses: List[Dict[str, Any]],
        checkpoints: List[Tuple[str, Checkpoint]],
        purges: List[str],
    ) -> None:
        for world_id in purges:
            self._logs.pop(world_id, None)
            self._checkpoints.pop(world_id, None)
        for world_id, seq, record in records:
            self._logs.setdefault(world_id, {})[seq] = copy.deepcopy(record)
        for world_id, checkpoint in checkpoints:
            self._checkpoints[world_id] = checkpoint
        self._batch_seq = batch_seq
        self._responses = copy.deepcopy(responses)

    def save_checkpoint(self, world_id: str, checkpoint: Checkpoint) -> None:
        self._checkpoints[world_id] = checkpoint

    # ------------------------------------------------------------------ #
    # Recovery path
    # ------------------------------------------------------------------ #
    def last_batch(self) -> Tuple[int, Optional[List[Dict[str, Any]]]]:
        return self._batch_seq, copy.deepcopy(self._responses)

    def world_ids(self) -> List[str]:
        return sorted(set(self._logs) | set(self._checkpoints))

    def world_counts(self) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, Tuple[int, int]] = {}
        for world_id in self.world_ids():
            log = self._logs.get(world_id, {})
            writes = len([seq for seq, record in log.items() if record.get("kind") == RECORD_OP])
            records = max(log) if log else self._checkpoints[world_id].seq
            counts[world_id] = (records, writes)
        return counts

    def latest_checkpoint(self, world_id: str) -> Optional[Checkpoint]:
        return self._checkpoints.get(world_id)

    def records_after(self, world_id: str, seq: int) -> List[Dict[str, Any]]:
        log = self._logs.get(world_id, {})
        return [copy.deepcopy(log[position]) for position in sorted(log) if position > seq]

    def close(self) -> None:
        return None
