"""SQLite-backed store: one database file per shard.

The schema mirrors the three responsibilities of the contract:

* ``log(world, seq, record)`` — the per-world write-ahead log, records as
  canonical JSON;
* ``checkpoints(world, seq, state, snapshot)`` — the newest checkpoint per
  world: the pickled :class:`~repro.service.worlds.World` blob plus the
  optional canonical observable snapshot;
* ``batches(key=0, batch_seq, responses)`` — a single row holding the last
  committed batch's sequence number and responses (the exactly-once
  re-dispatch marker; only the latest batch can ever be retried because
  each shard has at most one batch in flight).

Group commit = one SQLite transaction per batch.  The journal runs in WAL
mode (fitting) with ``synchronous=NORMAL``: commits are atomic and survive
process death — the failure model the kill-and-recover battery exercises —
while avoiding a full fsync per batch.

Checkpoint ``state`` blobs are Python pickles: the store trusts its state
directory exactly as much as it trusts its own code, the standard stance
for a server's private on-disk state (never feed it files from elsewhere).
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, List, Optional, Tuple

from repro.io.results import canonical_json
from repro.service.storage.base import (
    RECORD_OP,
    Checkpoint,
    StagedRecord,
    WorldStore,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS log (
    world  TEXT    NOT NULL,
    seq    INTEGER NOT NULL,
    kind   TEXT    NOT NULL,
    record TEXT    NOT NULL,
    PRIMARY KEY (world, seq)
);
CREATE TABLE IF NOT EXISTS checkpoints (
    world    TEXT    PRIMARY KEY,
    seq      INTEGER NOT NULL,
    state    BLOB    NOT NULL,
    snapshot TEXT
);
CREATE TABLE IF NOT EXISTS batches (
    key       INTEGER PRIMARY KEY CHECK (key = 0),
    batch_seq INTEGER NOT NULL,
    responses TEXT    NOT NULL
);
"""


class SqliteStore(WorldStore):
    """One shard's durable state, in a single SQLite file."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # One connection, one thread (the worker loop / inline host): no
        # cross-thread sharing, so the default check_same_thread stands.
        self._connection = sqlite3.connect(path)
        self._connection.executescript(_SCHEMA)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.commit()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def commit_batch(
        self,
        batch_seq: int,
        records: List[StagedRecord],
        responses: List[Dict[str, Any]],
        checkpoints: List[Tuple[str, Checkpoint]],
        purges: List[str],
    ) -> None:
        connection = self._connection
        try:
            for world_id in purges:
                connection.execute("DELETE FROM log WHERE world = ?", (world_id,))
                connection.execute("DELETE FROM checkpoints WHERE world = ?", (world_id,))
            connection.executemany(
                "INSERT INTO log (world, seq, kind, record) VALUES (?, ?, ?, ?)",
                [
                    (world_id, seq, record["kind"], canonical_json(record))
                    for world_id, seq, record in records
                ],
            )
            for world_id, checkpoint in checkpoints:
                self._write_checkpoint(world_id, checkpoint)
            connection.execute(
                "INSERT OR REPLACE INTO batches (key, batch_seq, responses) VALUES (0, ?, ?)",
                (batch_seq, json.dumps(responses)),
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise

    def _write_checkpoint(self, world_id: str, checkpoint: Checkpoint) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO checkpoints (world, seq, state, snapshot) VALUES (?, ?, ?, ?)",
            (world_id, checkpoint.seq, checkpoint.state, checkpoint.snapshot_json),
        )

    def save_checkpoint(self, world_id: str, checkpoint: Checkpoint) -> None:
        try:
            self._write_checkpoint(world_id, checkpoint)
            self._connection.commit()
        except BaseException:
            self._connection.rollback()
            raise

    # ------------------------------------------------------------------ #
    # Recovery path
    # ------------------------------------------------------------------ #
    def last_batch(self) -> Tuple[int, Optional[List[Dict[str, Any]]]]:
        row = self._connection.execute(
            "SELECT batch_seq, responses FROM batches WHERE key = 0"
        ).fetchone()
        if row is None:
            return 0, None
        return row[0], json.loads(row[1])

    def world_ids(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT world FROM log UNION SELECT world FROM checkpoints"
        ).fetchall()
        return sorted(row[0] for row in rows)

    def world_counts(self) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, Tuple[int, int]] = {}
        for world_id, records, writes in self._connection.execute(
            "SELECT world, MAX(seq), SUM(CASE WHEN kind = ? THEN 1 ELSE 0 END) "
            "FROM log GROUP BY world",
            (RECORD_OP,),
        ):
            counts[world_id] = (records, writes or 0)
        for world_id, seq in self._connection.execute("SELECT world, seq FROM checkpoints"):
            if world_id not in counts:
                counts[world_id] = (seq, 0)
        return counts

    def latest_checkpoint(self, world_id: str) -> Optional[Checkpoint]:
        row = self._connection.execute(
            "SELECT seq, state, snapshot FROM checkpoints WHERE world = ?", (world_id,)
        ).fetchone()
        if row is None:
            return None
        return Checkpoint(seq=row[0], state=row[1], snapshot_json=row[2])

    def records_after(self, world_id: str, seq: int) -> List[Dict[str, Any]]:
        rows = self._connection.execute(
            "SELECT record FROM log WHERE world = ? AND seq > ? ORDER BY seq",
            (world_id, seq),
        ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def close(self) -> None:
        self._connection.close()


def scan_shard_files(state_dir: str) -> List[int]:
    """Shard indices with a database file present, in ascending order.

    Scans the directory instead of ``range(shards)`` so a restart with a
    *smaller* ``--shards`` still sees the worlds stranded in higher-index
    files (the front end migrates them back into the fleet at startup).
    """
    import re

    if not os.path.isdir(state_dir):
        return []
    found: List[int] = []
    for name in os.listdir(state_dir):
        match = re.fullmatch(r"shard-(\d+)\.sqlite", name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def scan_world_ids(state_dir: str, shards: int) -> Dict[str, int]:
    """World IDs found across a state directory's shard databases, mapped
    to the shard file each currently lives in.

    Used by the front end at startup (synchronous context) to repopulate
    its world→shard placement map before any worker answers a request.
    Missing shard files simply contribute nothing; files beyond ``shards``
    are included so their worlds can be migrated back into the fleet.
    """
    from repro.service.storage.base import shard_db_path

    placements: Dict[str, int] = {}
    for shard in sorted(set(range(shards)) | set(scan_shard_files(state_dir))):
        path = shard_db_path(state_dir, shard)
        if not os.path.exists(path):
            continue
        store = SqliteStore(path)
        try:
            for world_id in store.world_ids():
                placements[world_id] = shard
        finally:
            store.close()
    return placements
