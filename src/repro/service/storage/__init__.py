"""Pluggable per-shard persistence for the fleet server.

See :mod:`repro.service.storage.base` for the contract (write-ahead log,
checkpoints, exactly-once batch markers), :mod:`.memory` for the in-process
test backend and :mod:`.sqlite` for the durable one-file-per-shard backend.
"""

from repro.service.storage.base import (
    RECORD_OP,
    RECORD_SYNC,
    Checkpoint,
    StoreConfig,
    WorldStore,
    build_store,
    shard_db_path,
)
from repro.service.storage.memory import MemoryStore
from repro.service.storage.sqlite import SqliteStore, scan_shard_files, scan_world_ids

__all__ = [
    "RECORD_OP",
    "RECORD_SYNC",
    "Checkpoint",
    "MemoryStore",
    "SqliteStore",
    "StoreConfig",
    "WorldStore",
    "build_store",
    "scan_shard_files",
    "scan_world_ids",
    "shard_db_path",
]
