"""The per-shard persistence contract: write-ahead log + checkpoints.

One :class:`WorldStore` backs one shard (one :class:`~repro.service.worlds.
WorldHost`).  It persists three things:

* a **write-ahead log** per world — the applied write ops (``create_world``
  / ``advance`` / ``apply``) plus *sync markers* recording the points where
  a read reconciled the world with its geometry (synchronization is part of
  the model's semantics, so replaying the writes alone would reproduce a
  *different* history — the markers pin the sync points);
* **checkpoints** per world — an exact state blob (the pickled
  :class:`~repro.service.worlds.World`) at a known log position, plus
  optionally the canonical-JSON observable snapshot at that position
  (:meth:`World.snapshot`'s serialization, for inspection and smoke
  checks).  Recovery loads the latest checkpoint and replays
  log-since-checkpoint through the normal execution path;
* the **last committed batch** — its sequence number and responses, which
  is what makes dispatcher retries after a worker death exactly-once: a
  re-dispatched batch that already committed is answered from the store
  without re-executing a single op.

Commits are **transactional at batch granularity** (group commit): every
record staged while executing a batch becomes durable in one atomic step,
*before* the batch's responses are released to the dispatcher.  A worker
killed mid-batch therefore leaves the store exactly at the previous batch
boundary — recovery rebuilds the pre-batch state and the dispatcher's
re-dispatch re-executes the whole batch from there, deterministically.

Log records are plain dictionaries::

    {"kind": "op",   "op": "advance", "params": {"steps": 1}}
    {"kind": "sync"}

keyed by ``(world_id, seq)`` where ``seq`` is the world's 1-based log
position.  ``delete_world`` is never logged: its durable effect is the
*purge* of the world's records, applied in the same commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Log-record kinds.
RECORD_OP = "op"
RECORD_SYNC = "sync"


@dataclass(frozen=True)
class Checkpoint:
    """A world's exact state at log position ``seq``.

    ``state`` is the pickled :class:`~repro.service.worlds.World` — the
    byte-exact serving state, including mobility RNG position, manager
    CBTC state and pending dirty sets, which is what makes checkpoint
    recovery indistinguishable from having replayed the whole log.
    ``snapshot_json`` optionally carries the canonical observable snapshot
    (``None`` for eviction checkpoints, where computing it would force a
    semantic synchronize the uninterrupted world never performed).
    """

    seq: int
    state: bytes
    snapshot_json: Optional[str] = None


#: A staged log record: ``(world_id, seq, record)``.
StagedRecord = Tuple[str, int, Dict[str, Any]]


class WorldStore:
    """Abstract per-shard store; see :class:`MemoryStore` / :class:`SqliteStore`."""

    # ------------------------------------------------------------------ #
    # The write path (group commit)
    # ------------------------------------------------------------------ #
    def commit_batch(
        self,
        batch_seq: int,
        records: List[StagedRecord],
        responses: List[Dict[str, Any]],
        checkpoints: List[Tuple[str, Checkpoint]],
        purges: List[str],
    ) -> None:
        """Atomically persist one executed batch.

        Applies ``purges`` first (a purged world's log restarts at seq 1,
        so a delete-then-recreate within one batch lands only the recreate),
        then appends ``records``, saves ``checkpoints``, and replaces the
        last-batch marker with ``(batch_seq, responses)``.  All or nothing.
        """
        raise NotImplementedError

    def save_checkpoint(self, world_id: str, checkpoint: Checkpoint) -> None:
        """Persist a checkpoint outside a batch commit (eviction / flush).

        Losing one of these to a crash costs recovery time, never
        correctness — the log still reaches the same state.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # The recovery path
    # ------------------------------------------------------------------ #
    def last_batch(self) -> Tuple[int, Optional[List[Dict[str, Any]]]]:
        """``(batch_seq, responses)`` of the last committed batch (``0, None`` if none)."""
        raise NotImplementedError

    def world_ids(self) -> List[str]:
        """Sorted IDs of every world with log records or a checkpoint."""
        raise NotImplementedError

    def world_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per world: ``(log_records, write_records)`` — the seq/cadence bookkeeping."""
        raise NotImplementedError

    def latest_checkpoint(self, world_id: str) -> Optional[Checkpoint]:
        """The world's newest checkpoint, or ``None``."""
        raise NotImplementedError

    def records_after(self, world_id: str, seq: int) -> List[Dict[str, Any]]:
        """The world's log records with position ``> seq``, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""
        raise NotImplementedError


@dataclass(frozen=True)
class StoreConfig:
    """Pool-level storage configuration, shipped picklable to shard workers.

    ``kind`` selects the backend: ``"sqlite"`` (durable, one database file
    per shard under ``path``) or ``"memory"`` (per-process, for tests and
    inline pools — it cannot survive a worker *process* death, so the
    process pool treats it as non-durable and answers a killed batch with
    error responses instead of re-dispatching).
    """

    kind: str = "sqlite"
    path: Optional[str] = None
    snapshot_every: int = 16
    max_live_worlds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("sqlite", "memory"):
            raise ValueError(f"unknown store kind {self.kind!r} (expected 'sqlite' or 'memory')")
        if self.kind == "sqlite" and not self.path:
            raise ValueError("a sqlite store needs a state directory ('path')")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        if self.max_live_worlds is not None and self.max_live_worlds < 1:
            raise ValueError("max_live_worlds must be at least 1")

    @property
    def durable(self) -> bool:
        """Whether the store survives a worker process death."""
        return self.kind == "sqlite"


def build_store(config: StoreConfig, shard: int) -> WorldStore:
    """Instantiate the configured backend for one shard.

    Called *inside* the worker process (after fork/spawn): a sqlite
    connection must never cross a process boundary.
    """
    if config.kind == "memory":
        from repro.service.storage.memory import MemoryStore

        return MemoryStore()
    from repro.service.storage.sqlite import SqliteStore

    return SqliteStore(shard_db_path(config.path, shard))


def shard_db_path(state_dir: str, shard: int) -> str:
    """The canonical database filename of ``shard`` under ``state_dir``."""
    import os

    return os.path.join(state_dir, f"shard-{shard:03d}.sqlite")
