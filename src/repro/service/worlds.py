"""Live worlds and the shard-side execution engine.

A :class:`World` is one hosted deployment: a live
:class:`~repro.net.network.Network` bootstrapped from a catalogue
:class:`~repro.scenarios.spec.ScenarioSpec`, the
:class:`~repro.core.reconfiguration.ReconfigurationManager` maintaining its
per-node CBTC states, a :class:`~repro.graphs.routing.SourceRouteCache` for
routing queries, and a **snapshot cache** of read responses.

The write path rides PR 4's dirty-set machinery end to end: mobility steps
and churn deltas mark node IDs dirty through the network's watcher hooks;
the next read synchronizes the manager (one shared geometry pass) and
splices the delta into the previous topology through the
:class:`~repro.core.incremental.IncrementalTopologyBuilder` instead of
rebuilding.  Read responses are cached keyed by the canonical
:func:`repro.io.results.results_to_json` serialization of their request
parameters and invalidated through a dirty listener registered on the
network — the *same* hook feeding the manager and the derived-data cache —
so a write that changes nothing (an ``advance`` of a stationary world)
leaves every cached response valid.

``naive=True`` builds the serving baseline the benchmarks compare against:
no snapshot cache, no route cache, and a full from-scratch
:func:`~repro.core.pipeline.build_topology` on **every** request — the
one-request-one-rebuild server a straightforward implementation would be.
Both modes produce byte-identical responses (the incremental pipeline is an
optimization, not an approximation), which the service test suite asserts.

:class:`WorldHost` owns many worlds and executes protocol requests against
them.  It is deliberately synchronous and transport-free: the asyncio front
end, the multiprocessing shard workers, and the serial replay used by the
determinism battery all drive the exact same ``execute`` method, which is
what makes "serial and sharded replays are byte-identical" a structural
property rather than a hope.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pipeline import build_topology
from repro.core.reconfiguration import ReconfigurationManager
from repro.core.topology import TopologyResult
from repro.geometry import Point
from repro.core.analysis import preserves_max_power_connectivity
from repro.graphs.routing import SourceRouteCache, canonical_single_source_paths
from repro.io.graphs import graph_to_dict
from repro.io.results import canonical_json
from repro.net.network import Network
from repro.net.node import Node, NodeId
from repro.scenarios.catalogue import get_scenario
from repro.scenarios.spec import DISTRIBUTED, ScenarioSpec
from repro.sim.randomness import derive_seed
from repro.service import protocol
from repro.traffic.runner import run_traffic
from repro.traffic.spec import MIN_POWER, TrafficSpec

import networkx as nx

#: Default catalogue scenario for worlds created without an explicit one.
DEFAULT_SCENARIO = "random-waypoint-drift"

#: Per-world snapshot-cache entry bound.  Long-lived quiescent worlds can
#: otherwise accumulate one entry per distinct read parameterization
#: (O(n^2) route pairs, unbounded traffic seeds) between writes; when the
#: bound is hit the oldest-stored entry is evicted (insertion order — a
#: deterministic policy, so replays agree on cache *contents* too, though
#: results never depend on it).
SNAPSHOT_CACHE_MAX_ENTRIES = 1024


class RequestError(ValueError):
    """A request that is well-formed on the wire but invalid for this world."""


def _params_key(op: str, params: Dict[str, Any]) -> str:
    """Snapshot-cache key: the op plus the canonical serialization of params."""
    return f"{op}:{canonical_json(params)}"


class World:
    """One live deployment hosted by a shard."""

    def __init__(
        self,
        world_id: str,
        spec: ScenarioSpec,
        seed: int,
        *,
        naive: bool = False,
    ) -> None:
        if spec.protocol == DISTRIBUTED:
            raise RequestError(
                f"scenario {spec.name!r} uses the distributed protocol; the fleet "
                f"server hosts reconfiguration-managed worlds only"
            )
        self.world_id = world_id
        self.spec = spec
        self.seed = seed
        self.naive = naive
        self.network: Network = spec.build_network(seed)
        self.mobility = spec.build_mobility(seed)
        self.manager = ReconfigurationManager(
            self.network, spec.alpha, angle_threshold=spec.angle_threshold
        )
        self._config = spec.optimizations.config()
        self._route_cache: Optional[SourceRouteCache] = None if naive else SourceRouteCache()
        self._snapshot_cache: Dict[str, Any] = {}
        self._adjacency: Optional[Dict[NodeId, Dict[NodeId, float]]] = None
        # The invalidation feed: every node move/crash/recover/add/remove
        # lands this world's ID set — the same hook the manager and the
        # derived-data cache consume.
        self._dirty = self.network.register_dirty_listener()
        self._next_node_id = max(self.network.node_ids, default=-1) + 1
        self.writes_applied = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # Prime at creation (the ScenarioRunner.prime() analogue): run the
        # initial NDP reconciliation — the first synchronize after a fresh
        # CBTC outcome floods join events as boundary beacons complete every
        # node's neighbourhood knowledge — and, on the cached path, build
        # the initial topology.  A freshly created world is then quiescent:
        # its first read is a memo hit and later write bursts pay only for
        # their own deltas.
        self.manager.synchronize(max_iterations=spec.sync_max_iterations)
        self._dirty.clear()
        if not naive:
            self.manager.topology(config=self._config, incremental=True)

    def close(self) -> None:
        """Detach from the network's notification feeds (world deletion)."""
        self.manager.close()
        self.network.unregister_dirty_listener(self._dirty)

    # ------------------------------------------------------------------ #
    # Topology refresh (the dirty-set read path)
    # ------------------------------------------------------------------ #
    def _refresh(self) -> TopologyResult:
        """Reconcile topology control with the current geometry.

        Both modes synchronize the manager exactly when the dirty listener
        reports a geometric change since the last read — reconciliation is
        part of the model's semantics, so it must not differ between modes.
        What differs is what a read *costs* afterwards: cached mode asks the
        manager for the memoized, incrementally spliced topology; naive mode
        rebuilds from scratch on every request, bypassing the manager's memo
        on purpose (the one-request-one-rebuild baseline).
        """
        if self.naive:
            if self._dirty:
                self.manager.synchronize(max_iterations=self.spec.sync_max_iterations)
                self._dirty.clear()
            self._adjacency = None
            return build_topology(
                self.network,
                self.spec.alpha,
                config=self._config,
                outcome=self.manager.outcome,
            )
        if self._dirty:
            self.manager.synchronize(max_iterations=self.spec.sync_max_iterations)
            self._snapshot_cache.clear()
            self._adjacency = None
            self._dirty.clear()
        return self.manager.topology(config=self._config, incremental=True)

    def _power_adjacency(self, graph: nx.Graph) -> Dict[NodeId, Dict[NodeId, float]]:
        """Min-power weighted adjacency of the current topology (memoized)."""
        if self._adjacency is None or self.naive:
            adjacency: Dict[NodeId, Dict[NodeId, float]] = {node: {} for node in graph.nodes}
            for u, v in graph.edges:
                weight = self.network.required_power(u, v)
                adjacency[u][v] = weight
                adjacency[v][u] = weight
            self._adjacency = adjacency
        return self._adjacency

    def _cached(self, op: str, params: Dict[str, Any], compute) -> Any:
        """Serve a read from the snapshot cache, or compute and remember it.

        ``_refresh`` ran first, so a surviving entry is valid by the dirty-
        listener argument: no node changed since it was stored.
        """
        if self.naive:
            return compute()
        key = _params_key(op, params)
        if key in self._snapshot_cache:
            self.cache_hits += 1
            return self._snapshot_cache[key]
        self.cache_misses += 1
        value = compute()
        if len(self._snapshot_cache) >= SNAPSHOT_CACHE_MAX_ENTRIES:
            self._snapshot_cache.pop(next(iter(self._snapshot_cache)))
        self._snapshot_cache[key] = value
        return value

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def advance(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Advance the world's mobility model ``steps`` times."""
        steps = params.get("steps", self.spec.steps_per_epoch)
        if not isinstance(steps, int) or steps < 0:
            raise RequestError("'steps' must be a non-negative integer")
        for _ in range(steps):
            self.mobility.step(self.network)
        self.writes_applied += 1
        return {"world": self.world_id, "steps": steps, "writes": self.writes_applied}

    def apply_delta(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Apply an explicit churn/mobility delta.

        ``moves`` is ``[[node_id, x, y], ...]``; ``joins`` is ``[[x, y],
        ...]`` (IDs are assigned deterministically); ``crashes`` and
        ``recovers`` are node-ID lists.  The whole delta is validated before
        any of it is applied, so an invalid request leaves the world
        untouched — errors must not fork the state between replays.
        """
        # Parse and validate the whole delta first — entry shapes, coordinate
        # types, node existence — so a bad entry cannot leave the world
        # half-mutated.
        try:
            moves = [
                (node_id, Point(float(x), float(y))) for node_id, x, y in params.get("moves", [])
            ]
            join_points = [Point(float(x), float(y)) for x, y in params.get("joins", [])]
            crashes = list(params.get("crashes", []))
            recovers = list(params.get("recovers", []))
            for node_id, _ in moves:
                if node_id not in self.network:
                    raise RequestError(f"cannot move unknown node {node_id}")
            for node_id in crashes + recovers:
                if node_id not in self.network:
                    raise RequestError(f"cannot crash/recover unknown node {node_id}")
        except (TypeError, ValueError) as error:
            if isinstance(error, RequestError):
                raise
            raise RequestError(
                "malformed delta: 'moves' entries are [node_id, x, y], 'joins' entries "
                "[x, y], 'crashes'/'recovers' are node-ID lists"
            ) from None
        for node_id, position in moves:
            self.network.node(node_id).move_to(position)
        joined_ids = []
        for position in join_points:
            node = Node(node_id=self._next_node_id, position=position)
            self._next_node_id += 1
            self.network.add_node(node)
            joined_ids.append(node.node_id)
        for node_id in crashes:
            self.network.node(node_id).crash()
        for node_id in recovers:
            self.network.node(node_id).recover()
        self.writes_applied += 1
        return {
            "world": self.world_id,
            "moved": len(moves),
            "joined": joined_ids,
            "crashed": len(crashes),
            "recovered": len(recovers),
            "writes": self.writes_applied,
        }

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Topology statistics over the current controlled topology."""
        topology = self._refresh()

        def compute() -> Dict[str, Any]:
            graph = topology.graph
            radii = sorted(topology.node_radius.values())
            return {
                "world": self.world_id,
                "alive_nodes": len(self.network.alive_nodes()),
                "edge_count": graph.number_of_edges(),
                "average_degree": topology.average_degree(),
                "average_radius": sum(radii) / len(radii) if radii else 0.0,
                "max_radius": max(radii) if radii else 0.0,
                "components": (
                    nx.number_connected_components(graph) if graph.number_of_nodes() else 0
                ),
                "total_power": sum(p for _, p in sorted(topology.node_power.items())),
                "connectivity_preserved": preserves_max_power_connectivity(self.network, graph),
            }

        return self._cached(protocol.QUERY_STATS, params, compute)

    def route(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The canonical minimum-power route between two nodes."""
        source = params.get("source")
        target = params.get("target")
        if not isinstance(source, int) or not isinstance(target, int):
            raise RequestError("'source' and 'target' must be node IDs")
        topology = self._refresh()

        def compute() -> Dict[str, Any]:
            adjacency = self._power_adjacency(topology.graph)
            if source not in adjacency or target not in adjacency:
                return {"world": self.world_id, "source": source, "target": target, "reachable": False}
            if self._route_cache is not None:
                self._route_cache.sync(adjacency)
                paths = self._route_cache.paths(source)
            else:
                paths = canonical_single_source_paths(adjacency, source)
            path = paths.get(target)
            if path is None:
                return {"world": self.world_id, "source": source, "target": target, "reachable": False}
            cost = sum(adjacency[u][v] for u, v in zip(path, path[1:]))
            return {
                "world": self.world_id,
                "source": source,
                "target": target,
                "reachable": True,
                "path": list(path),
                "hops": len(path) - 1,
                "cost": cost,
            }

        return self._cached(protocol.QUERY_ROUTE, params, compute)

    def traffic(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Run a packet-level burst over the current topology; report metrics.

        Deterministic in ``(world state, params)``: the run's seed derives
        from the world seed and the request's ``seed`` parameter, and the
        default infinite battery keeps the run side-effect free, so the
        response is cacheable like any other read.
        """
        flows = params.get("flows", 4)
        packets = params.get("packets", 3)
        request_seed = params.get("seed", 0)
        kind = params.get("kind", "cbr")
        interference = bool(params.get("interference", False))
        topology = self._refresh()

        def compute() -> Dict[str, Any]:
            try:
                tspec = TrafficSpec(
                    kind=kind,
                    flow_count=flows,
                    packets_per_flow=packets,
                    routing=MIN_POWER,
                    interference=interference,
                )
            except (ValueError, TypeError) as error:
                raise RequestError(str(error)) from None
            run_seed = derive_seed(self.seed, f"service-traffic:{request_seed}")
            run = run_traffic(
                self.network,
                topology.graph,
                tspec,
                run_seed,
                route_cache=self._route_cache,
            )
            report = json.loads(canonical_json(run.report))
            report["world"] = self.world_id
            return report

        return self._cached(protocol.RUN_TRAFFIC, params, compute)

    def snapshot(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The canonical byte-comparable serialization of this world.

        Covers exactly the replay-relevant state — node positions/liveness
        and the controlled topology, both in the canonical sorted form of
        :mod:`repro.io` — and none of the serving metadata (cache counters,
        batch shapes), so serial and sharded replays of one request trace
        must agree on every byte.
        """
        topology = self._refresh()

        def compute() -> Dict[str, Any]:
            return {
                "world": self.world_id,
                "scenario": self.spec.name,
                "seed": self.seed,
                "nodes": [
                    {
                        "id": node.node_id,
                        "x": node.position.x,
                        "y": node.position.y,
                        "alive": node.alive,
                    }
                    for node in self.network.nodes
                ],
                "topology": graph_to_dict(topology.graph),
            }

        return self._cached(protocol.SNAPSHOT, params, compute)

    def cache_stats(self) -> Dict[str, Any]:
        """Serving-layer counters (never cached — they change on every read)."""
        return {
            "world": self.world_id,
            "naive": self.naive,
            "writes": self.writes_applied,
            "snapshot_cache_entries": len(self._snapshot_cache),
            "snapshot_cache_hits": self.cache_hits,
            "snapshot_cache_misses": self.cache_misses,
            "route_cache_hits": self._route_cache.hits if self._route_cache else 0,
            "route_cache_misses": self._route_cache.misses if self._route_cache else 0,
            "topology_builds": self.manager.topology_builds,
            "incremental_updates": self.manager.incremental_updates,
            "topology_memo_hits": self.manager.memo_hits,
        }


def build_world_spec(params: Dict[str, Any]) -> Tuple[ScenarioSpec, int]:
    """Resolve ``create_world`` params into a ``(spec, seed)`` pair.

    ``scenario`` names a catalogue entry (default
    :data:`DEFAULT_SCENARIO`); ``nodes`` scales its population;
    ``mover_fraction`` restricts motion to a seed-stable subset — the
    partial-mobility regime the incremental pipeline serves best.
    """
    name = params.get("scenario", DEFAULT_SCENARIO)
    try:
        spec = get_scenario(name)
    except KeyError as error:
        raise RequestError(error.args[0]) from None
    nodes = params.get("nodes")
    if nodes is not None:
        if not isinstance(nodes, int) or nodes < 1:
            raise RequestError("'nodes' must be a positive integer")
        spec = spec.scaled(node_count=nodes)
    mover_fraction = params.get("mover_fraction")
    if mover_fraction is not None:
        try:
            spec = dataclasses.replace(
                spec,
                mobility=dataclasses.replace(spec.mobility, mover_fraction=float(mover_fraction)),
            )
        except (TypeError, ValueError) as error:
            raise RequestError(str(error)) from None
    seed = params.get("seed", 0)
    if not isinstance(seed, int):
        raise RequestError("'seed' must be an integer")
    return spec, seed


class WorldHost:
    """Executes protocol requests against a set of hosted worlds.

    One host backs one shard (worker process), the whole serial replay, or
    the inline server — the execution semantics are identical in all three,
    which is the determinism battery's core claim.
    """

    def __init__(self, *, naive: bool = False) -> None:
        self.naive = naive
        self.worlds: Dict[str, World] = {}
        self.requests_executed = 0

    # The per-op dispatch; every handler returns the response's ``result``.
    def _execute_world_op(self, op: str, world_id: str, params: Dict[str, Any]) -> Any:
        if op == protocol.CREATE_WORLD:
            if world_id in self.worlds:
                raise RequestError(f"world {world_id!r} already exists")
            spec, seed = build_world_spec(params)
            world = World(world_id, spec, seed, naive=self.naive)
            self.worlds[world_id] = world
            return {
                "world": world_id,
                "scenario": spec.name,
                "seed": seed,
                "nodes": len(world.network),
            }
        world = self.worlds.get(world_id)
        if world is None:
            raise RequestError(f"unknown world {world_id!r}")
        if op == protocol.ADVANCE:
            return world.advance(params)
        if op == protocol.APPLY:
            return world.apply_delta(params)
        if op == protocol.QUERY_STATS:
            return world.stats(params)
        if op == protocol.QUERY_ROUTE:
            return world.route(params)
        if op == protocol.RUN_TRAFFIC:
            return world.traffic(params)
        if op == protocol.SNAPSHOT:
            return world.snapshot(params)
        if op == protocol.CACHE_STATS:
            return world.cache_stats()
        if op == protocol.DELETE_WORLD:
            self.worlds.pop(world_id).close()
            return {"world": world_id, "deleted": True}
        raise RequestError(f"op {op!r} is not a world op")

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request, always returning a protocol response."""
        request_id = request.get("id")
        problem = protocol.validate_request(request)
        if problem is not None:
            return protocol.error_response(request_id, problem)
        op = request["op"]
        if op not in protocol.WORLD_OPS:
            return protocol.error_response(request_id, f"op {op!r} is not served by shards")
        self.requests_executed += 1
        try:
            result = self._execute_world_op(op, request["world"], request.get("params", {}))
        except RequestError as error:
            return protocol.error_response(request_id, str(error))
        except Exception as error:
            # Containment lives here, at the per-request layer, so every
            # backend — inline dispatcher, worker process, serial replay —
            # turns an unexpected handler failure into the same error
            # response instead of killing its execution loop (or, worse,
            # failing innocent co-batched requests).
            return protocol.error_response(
                request_id, f"internal error executing {op!r}: {error!r}"
            )
        return protocol.ok_response(request_id, result)

    def execute_batch(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Execute a batch in arrival order, one response per request."""
        return [self.execute(request) for request in requests]

    def close(self) -> None:
        """Release every hosted world's notification hooks."""
        for world in self.worlds.values():
            world.close()
        self.worlds.clear()
